"""PROX evaluation / provisioning service (§7.1, Figures 7.9-7.10).

Lets the user explore hypothetical scenarios on the (original or
summarized) provenance: choose annotations or attribute values to set
to *false*, evaluate, and get back the per-movie aggregated ratings
plus the evaluation time in nanoseconds -- exactly what the summary
view displays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from ..core.combiners import DomainCombiners
from ..core.mapping import MappingState
from ..core.summarize import SummarizationResult
from ..datasets.base import DatasetInstance
from ..provenance.tensor_sum import TensorSum
from ..provenance.valuation import Valuation, cancel


@dataclass(frozen=True)
class EvaluationOutcome:
    """Result table + timing of one provisioning request."""

    ratings: Mapping[str, float]
    evaluation_time_ns: int

    def rows(self) -> Sequence[Tuple[str, float]]:
        return sorted(self.ratings.items())


class EvaluatorService:
    """Applies user assignments to provenance expressions."""

    def __init__(self, instance: DatasetInstance):
        self.instance = instance

    def _assignment(
        self,
        false_annotations: Sequence[str] = (),
        false_attributes: Optional[Mapping[str, object]] = None,
    ) -> Valuation:
        """Build the valuation of a Figure 7.9/7.10 assignment form."""
        names = list(false_annotations)
        if false_attributes:
            for attribute, value in false_attributes.items():
                names.extend(
                    annotation.name
                    for annotation in self.instance.universe.with_attribute(
                        attribute, value
                    )
                )
        return cancel(names) if names else Valuation()

    def evaluate_original(
        self,
        expression: TensorSum,
        false_annotations: Sequence[str] = (),
        false_attributes: Optional[Mapping[str, object]] = None,
    ) -> EvaluationOutcome:
        """Provision the original (selected) provenance."""
        valuation = self._assignment(false_annotations, false_attributes)
        truth = valuation.truth_map(sorted(expression.annotation_names()))
        started = time.perf_counter_ns()
        vector = expression.evaluate_scan(truth)
        elapsed = time.perf_counter_ns() - started
        return EvaluationOutcome(
            ratings={
                str(group): aggregate.finalized_value()
                for group, aggregate in vector.items()
            },
            evaluation_time_ns=elapsed,
        )

    def evaluate_summary(
        self,
        result: SummarizationResult,
        false_annotations: Sequence[str] = (),
        false_attributes: Optional[Mapping[str, object]] = None,
    ) -> EvaluationOutcome:
        """Provision a summary: the assignment over original annotations
        is lifted through the summary's mapping and ``φ`` combiners
        (approximate provisioning)."""
        valuation = self._assignment(false_annotations, false_attributes)
        combiners = self.instance.combiners
        lifted = combiners.lift_valuation(valuation, result.mapping, result.universe)
        expression = result.summary_expression
        truth = lifted.truth_map(sorted(expression.annotation_names()))
        started = time.perf_counter_ns()
        vector = expression.evaluate_scan(truth)
        elapsed = time.perf_counter_ns() - started
        return EvaluationOutcome(
            ratings={
                str(group): aggregate.finalized_value()
                for group, aggregate in vector.items()
            },
            evaluation_time_ns=elapsed,
        )
