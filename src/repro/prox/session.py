"""The PROX session facade -- the three web-UI views as a Python API.

Chapter 7's system is a Java/Spring + AngularJS web application; its
value is the workflow it exposes, not the HTTP plumbing (DESIGN.md).
:class:`ProxSession` drives the same loop:

1. **Selection view** -- choose movies by title or genre/year
   (:meth:`select_titles`, :meth:`select_by`);
2. **Summarization view** -- configure and run Algorithm 1
   (:meth:`summarize`);
3. **Summary view** -- inspect the result as an expression
   (:meth:`expression_view`) or as groups with their member attributes
   and aggregates (:meth:`groups_view`), and provision hypothetical
   scenarios (:meth:`evaluate`), comparing original and summary
   answers with their evaluation times.
"""

from __future__ import annotations

import os
import weakref
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.streaming import ProvenanceDelta, apply_delta
from ..core.summarize import SummarizationResult
from ..datasets.base import DatasetInstance
from ..datasets.movielens import MovieLensConfig, generate_movielens
from ..observability import metrics as _metrics
from ..observability import resources as _resources
from ..observability import tracing as _tracing
from ..provenance import ir as _ir
from ..provenance.tensor_sum import TensorSum
from .evaluator import EvaluationOutcome, EvaluatorService
from .selection import SelectionService
from .summarization import SummarizationRequest, SummarizationService

_INGEST_DELTAS = _metrics.counter(
    "prox_ingest_deltas_total",
    "Streaming provenance deltas ingested into PROX sessions.",
)


def _recipe_for(instance: Optional[DatasetInstance], seed: int) -> Optional[Dict]:
    """A JSON-able regeneration recipe for the session's instance.

    The dataset generators are fully seeded (regenerating is exact --
    see :mod:`repro.datasets.base`), so a snapshot stores the recipe
    plus the session's event log instead of the object graph.  Returns
    ``None`` for instances without a recoverable config: such sessions
    still serve, but cannot be snapshot-evicted.
    """
    if instance is None:
        return {
            "kind": "movielens",
            "config": asdict(MovieLensConfig(include_movie_merges=True, seed=seed)),
        }
    config = instance.metadata.get("config")
    if isinstance(config, MovieLensConfig):
        return {"kind": "movielens", "config": asdict(config)}
    return None


def _instance_from_recipe(recipe: Mapping[str, Any]) -> DatasetInstance:
    """Regenerate a dataset instance from its snapshot recipe."""
    if recipe.get("kind") != "movielens":
        raise ValueError(f"unknown snapshot recipe kind {recipe.get('kind')!r}")
    config = dict(recipe["config"])
    if "constraint_attributes" in config:
        config["constraint_attributes"] = tuple(config["constraint_attributes"])
    return generate_movielens(MovieLensConfig(**config))


@dataclass
class GroupView:
    """One card of the groups view (Figures 7.5-7.7)."""

    annotation: str
    size: int
    members: Tuple[str, ...]
    shared_attributes: Mapping[str, object]
    aggregated: Mapping[str, float]


class ProxSession:
    """One user's PROX session over a provenance instance."""

    def __init__(
        self,
        instance: Optional[DatasetInstance] = None,
        seed: int = 0,
        session_id: Optional[str] = None,
        interner: Optional[_ir.AnnotationInterner] = None,
    ):
        recipe = _recipe_for(instance, seed)
        if instance is None:
            instance = generate_movielens(
                MovieLensConfig(include_movie_merges=True, seed=seed)
            )
        self.instance = instance
        # One interner per session: annotation ids assigned during the
        # first /summarize stay stable for every later call, so repeated
        # summarizations key their scoring state on already-dense ids
        # instead of re-parsing annotation strings (None under
        # REPRO_IR=legacy).  ``restore`` passes a snapshot-backed
        # interner so the restored session keeps its original id layout.
        if interner is None and _ir.ir_enabled():
            interner = _ir.AnnotationInterner()
        self.interner: Optional[_ir.AnnotationInterner] = interner
        self.selection = SelectionService(instance)
        self.summarization = SummarizationService(instance, interner=self.interner)
        self.evaluator = EvaluatorService(instance)
        self.selected: Optional[TensorSum] = None
        self.result: Optional[SummarizationResult] = None
        #: Streaming deltas applied so far (mirrors the metric counter).
        self.ingested_deltas = 0
        #: Regeneration recipe + replayable event log: together they
        #: make the session snapshotable (``snapshot``/``restore``).
        self._recipe = recipe
        self._events: List[Tuple[str, object]] = []
        self._replaying = False
        self._pending_summarize: Optional[Tuple[Dict[str, object], int]] = None
        self._last_summarize: Optional[Tuple[Dict[str, object], int]] = None
        #: Per-session resource account (``GET /sessions/<id>/stats``,
        #: ``prox_session_*`` gauges, eviction advisor).  Automatically
        #: unregistered when the session is garbage collected.
        self.account = _resources.REGISTRY.register(session_id)
        self._finalizer = weakref.finalize(
            self, _resources.REGISTRY.unregister, self.account.session_id
        )

    @property
    def session_id(self) -> str:
        return self.account.session_id

    def close(self) -> None:
        """Unregister the session's resource account (idempotent)."""
        self._finalizer()

    # -- selection view -------------------------------------------------------

    def titles(self, search: Optional[str] = None) -> Sequence[str]:
        if search:
            return self.selection.search_titles(search)
        return self.selection.available_titles()

    def select_titles(self, titles: Sequence[str]) -> int:
        """Select provenance by movie titles; returns its size."""
        self.selected = self.selection.by_titles(titles)
        self.result = None
        self.summarization.reset_repair()
        self._record_event("select_titles", list(titles))
        self.account.record_select(self.selected.size())
        return self.selected.size()

    def select_by(
        self,
        genre: Optional[str] = None,
        year: Optional[int] = None,
        decade: Optional[str] = None,
    ) -> int:
        """Select provenance by genre/year; returns its size."""
        self.selected = self.selection.by_attributes(genre, year, decade)
        self.result = None
        self.summarization.reset_repair()
        self._record_event(
            "select_by", {"genre": genre, "year": year, "decade": decade}
        )
        self.account.record_select(self.selected.size())
        return self.selected.size()

    # -- streaming ingest ------------------------------------------------------

    def ingest(self, delta: ProvenanceDelta) -> Dict[str, object]:
        """Apply one append-only provenance delta to the live session.

        New annotations are registered into the instance universe (and
        batch-interned into the session interner and the process arena,
        which both grow strictly in place -- existing ids stay valid
        mid-stream), new terms extend the current selection, and
        valuation changes are recorded so the next :meth:`summarize`
        *repairs* the previous summary instead of recomputing it
        (``repair="off"`` opts out).  Raises if no provenance is
        selected, on annotation name collisions, or when a term or
        valuation extension references an unknown annotation.
        """
        if self.selected is None:
            raise RuntimeError("select provenance first (selection view)")
        arena_before = _ir.GLOBAL_STORE.arena_bytes()
        with _tracing.span("ingest") as span:
            universe = self.instance.universe
            for annotation in delta.annotations:
                universe.register(annotation)
            for term in delta.terms:
                for name in term.annotations:
                    if name not in universe:
                        raise KeyError(
                            f"delta term references unknown annotation {name!r}"
                        )
            for label, names in delta.extend_valuations.items():
                for name in names:
                    if name not in universe:
                        raise KeyError(
                            f"valuation extension {label!r} references "
                            f"unknown annotation {name!r}"
                        )
            names = [annotation.name for annotation in delta.annotations]
            monomials = [
                sorted(Counter(term.annotations).items()) for term in delta.terms
            ]
            if _ir.ir_enabled():
                _ir.GLOBAL_STORE.append_delta(names, monomials)
                if self.interner is not None:
                    self.interner.intern_all(names)
            self.selected = apply_delta(self.selected, delta)
            self.summarization.record_delta(delta)
            self.result = None
            self.ingested_deltas += 1
            if _metrics.ENABLED:
                _INGEST_DELTAS.inc()
            if span is not _tracing.NULL_SPAN:
                span.set("annotations", len(delta.annotations))
                span.set("terms", len(delta.terms))
                span.set("extended_valuations", len(delta.extend_valuations))
                span.set("selected_size", self.selected.size())
        if not self._replaying:
            from .. import serialization as _serialization

            self._record_event("ingest", _serialization.delta_to_dict(delta))
        self.account.record_ingest(
            arena_growth=_ir.GLOBAL_STORE.arena_bytes() - arena_before,
            selected_size=self.selected.size(),
        )
        return {
            "annotations": len(delta.annotations),
            "terms": len(delta.terms),
            "valuations": len(delta.valuations),
            "extended_valuations": len(delta.extend_valuations),
            "selected_size": self.selected.size(),
            "ingested_deltas": self.ingested_deltas,
        }

    # -- summarization view ------------------------------------------------------

    def summarize(
        self, request: SummarizationRequest = SummarizationRequest(), seed: int = 0
    ) -> SummarizationResult:
        if self.selected is None:
            raise RuntimeError("select provenance first (selection view)")
        arena_before = _ir.GLOBAL_STORE.arena_bytes()
        self.result = self.summarization.summarize(self.selected, request, seed)
        self._last_summarize = (asdict(request), seed)
        self._pending_summarize = None
        if self.interner is not None:
            _ir.publish_metrics(interner=self.interner)
        self.account.record_summarize(
            seconds=self.result.total_seconds,
            arena_growth=_ir.GLOBAL_STORE.arena_bytes() - arena_before,
            interned_annotations=(
                len(self.interner) if self.interner is not None else 0
            ),
            pool_candidates=self.summarization.pool_size(),
            summary_size=self.result.final_size,
            repaired=self.result.repaired,
            repair_seeded=self.result.repair_seeded,
            repair_invalidated=self.result.repair_invalidated,
        )
        return self.result

    def ir_stats(self) -> Dict[str, object]:
        """Interner cardinality and arena storage of this session.

        ``interned_annotations`` counts the session interner's ids
        (0 under ``REPRO_IR=legacy``); ``arena`` reports the process
        store backing :class:`~repro.provenance.polynomial.Polynomial`.
        """
        return {
            "mode": _ir.active_mode(),
            "interned_annotations": (
                len(self.interner) if self.interner is not None else 0
            ),
            "arena": _ir.GLOBAL_STORE.stats(),
        }

    # -- summary view ---------------------------------------------------------------

    def expression_view(self) -> str:
        """The summary in polynomial form with its size (Figure 7.8)."""
        result = self._require_result()
        return (
            f"{result.summary_expression}\n"
            f"Provenance Size: {result.final_size}"
        )

    def groups_view(self) -> List[GroupView]:
        """The groups the algorithm chose to map together (Figure 7.5)."""
        result = self._require_result()
        universe = result.universe
        views: List[GroupView] = []
        for name, members in sorted(result.summary_groups().items()):
            annotation = universe[name]
            aggregated: Dict[str, float] = {}
            for group, aggregate in result.summary_expression.full_vector().items():
                for term in result.summary_expression.terms:
                    if term.group == group and name in term.annotations:
                        aggregated[str(group)] = aggregate.finalized_value()
                        break
            views.append(
                GroupView(
                    annotation=name,
                    size=len(members),
                    members=members,
                    shared_attributes=dict(annotation.attributes),
                    aggregated=aggregated,
                )
            )
        return views

    def explain(self, title: str) -> str:
        """Why does ``title`` have its current rating? (witness view)

        Uses the selected provenance; reports the aggregate, its
        witnesses with their attributes, and which annotations are
        pivotal (discarding them changes the answer).
        """
        from ..provenance.explanations import explain as explain_group

        if self.selected is None:
            raise RuntimeError("select provenance first (selection view)")
        if title not in set(self.selected.groups()):
            raise KeyError(f"{title!r} is not in the current selection")
        return explain_group(self.selected, title, self.instance.universe)

    def evaluate(
        self,
        false_annotations: Sequence[str] = (),
        false_attributes: Optional[Mapping[str, object]] = None,
    ) -> Tuple[EvaluationOutcome, EvaluationOutcome]:
        """Provision a scenario on both expressions (Figures 7.9-7.10).

        Returns ``(original_outcome, summary_outcome)`` so callers can
        compare answers and evaluation times.
        """
        result = self._require_result()
        if self.selected is None:
            raise RuntimeError("no selection active")
        original = self.evaluator.evaluate_original(
            self.selected, false_annotations, false_attributes
        )
        summary = self.evaluator.evaluate_summary(
            result, false_annotations, false_attributes
        )
        return original, summary

    def _require_result(self) -> SummarizationResult:
        if self.result is None and self._pending_summarize is not None:
            request_dict, seed = self._pending_summarize
            self.summarize(SummarizationRequest(**request_dict), seed)
        if self.result is None:
            raise RuntimeError("summarize first (summarization view)")
        return self.result

    # -- snapshot / restore ---------------------------------------------------

    def _record_event(self, kind: str, payload: object) -> None:
        if not self._replaying:
            self._events.append((kind, payload))

    def can_snapshot(self) -> bool:
        """Whether this session can be snapshot-evicted.

        Requires a regeneration recipe for the instance (ad-hoc
        instances passed in without a generator config cannot be
        rebuilt from disk).
        """
        return self._recipe is not None

    def snapshot(self, path: str) -> Dict[str, object]:
        """Write the session to ``path`` as a PROXSN01 snapshot.

        The snapshot stores the dataset recipe, the replayable event
        log (selections + ingested deltas), the last summarize request,
        the session interner's name table, and — under the IR — a
        zero-copy PROXAR03 image of the process arena.  Summarization
        results and repair state are deliberately dropped: PR 6's
        differential suite proves repaired ≡ from-scratch bit-identical,
        so the restored session recomputes them deterministically.
        """
        if not self.can_snapshot():
            raise RuntimeError(
                "session instance has no regeneration recipe; cannot snapshot"
            )
        from .. import serialization as _serialization

        last = self._last_summarize or self._pending_summarize
        meta = {
            "version": 1,
            "session_id": self.session_id,
            "recipe": self._recipe,
            "events": [[kind, payload] for kind, payload in self._events],
            "last_summarize": (
                [last[0], last[1]] if last is not None else None
            ),
            "ingested_deltas": self.ingested_deltas,
        }
        store = _ir.GLOBAL_STORE if _ir.ir_enabled() else None
        names = list(self.interner) if self.interner is not None else None
        _serialization.write_session_snapshot(
            path, meta, interner_names=names, store=store
        )
        return {"path": path, "bytes": os.path.getsize(path)}

    @classmethod
    def restore(cls, path: str, session_id: Optional[str] = None) -> "ProxSession":
        """Rehydrate a session from a snapshot written by :meth:`snapshot`.

        When the process arena is still pristine (e.g. a freshly forked
        worker), the snapshot's arena block is installed as the global
        store *zero-copy* — monomial columns stay memory-mapped views
        into the snapshot file and later ingests promote to a private
        writable tail.  Otherwise the event replay re-interns terms into
        the existing arena; PR 3's differential guarantees make results
        independent of monomial-id layout either way.
        """
        from .. import serialization as _serialization

        meta, names_blob, store = _serialization.load_session_snapshot(path)
        if (
            store is not None
            and _ir.ir_enabled()
            and _ir.store_is_pristine()
        ):
            _ir.install_store(store)
        interner = None
        if _ir.ir_enabled():
            interner = (
                _ir.AnnotationInterner.from_snapshot(names_blob)
                if names_blob
                else _ir.AnnotationInterner()
            )
        instance = _instance_from_recipe(meta["recipe"])
        session = cls(
            instance,
            session_id=session_id or meta.get("session_id"),
            interner=interner,
        )
        session._replaying = True
        try:
            for kind, payload in meta.get("events", []):
                if kind == "select_titles":
                    session.select_titles(payload)
                elif kind == "select_by":
                    session.select_by(**payload)
                elif kind == "ingest":
                    session.ingest(_serialization.delta_from_dict(payload))
                else:
                    raise ValueError(f"unknown snapshot event {kind!r}")
        finally:
            session._replaying = False
        session._events = [(kind, payload) for kind, payload in meta.get("events", [])]
        last = meta.get("last_summarize")
        if last is not None:
            # Re-run lazily on the next touch that needs a result, so
            # rehydration stays cheap for sessions only being listed.
            session._pending_summarize = (dict(last[0]), int(last[1]))
        return session
