"""Sharded multi-process serving: consistent hashing, worker pool.

The shared-nothing tier: sessions are sharded across ``fork``\\ ed
worker processes by consistent-hashed session id (:class:`HashRing`),
so each worker owns a disjoint subset of sessions -- no cross-process
locks, no shared arena.  The front (:class:`WorkerFront`) presents the
same ``dispatch(method, path, query, body)`` surface as a local
:class:`~repro.prox.app.ProxApp`, so :class:`~repro.prox.server.ProxServer`
serves either interchangeably::

    front = WorkerFront(n_workers=2, max_sessions=32)
    front.start()
    server = ProxServer(backend=front)

Forwarding runs over one bounded ``multiprocessing.Queue`` per worker:
``put_nowait`` on a full queue fails fast with ``429 Too Many
Requests`` + ``Retry-After`` (backpressure instead of unbounded
buffering), and per-worker depth is exported as
``prox_worker_queue_depth{worker=...}``.  Inside each worker a
:class:`~repro.prox.manager.SessionManager` + ``ProxApp`` handle
requests exactly as in single-process mode -- eviction loop included --
and snapshots restore zero-copy because a freshly forked worker's
arena is pristine (:func:`repro.provenance.ir.install_store`).

Graceful drain: the front stops accepting, waits for in-flight
replies, then sends each worker a ``drain`` control op (workers
snapshot their live sessions and exit 0) and joins them --
a worker that fails to exit is terminated and reported.

Aggregation at the front: ``/healthz`` and ``/sessions`` merge worker
payloads; ``/metrics`` concatenates each worker's exposition below the
front's own (samples carry distinct series, so the scrape stays
valid); debug endpoints answer front-locally.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing as mp
import queue as _queue
import threading
import uuid
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..observability import health as _health
from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import slo as _slo
from .app import (
    AppResponse,
    JSON,
    PROM_TEXT,
    ProxApp,
    error_response,
    json_response,
    split_session_path,
)
from .manager import SessionManager

_LOG = _log.get_logger("prox.workers")

_QUEUE_DEPTH = _metrics.gauge(
    "prox_worker_queue_depth",
    "Requests queued to each sharded worker (bounded; full -> 429).",
    labelnames=("worker",),
)
_FORWARDED = _metrics.counter(
    "prox_worker_requests_total",
    "Requests forwarded to sharded workers, by worker.",
    labelnames=("worker",),
)
_SHED = _metrics.counter(
    "prox_worker_shed_total",
    "Requests shed with 429 because a worker queue was full.",
    labelnames=("worker",),
)


class HashRing:
    """Consistent hash ring: session id -> worker index.

    Virtual replicas smooth the distribution; the mapping depends only
    on ``(n_workers, replicas)``, so front and workers agree without
    coordination, and stays deterministic across processes
    (``hashlib``, not ``hash()``, which is salted per process).
    """

    def __init__(self, n_workers: int, replicas: int = 64):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        points: List[Tuple[int, int]] = []
        for worker in range(n_workers):
            for replica in range(replicas):
                digest = hashlib.sha1(
                    f"worker-{worker}-replica-{replica}".encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), worker))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, session_id: str) -> int:
        """The worker index owning ``session_id``."""
        digest = hashlib.sha1(session_id.encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect.bisect(self._points, point) % len(self._points)
        return self._owners[index]


def _worker_main(
    worker_index: int,
    task_queue: "mp.Queue",
    reply_queue: "mp.Queue",
    max_sessions: int,
    snapshot_dir: Optional[str],
    evict_idle_seconds: float,
    eviction_interval: float,
) -> None:
    """Worker process loop: serve dispatch ops until ``drain``/``stop``.

    Ops are tuples ``(request_id, op, payload)``; replies are
    ``(request_id, worker_index, response)``.
    """
    manager = SessionManager(
        max_sessions=max_sessions,
        snapshot_dir=snapshot_dir,
        evict_idle_seconds=evict_idle_seconds,
        eviction_interval=eviction_interval,
    )
    manager.start_eviction_loop()
    app = ProxApp(manager=manager)
    while True:
        request_id, op, payload = task_queue.get()
        if op == "dispatch":
            method, path, query, body = payload
            try:
                response = app.dispatch(method, path, query, body)
            except Exception as error:  # pragma: no cover - defensive
                response = error_response(500, f"worker error: {error}")
            reply_queue.put((request_id, worker_index, response))
        elif op == "status":
            reply_queue.put(
                (
                    request_id,
                    worker_index,
                    json_response(
                        200,
                        {
                            "worker": worker_index,
                            "manager": manager.stats(),
                            "sessions": app.sessions_payload()["sessions"],
                            "metrics": _metrics.REGISTRY.render(),
                        },
                    ),
                )
            )
        elif op == "drain":
            manager.stop_eviction_loop()
            drained = manager.drain()
            reply_queue.put(
                (request_id, worker_index, json_response(200, dict(drained)))
            )
            break
        elif op == "stop":
            reply_queue.put((request_id, worker_index, json_response(200, {})))
            break
    manager.close_all()


class WorkerFront:
    """Routes session-scoped requests to sharded worker processes."""

    def __init__(
        self,
        n_workers: int = 2,
        max_sessions: int = 16,
        queue_depth: int = 32,
        snapshot_dir: Optional[str] = None,
        evict_idle_seconds: float = 300.0,
        eviction_interval: float = 5.0,
        slo: Optional[_slo.SloPolicy] = None,
        reply_timeout: float = 120.0,
    ):
        self.ring = HashRing(n_workers)
        self.n_workers = n_workers
        self.max_sessions = max_sessions
        self.queue_depth = queue_depth
        self.snapshot_dir = snapshot_dir
        self.evict_idle_seconds = evict_idle_seconds
        self.eviction_interval = eviction_interval
        self.reply_timeout = reply_timeout
        self.slo = slo if slo is not None else _slo.SloPolicy()
        self.slow_log = _slo.SlowRequestLog(ring_size=self.slo.ring_size)
        # Per-session max at each worker: capacity is a front-level
        # budget; each worker enforces its own share generously so the
        # front-level count (sessions created minus closed) governs.
        self._ctx = mp.get_context("fork")
        self._task_queues: List[mp.Queue] = []
        self._processes: List[mp.BaseProcess] = []
        self._reply_queue: Optional[mp.Queue] = None
        self._collector: Optional[threading.Thread] = None
        self._pending: Dict[int, Tuple[threading.Event, List[Any]]] = {}
        self._pending_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._queued = [0] * n_workers
        self._queued_lock = threading.Lock()
        self._sessions: Dict[str, int] = {}
        self._sessions_lock = threading.Lock()
        self._started = False
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("worker front already started")
        self._reply_queue = self._ctx.Queue()
        for index in range(self.n_workers):
            task_queue = self._ctx.Queue(maxsize=self.queue_depth)
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    task_queue,
                    self._reply_queue,
                    self.max_sessions,
                    self.snapshot_dir,
                    self.evict_idle_seconds,
                    self.eviction_interval,
                ),
                name=f"prox-worker-{index}",
                daemon=True,
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect_replies, name="prox-front-collector", daemon=True
        )
        self._collector.start()
        self._started = True
        _LOG.info("workers_started n=%d", self.n_workers)

    def _collect_replies(self) -> None:
        assert self._reply_queue is not None
        while True:
            item = self._reply_queue.get()
            if item is None:
                return
            request_id, worker_index, response = item
            with self._pending_lock:
                pending = self._pending.pop(request_id, None)
            if pending is None:
                continue
            event, slot = pending
            slot.append((worker_index, response))
            event.set()

    def _submit(
        self, worker: int, op: str, payload: Any, block: bool = False
    ) -> AppResponse:
        """Send one op to ``worker`` and wait for its reply."""
        if not self._started:
            raise RuntimeError("worker front not started")
        request_id = next(self._request_ids)
        event = threading.Event()
        slot: List[Any] = []
        with self._pending_lock:
            self._pending[request_id] = (event, slot)
        task = (request_id, op, payload)
        try:
            if block:
                self._task_queues[worker].put(task)
            else:
                self._task_queues[worker].put_nowait(task)
        except _queue.Full:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            if _metrics.ENABLED:
                _SHED.inc(worker=str(worker))
            return error_response(
                429,
                f"worker {worker} queue full ({self.queue_depth} deep)",
                {"Retry-After": "1"},
            )
        self._note_queued(worker, +1)
        if _metrics.ENABLED:
            _FORWARDED.inc(worker=str(worker))
        try:
            if not event.wait(self.reply_timeout):
                return error_response(
                    504, f"worker {worker} did not reply within "
                    f"{self.reply_timeout:g}s"
                )
        finally:
            self._note_queued(worker, -1)
        return slot[0][1]

    def _note_queued(self, worker: int, delta: int) -> None:
        with self._queued_lock:
            self._queued[worker] += delta
            depth = self._queued[worker]
        if _metrics.ENABLED:
            _QUEUE_DEPTH.set(depth, worker=str(worker))

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        query: Optional[Mapping[str, str]] = None,
        body: Optional[Mapping[str, Any]] = None,
    ) -> AppResponse:
        query = dict(query or {})
        body = dict(body or {})
        if self._draining:
            return error_response(503, "draining", {"Retry-After": "5"})
        if method == "GET":
            if path == "/healthz":
                return json_response(200, _health.health_payload(self.health_extra()))
            if path == "/metrics":
                return (200, self._merged_metrics(), PROM_TEXT, {})
            if path == "/sessions":
                return json_response(200, self.sessions_payload())
            if path in ("/debug/profile", "/debug/slow_requests"):
                # Front-local: the profiler/slow ring of the front
                # process (workers surface theirs via /sessions).
                return ProxApp(
                    manager=SessionManager(), slo=self.slo, slow_log=self.slow_log
                ).dispatch(method, path, query, body)
        if path == "/sessions" and method == "POST":
            return self._create_session(body)
        # Everything session-scoped routes to the hash owner.
        session_id, endpoint = split_session_path(path)
        if session_id is None and path.startswith("/sessions/"):
            # Lifecycle forms: /sessions/<id>[/stats|/evict|/restore].
            parts = path.split("/", 3)
            session_id = parts[2] if len(parts) > 2 else None
        if session_id is None:
            session_id = query.get("session")
        if session_id is None:
            return error_response(
                404,
                "sharded mode has no default session: create one via "
                "POST /sessions and address it with /sessions/<id>/... "
                "or ?session=<id>",
            )
        worker = self._owner(session_id)
        response = self._submit(worker, "dispatch", (method, path, query, body))
        if method == "DELETE" and response[0] == 200:
            with self._sessions_lock:
                self._sessions.pop(session_id, None)
        return response

    def _owner(self, session_id: str) -> int:
        with self._sessions_lock:
            known = self._sessions.get(session_id)
        return known if known is not None else self.ring.owner(session_id)

    def _create_session(self, body: Dict[str, Any]) -> AppResponse:
        with self._sessions_lock:
            if len(self._sessions) >= self.max_sessions:
                return error_response(
                    429,
                    f"at capacity ({self.max_sessions} sessions)",
                    {"Retry-After": f"{max(1.0, self.eviction_interval):g}"},
                )
        session_id = body.get("session_id") or f"w{uuid.uuid4().hex[:12]}"
        worker = self.ring.owner(session_id)
        response = self._submit(
            worker, "dispatch",
            ("POST", "/sessions", {}, dict(body, session_id=session_id)),
        )
        if response[0] == 201:
            with self._sessions_lock:
                self._sessions[session_id] = worker
        return response

    # -- aggregation -------------------------------------------------------

    def _worker_statuses(self) -> List[Optional[Dict[str, Any]]]:
        rows: List[Optional[Dict[str, Any]]] = []
        for worker in range(self.n_workers):
            response = self._submit(worker, "status", None, block=True)
            rows.append(response[1] if response[0] == 200 else None)
        return rows

    def sessions_payload(self) -> Dict[str, Any]:
        sessions: List[Dict[str, Any]] = []
        managers: List[Dict[str, Any]] = []
        for status in self._worker_statuses():
            if status is None:
                continue
            for row in status["sessions"]:
                sessions.append(dict(row, worker=status["worker"]))
            managers.append(dict(status["manager"], worker=status["worker"]))
        return {
            "count": len(sessions),
            "workers": managers,
            "sessions": sessions,
            "eviction_ranking": [],
        }

    def _merged_metrics(self) -> str:
        parts = [_metrics.REGISTRY.render()]
        for status in self._worker_statuses():
            if status is not None:
                parts.append(
                    f"# worker {status['worker']}\n{status['metrics']}"
                )
        return "\n".join(parts)

    def health_extra(self) -> Dict[str, Any]:
        workers = []
        for index, process in enumerate(self._processes):
            with self._queued_lock:
                depth = self._queued[index]
            workers.append(
                {
                    "worker": index,
                    "alive": process.is_alive(),
                    "pid": process.pid,
                    "queue_depth": depth,
                }
            )
        with self._sessions_lock:
            count = len(self._sessions)
        return {
            "mode": "sharded",
            "workers": workers,
            "sessions": count,
            "max_sessions": self.max_sessions,
            "slo_breaches_total": self.slow_log.total_recorded,
        }

    # -- drain / stop ------------------------------------------------------

    def drain(self) -> Dict[str, Any]:
        """Graceful drain: workers snapshot live sessions and exit."""
        self._draining = True
        results: Dict[str, Any] = {}
        for worker in range(self.n_workers):
            response = self._submit(worker, "drain", None, block=True)
            results[f"worker{worker}"] = (
                response[1] if response[0] == 200 else {"error": response[1]}
            )
        self._join_workers()
        return results

    def stop(self) -> None:
        """Stop workers without snapshotting (tests, error paths)."""
        if not self._started:
            return
        self._draining = True
        for worker in range(self.n_workers):
            if self._processes[worker].is_alive():
                try:
                    self._task_queues[worker].put((0, "stop", None), timeout=1.0)
                except _queue.Full:  # pragma: no cover - wedged worker
                    pass
        self._join_workers()

    def _join_workers(self) -> None:
        failed: List[int] = []
        for index, process in enumerate(self._processes):
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
                failed.append(index)
        if self._reply_queue is not None:
            self._reply_queue.put(None)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        self._started = False
        if failed:
            raise RuntimeError(
                f"workers {failed} failed to exit and were terminated"
            )
        _LOG.info("workers_stopped n=%d", self.n_workers)
