"""PROX summarization service (§7.1, Figure 7.4).

Exposes Algorithm 1 behind the parameter set of the PROX web UI's
summarization view: distance/size weights, distance/size bounds,
number of steps, aggregation function, valuation class and VAL-FUNC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.combiners import DomainCombiners
from ..core.problem import SummarizationConfig, SummarizationProblem
from ..core.streaming import ProvenanceDelta, SummaryRepairState
from ..core.summarize import SummarizationResult, Summarizer
from ..core.val_funcs import AbsoluteDifference, Disagreement, EuclideanDistance
from ..datasets.base import DatasetInstance
from ..provenance.ir import AnnotationInterner
from ..provenance.monoids import monoid_by_name
from ..provenance.tensor_sum import TensorSum
from ..provenance.valuation import Valuation
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    ExplicitValuations,
    ValuationClass,
)

#: The VAL-FUNC choices offered by the summarization view.
VAL_FUNCS = {
    "Euclidean Distance": EuclideanDistance,
    "Absolute Difference": AbsoluteDifference,
    "Disagreement": Disagreement,
}

#: The valuation-class choices offered by the summarization view.
VALUATION_CLASSES = ("Cancel Single Annotation", "Cancel Single Attribute")


@dataclass(frozen=True)
class SummarizationRequest:
    """The Figure 7.4 form: what the user configures before summarizing."""

    distance_weight: float = 0.5
    size_weight: Optional[float] = None
    distance_bound: float = 1.0
    size_bound: int = 1
    number_of_steps: Optional[int] = 10
    aggregation: str = "MAX"
    valuation_class: str = "Cancel Single Annotation"
    val_func: str = "Euclidean Distance"
    #: Scoring-engine knobs (see :mod:`repro.core.engine`): worker
    #: processes per step ("auto"/"off"/int), incremental scorer carry
    #: ("auto"/"on"/"off"/bool), cross-step candidate carry
    #: ("auto"/"on"/"off"/bool), lazy-greedy selection ("on"/"off"),
    #: shared-batch sampled scoring ("auto"/"on"/"off"/bool) and the
    #: sampling-budget block size.
    parallelism: object = None
    incremental: object = None
    carry: object = None
    lazy: object = False
    sample_sharing: object = None
    sample_block: int = 64
    #: Streaming summary repair ("auto"/"on"/"off"): consume the repair
    #: state left by the previous run of this session (if any) and
    #: leave one behind for the next (see :mod:`repro.core.streaming`).
    repair: object = None
    #: Declared latency SLO for the whole run, in seconds; breaches
    #: count in ``prox_slo_breaches_total{scope="summarize_run"}``.
    slo_seconds: Optional[float] = None

    def to_config(self, seed: int = 0) -> SummarizationConfig:
        return SummarizationConfig(
            w_dist=self.distance_weight,
            w_size=self.size_weight,
            target_dist=self.distance_bound,
            target_size=self.size_bound,
            max_steps=self.number_of_steps,
            seed=seed,
            parallelism=self.parallelism,
            incremental=self.incremental,
            carry=self.carry,
            lazy=self.lazy,
            sample_sharing=self.sample_sharing,
            sample_block=self.sample_block,
            repair=self.repair,
            slo_seconds=self.slo_seconds,
        )


class SummarizationService:
    """Summarizes selected provenance with UI-style parameters.

    The service is the session's streaming-repair anchor: every run
    (unless ``repair="off"``) leaves a :class:`~repro.core.streaming
    .SummaryRepairState` behind, and the next run over the *same*
    request shape consumes it -- so after :meth:`record_delta` the
    summary is repaired, not recomputed.  Valuation *extensions*
    (spam flags on already-known users) accumulate here too: the
    universe-derived class is rebuilt each call and the cumulative
    extensions re-applied in place, keeping labels/positions stable.
    """

    def __init__(
        self,
        instance: DatasetInstance,
        interner: Optional[AnnotationInterner] = None,
    ):
        self.instance = instance
        #: Session-held interner threaded into every problem, so
        #: annotation ids stay stable across repeated summarize calls.
        self.interner = interner
        #: Repair state left by the previous run, plus the request
        #: shape it was captured under (monoid / class / VAL-FUNC).
        self.repair_state: Optional[SummaryRepairState] = None
        self._repair_key: Optional[tuple] = None
        #: Cumulative valuation-false-set extensions (label → names)
        #: applied to every rebuilt class, and the subset flipped since
        #: the current repair state was captured.
        self._extensions: Dict[str, Set[str]] = {}
        self._pending_flips: Dict[str, Set[str]] = {}
        #: Explicit delta valuations appended after the derived class.
        self._extra_valuations: List[Valuation] = []

    # -- streaming ingest --------------------------------------------------------

    def record_delta(self, delta: ProvenanceDelta) -> None:
        """Fold one ingested delta into the repair bookkeeping."""
        for label, names in delta.extend_valuations.items():
            fresh = set(names)
            known = self._extensions.setdefault(label, set())
            flipped = fresh - known
            known.update(fresh)
            if flipped:
                self._pending_flips.setdefault(label, set()).update(flipped)
        self._extra_valuations.extend(delta.valuations)

    def reset_repair(self) -> None:
        """Drop the carried repair state (e.g. the selection changed)."""
        self.repair_state = None
        self._repair_key = None
        self._pending_flips = {}

    def pool_size(self) -> int:
        """Carried step-0 candidate-pool entries (resource accounting)."""
        state = self.repair_state
        if state is None or state.pool_raw is None:
            return 0
        return len(state.pool_raw)

    def _apply_extensions(self, valuations: ValuationClass) -> ValuationClass:
        """The class with cumulative extensions and extra valuations.

        Extended valuations are replaced *in place* (same position,
        label and weight), extra valuations appended -- so the previous
        run's labels stay a prefix of this run's, the invariant the
        equivalence-partition repair keys on.
        """
        if not self._extensions and not self._extra_valuations:
            return valuations
        missing = dict(self._extensions)
        rebuilt: List[Valuation] = []
        for valuation in valuations:
            extra = missing.pop(str(valuation), None)
            rebuilt.append(
                valuation.cancelling(sorted(extra)) if extra else valuation
            )
        if missing:
            raise KeyError(
                f"deltas extended unknown valuation labels: {sorted(missing)}"
            )
        rebuilt.extend(self._extra_valuations)
        extended = ExplicitValuations(rebuilt)
        extended.name = valuations.name
        return extended

    def build_problem(
        self,
        selected: TensorSum,
        request: SummarizationRequest = SummarizationRequest(),
    ) -> SummarizationProblem:
        """The :class:`SummarizationProblem` a request resolves to.

        Factored out of :meth:`summarize` so callers can drive other
        summarizers (e.g. :class:`~repro.core.beam.BeamSummarizer`)
        over exactly the session's problem -- the snapshot/restore
        differential suite relies on this.
        """
        monoid = monoid_by_name(request.aggregation)
        expression = TensorSum(selected.terms, monoid)
        if request.valuation_class == "Cancel Single Annotation":
            valuations = CancelSingleAnnotation(
                self.instance.universe, domains=("user",)
            )
        elif request.valuation_class == "Cancel Single Attribute":
            valuations = CancelSingleAttribute(
                self.instance.universe, domains=("user",)
            )
        else:
            raise ValueError(
                f"unknown valuation class {request.valuation_class!r}; "
                f"expected one of {VALUATION_CLASSES}"
            )
        valuations = self._apply_extensions(valuations)
        try:
            val_func = VAL_FUNCS[request.val_func](monoid)
        except KeyError:
            raise ValueError(
                f"unknown VAL-FUNC {request.val_func!r}; expected one of "
                f"{sorted(VAL_FUNCS)}"
            ) from None
        return SummarizationProblem(
            expression=expression,
            universe=self.instance.universe,
            valuations=valuations,
            val_func=val_func,
            combiners=self.instance.combiners,
            constraint=self.instance.constraint,
            taxonomy=self.instance.taxonomy,
            description=f"PROX selection of {len(expression.groups())} movies",
            interner=self.interner,
        )

    def summarize(
        self,
        selected: TensorSum,
        request: SummarizationRequest = SummarizationRequest(),
        seed: int = 0,
    ) -> SummarizationResult:
        """Run Algorithm 1 on ``selected`` provenance.

        The aggregation / valuation class / VAL-FUNC dropdowns override
        the instance defaults.
        """
        problem = self.build_problem(selected, request)
        # A carried repair state is only sound for the request shape it
        # was captured under -- a different monoid / class / VAL-FUNC
        # (or seed: RNG streams must replay) recomputes from scratch.
        key = (
            request.aggregation,
            request.valuation_class,
            request.val_func,
            seed,
        )
        repair_from = self.repair_state if key == self._repair_key else None
        flipped = {
            label: tuple(sorted(names))
            for label, names in self._pending_flips.items()
        }
        summarizer = Summarizer(
            problem,
            request.to_config(seed),
            repair_from=repair_from,
            flipped=flipped if repair_from is not None else None,
        )
        result = summarizer.run()
        if result.repair_state is not None:
            self.repair_state = result.repair_state
            self._repair_key = key
            self._pending_flips = {}
        else:
            self.reset_repair()
        return result
