"""PROX summarization service (§7.1, Figure 7.4).

Exposes Algorithm 1 behind the parameter set of the PROX web UI's
summarization view: distance/size weights, distance/size bounds,
number of steps, aggregation function, valuation class and VAL-FUNC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.combiners import DomainCombiners
from ..core.problem import SummarizationConfig, SummarizationProblem
from ..core.summarize import SummarizationResult, Summarizer
from ..core.val_funcs import AbsoluteDifference, Disagreement, EuclideanDistance
from ..datasets.base import DatasetInstance
from ..provenance.ir import AnnotationInterner
from ..provenance.monoids import monoid_by_name
from ..provenance.tensor_sum import TensorSum
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
)

#: The VAL-FUNC choices offered by the summarization view.
VAL_FUNCS = {
    "Euclidean Distance": EuclideanDistance,
    "Absolute Difference": AbsoluteDifference,
    "Disagreement": Disagreement,
}

#: The valuation-class choices offered by the summarization view.
VALUATION_CLASSES = ("Cancel Single Annotation", "Cancel Single Attribute")


@dataclass(frozen=True)
class SummarizationRequest:
    """The Figure 7.4 form: what the user configures before summarizing."""

    distance_weight: float = 0.5
    size_weight: Optional[float] = None
    distance_bound: float = 1.0
    size_bound: int = 1
    number_of_steps: Optional[int] = 10
    aggregation: str = "MAX"
    valuation_class: str = "Cancel Single Annotation"
    val_func: str = "Euclidean Distance"
    #: Scoring-engine knobs (see :mod:`repro.core.engine`): worker
    #: processes per step ("auto"/"off"/int), incremental scorer carry
    #: ("auto"/"on"/"off"/bool), cross-step candidate carry
    #: ("auto"/"on"/"off"/bool), lazy-greedy selection ("on"/"off"),
    #: shared-batch sampled scoring ("auto"/"on"/"off"/bool) and the
    #: sampling-budget block size.
    parallelism: object = None
    incremental: object = None
    carry: object = None
    lazy: object = False
    sample_sharing: object = None
    sample_block: int = 64

    def to_config(self, seed: int = 0) -> SummarizationConfig:
        return SummarizationConfig(
            w_dist=self.distance_weight,
            w_size=self.size_weight,
            target_dist=self.distance_bound,
            target_size=self.size_bound,
            max_steps=self.number_of_steps,
            seed=seed,
            parallelism=self.parallelism,
            incremental=self.incremental,
            carry=self.carry,
            lazy=self.lazy,
            sample_sharing=self.sample_sharing,
            sample_block=self.sample_block,
        )


class SummarizationService:
    """Summarizes selected provenance with UI-style parameters."""

    def __init__(
        self,
        instance: DatasetInstance,
        interner: Optional[AnnotationInterner] = None,
    ):
        self.instance = instance
        #: Session-held interner threaded into every problem, so
        #: annotation ids stay stable across repeated summarize calls.
        self.interner = interner

    def summarize(
        self,
        selected: TensorSum,
        request: SummarizationRequest = SummarizationRequest(),
        seed: int = 0,
    ) -> SummarizationResult:
        """Run Algorithm 1 on ``selected`` provenance.

        The aggregation / valuation class / VAL-FUNC dropdowns override
        the instance defaults.
        """
        monoid = monoid_by_name(request.aggregation)
        expression = TensorSum(selected.terms, monoid)
        if request.valuation_class == "Cancel Single Annotation":
            valuations = CancelSingleAnnotation(
                self.instance.universe, domains=("user",)
            )
        elif request.valuation_class == "Cancel Single Attribute":
            valuations = CancelSingleAttribute(
                self.instance.universe, domains=("user",)
            )
        else:
            raise ValueError(
                f"unknown valuation class {request.valuation_class!r}; "
                f"expected one of {VALUATION_CLASSES}"
            )
        try:
            val_func = VAL_FUNCS[request.val_func](monoid)
        except KeyError:
            raise ValueError(
                f"unknown VAL-FUNC {request.val_func!r}; expected one of "
                f"{sorted(VAL_FUNCS)}"
            ) from None
        problem = SummarizationProblem(
            expression=expression,
            universe=self.instance.universe,
            valuations=valuations,
            val_func=val_func,
            combiners=self.instance.combiners,
            constraint=self.instance.constraint,
            taxonomy=self.instance.taxonomy,
            description=f"PROX selection of {len(expression.groups())} movies",
            interner=self.interner,
        )
        return Summarizer(problem, request.to_config(seed)).run()
