"""Transport-free PROX request dispatch.

The serving refactor splits ``prox/server.py``'s old monolithic
handler into two halves so the same handler logic serves every
deployment shape:

* :class:`ProxApp` (this module) -- the routing table and handlers.
  ``dispatch(method, path, query, body)`` returns a plain
  ``(status, body, content_type, headers)`` tuple: JSON-able, and
  picklable, so a sharded front can forward it over a queue from a
  worker process unchanged.
* the HTTP adapter (:mod:`repro.prox.server`) -- socket plumbing,
  request metrics, latency-SLO accounting.

Sessions are owned by a :class:`~repro.prox.manager.SessionManager`.
Session-scoped routes resolve their target session from (first match
wins) the ``/sessions/<id>/<endpoint>`` path form, a ``?session=<id>``
query parameter, or the app's default session (single-session
back-compat: ``ProxServer(session)`` still serves ``POST /select`` on
that session).  Each resolved request runs under that session's lock
only -- read-only routes (``/healthz``, ``/metrics``, ``/sessions``,
stats, debug) take no session lock at all, and requests on distinct
sessions never contend.

Session lifecycle routes::

    POST   /sessions                {"session_id"?: ..., "seed"?: ...}
                                    -> 201 {"session_id": ...};
                                    429 + Retry-After at capacity
    DELETE /sessions/<id>           close (idempotent 404 after)
    POST   /sessions/<id>/evict     snapshot-evict now (409 if not
                                    snapshotable)
    POST   /sessions/<id>/restore   rehydrate an evicted session now
    GET    /sessions/<id>/stats     resource account (live) or
                                    evicted stub
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Optional, Tuple

from ..observability import health as _health
from ..observability import metrics as _metrics
from ..observability import profiling as _profiling
from ..observability import resources as _resources
from ..observability import slo as _slo
from ..provenance import ir as _ir
from .manager import CapacityError, SessionManager, UnknownSessionError
from .session import ProxSession
from .summarization import SummarizationRequest

#: ``(status, body, content_type, headers)``; ``body`` is a JSON-able
#: dict (rendered by the adapter) or a pre-rendered string.
AppResponse = Tuple[int, Any, str, Dict[str, str]]

JSON = "application/json; charset=utf-8"
PROM_TEXT = "text/plain; version=0.0.4; charset=utf-8"

#: Routes used as metric label values; anything else becomes "other"
#: so scrape cardinality stays bounded under hostile paths.  The
#: session-scoped forms (``/sessions/<id>/summarize`` etc.) label as
#: their base route.
_KNOWN_PATHS = frozenset(
    {
        "/titles",
        "/select",
        "/summarize",
        "/ingest",
        "/evaluate",
        "/summary/expression",
        "/summary/groups",
        "/healthz",
        "/metrics",
        "/sessions",
        "/debug/profile",
        "/debug/slow_requests",
    }
)

#: Endpoints that may appear under ``/sessions/<id>/``.
_SESSION_ENDPOINTS = frozenset(
    {
        "/titles",
        "/select",
        "/summarize",
        "/ingest",
        "/evaluate",
        "/summary/expression",
        "/summary/groups",
    }
)

_SESSION_PATH = re.compile(r"^/sessions/([^/]+)(/.*)?$")
_SESSION_STATS_PATH = re.compile(r"^/sessions/([^/]+)/stats$")


def metric_path(path: str) -> str:
    """The bounded-cardinality route label for ``path``."""
    if path in _KNOWN_PATHS:
        return path
    match = _SESSION_PATH.match(path)
    if match:
        rest = match.group(2) or ""
        if rest == "/stats":
            return "/sessions/<id>/stats"
        if rest in _SESSION_ENDPOINTS:
            return rest
        if rest in ("", "/evict", "/restore"):
            return f"/sessions/<id>{rest}"
    return "other"


def split_session_path(path: str) -> Tuple[Optional[str], str]:
    """``/sessions/<id>/summarize`` -> ``("<id>", "/summarize")``.

    Paths that are not the session-scoped form pass through unchanged
    as ``(None, path)``.
    """
    match = _SESSION_PATH.match(path)
    if match and (match.group(2) or "") in _SESSION_ENDPOINTS:
        return match.group(1), match.group(2)
    return None, path


def json_response(
    status: int, payload: Mapping[str, Any], headers: Optional[Dict[str, str]] = None
) -> AppResponse:
    return (status, dict(payload), JSON, headers or {})


def error_response(
    status: int, message: str, headers: Optional[Dict[str, str]] = None
) -> AppResponse:
    return json_response(status, {"error": message}, headers)


class ProxApp:
    """The PROX routing table + handlers over a session manager."""

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        slo: Optional[_slo.SloPolicy] = None,
        slow_log: Optional[_slo.SlowRequestLog] = None,
        default_session_id: Optional[str] = None,
    ):
        self.manager = manager if manager is not None else SessionManager()
        self.slo = slo if slo is not None else _slo.SloPolicy()
        self.slow_log = (
            slow_log
            if slow_log is not None
            else _slo.SlowRequestLog(ring_size=self.slo.ring_size)
        )
        self.default_session_id = default_session_id

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        query: Optional[Mapping[str, str]] = None,
        body: Optional[Mapping[str, Any]] = None,
    ) -> AppResponse:
        query = dict(query or {})
        body = dict(body or {})
        try:
            return self._dispatch(method, path, query, body)
        except CapacityError as error:
            return error_response(
                429, str(error), {"Retry-After": f"{error.retry_after:g}"}
            )
        except (ValueError, KeyError, LookupError) as error:
            message = str(error)
            if isinstance(error, KeyError) and error.args:
                message = str(error.args[0])
            return error_response(400, message)
        except RuntimeError as error:
            return error_response(409, str(error))
        except Exception as error:  # pragma: no cover - defensive
            return error_response(500, str(error))

    def _dispatch(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Dict[str, Any],
    ) -> AppResponse:
        # Observability endpoints answer without any session lock: a
        # probe must succeed even mid-summarization.
        if method == "GET":
            if path == "/healthz":
                return json_response(200, _health.health_payload(self.health_extra()))
            if path == "/metrics":
                return (200, _metrics.REGISTRY.render(), PROM_TEXT, {})
            if path == "/sessions":
                return json_response(200, self.sessions_payload())
            stats = _SESSION_STATS_PATH.match(path)
            if stats:
                return self._handle_session_stats(stats.group(1))
            if path == "/debug/profile":
                return self._handle_profile(query)
            if path == "/debug/slow_requests":
                return json_response(
                    200,
                    {
                        "slow_requests": self.slow_log.snapshot(),
                        "total_recorded": self.slow_log.total_recorded,
                        "slo": self.slo.describe(),
                        "tracing_enabled": _is_tracing(),
                    },
                )
        if path == "/sessions" and method == "POST":
            return self._handle_create(body)
        lifecycle = _SESSION_PATH.match(path)
        if lifecycle:
            session_id, rest = lifecycle.group(1), lifecycle.group(2) or ""
            if rest == "" and method == "DELETE":
                return self._handle_delete(session_id)
            if rest == "/evict" and method == "POST":
                return self._handle_evict(session_id)
            if rest == "/restore" and method == "POST":
                return self._handle_restore(session_id)
        # Session-scoped data routes.
        session_id, endpoint = split_session_path(path)
        if session_id is None:
            session_id = query.get("session") or self.default_session_id
        if endpoint in _SESSION_ENDPOINTS:
            if session_id is None:
                return error_response(
                    404, "no session: create one via POST /sessions"
                )
            try:
                with self.manager.acquire(session_id) as session:
                    return self._dispatch_session(
                        method, endpoint, query, body, session
                    )
            except UnknownSessionError:
                return error_response(404, f"unknown session {session_id!r}")
        return error_response(404, f"unknown path {path}")

    def _dispatch_session(
        self,
        method: str,
        endpoint: str,
        query: Dict[str, str],
        body: Dict[str, Any],
        session: ProxSession,
    ) -> AppResponse:
        if method == "GET":
            if endpoint == "/titles":
                return json_response(
                    200, {"titles": list(session.titles(query.get("search")))}
                )
            if endpoint == "/summary/expression":
                return json_response(200, {"expression": session.expression_view()})
            if endpoint == "/summary/groups":
                return self._handle_groups(session)
        if method == "POST":
            if endpoint == "/select":
                return self._handle_select(session, body)
            if endpoint == "/summarize":
                return self._handle_summarize(session, body)
            if endpoint == "/ingest":
                return self._handle_ingest(session, body)
            if endpoint == "/evaluate":
                return self._handle_evaluate(session, body)
        return error_response(404, f"unknown path {endpoint}")

    # -- lifecycle handlers ------------------------------------------------

    def _handle_create(self, body: Dict[str, Any]) -> AppResponse:
        unknown = set(body) - {"session_id", "seed", "config"}
        if unknown:
            raise ValueError(f"unknown session parameters: {sorted(unknown)}")
        session_id = body.get("session_id")
        if "config" in body:
            # An explicit MovieLens generator config: the session owns a
            # bespoke instance (and stays snapshotable -- the config is
            # its regeneration recipe).
            from ..datasets.movielens import MovieLensConfig, generate_movielens

            config = dict(body["config"])
            if "constraint_attributes" in config:
                config["constraint_attributes"] = tuple(
                    config["constraint_attributes"]
                )
            instance_config = MovieLensConfig(**config)
            session = self.manager.create_with(
                session_id,
                lambda sid: ProxSession(
                    generate_movielens(instance_config), session_id=sid
                ),
            )
        elif "seed" in body:
            seed = int(body["seed"])
            session = self.manager.create_with(
                session_id, lambda sid: ProxSession(seed=seed, session_id=sid)
            )
        else:
            session = self.manager.create(session_id)
        return json_response(201, {"session_id": session.session_id})

    def _handle_delete(self, session_id: str) -> AppResponse:
        if self.manager.close(session_id):
            return json_response(200, {"closed": session_id})
        return error_response(404, f"unknown session {session_id!r}")

    def _handle_evict(self, session_id: str) -> AppResponse:
        if session_id not in self.manager:
            return error_response(404, f"unknown session {session_id!r}")
        if self.manager.evict(session_id):
            return json_response(200, {"evicted": session_id})
        return error_response(
            409, f"session {session_id!r} is not evictable (already "
            "evicted, or has no regeneration recipe)"
        )

    def _handle_restore(self, session_id: str) -> AppResponse:
        try:
            with self.manager.acquire(session_id):
                return json_response(200, {"restored": session_id})
        except UnknownSessionError:
            return error_response(404, f"unknown session {session_id!r}")

    def _handle_session_stats(self, session_id: str) -> AppResponse:
        account = _resources.REGISTRY.get(session_id)
        if account is not None:
            return json_response(200, account.to_dict())
        for row in self.manager.describe():
            if row.get("session_id") == session_id:
                return json_response(200, row)
        return error_response(404, f"unknown session {session_id!r}")

    # -- data handlers ------------------------------------------------------

    def _handle_select(
        self, session: ProxSession, body: Dict[str, Any]
    ) -> AppResponse:
        if "titles" in body:
            size = session.select_titles(list(body["titles"]))
        else:
            size = session.select_by(
                genre=body.get("genre"),
                year=body.get("year"),
                decade=body.get("decade"),
            )
        return json_response(200, {"selected_size": size})

    def _handle_summarize(
        self, session: ProxSession, body: Dict[str, Any]
    ) -> AppResponse:
        allowed = {
            "distance_weight",
            "size_weight",
            "distance_bound",
            "size_bound",
            "number_of_steps",
            "aggregation",
            "valuation_class",
            "val_func",
            "parallelism",
            "incremental",
            "carry",
            "lazy",
            "sample_sharing",
            "sample_block",
            "repair",
            "slo_seconds",
        }
        unknown = set(body) - allowed - {"seed", "session_id"}
        if unknown:
            raise ValueError(f"unknown summarization parameters: {sorted(unknown)}")
        request = SummarizationRequest(
            **{key: value for key, value in body.items() if key in allowed}
        )
        result = session.summarize(request, seed=int(body.get("seed", 0)))
        scoring_paths: Dict[str, int] = {}
        for record in result.steps:
            scoring_path = record.scoring_path or "unknown"
            scoring_paths[scoring_path] = scoring_paths.get(scoring_path, 0) + 1
        return json_response(
            200,
            {
                "size": result.final_size,
                "distance": result.final_distance.normalized,
                "steps": result.n_steps,
                "stop_reason": result.stop_reason,
                "total_seconds": result.total_seconds,
                "scoring_paths": scoring_paths,
                "repaired": result.repaired,
                "repair_invalidated": result.repair_invalidated,
                "repair_seeded": result.repair_seeded,
                "session_id": session.session_id,
                "steps_detail": [
                    {
                        "step": record.step,
                        "merged": list(record.merged),
                        "label": record.label,
                        "size_after": record.size_after,
                        "distance_after": (
                            record.distance_after.normalized
                            if record.distance_after is not None
                            else None
                        ),
                        "n_candidates": record.n_candidates,
                        "n_rescored": record.n_rescored,
                        "scoring_path": record.scoring_path,
                        "candidate_seconds": record.candidate_seconds,
                        "step_seconds": record.step_seconds,
                    }
                    for record in result.steps
                ],
            },
        )

    def _handle_ingest(
        self, session: ProxSession, body: Dict[str, Any]
    ) -> AppResponse:
        from ..serialization import delta_from_dict

        payload = {k: v for k, v in body.items() if k != "session_id"}
        delta = delta_from_dict({"kind": "delta", **payload})
        return json_response(200, dict(session.ingest(delta)))

    def _handle_evaluate(
        self, session: ProxSession, body: Dict[str, Any]
    ) -> AppResponse:
        original, summary = session.evaluate(
            false_annotations=list(body.get("false_annotations", ())),
            false_attributes=body.get("false_attributes"),
        )
        return json_response(
            200,
            {
                "original": {
                    "ratings": dict(original.ratings),
                    "evaluation_time_ns": original.evaluation_time_ns,
                },
                "summary": {
                    "ratings": dict(summary.ratings),
                    "evaluation_time_ns": summary.evaluation_time_ns,
                },
            },
        )

    def _handle_groups(self, session: ProxSession) -> AppResponse:
        groups = [
            {
                "annotation": group.annotation,
                "size": group.size,
                "members": list(group.members),
                "shared_attributes": dict(group.shared_attributes),
                "aggregated": dict(group.aggregated),
            }
            for group in session.groups_view()
        ]
        return json_response(200, {"groups": groups})

    def _handle_profile(self, query: Dict[str, str]) -> AppResponse:
        """The continuous profiler's snapshot, or an on-demand burst.

        Lock-free with respect to sessions: the sampler observes the
        summarizing threads from outside, which is exactly the point.
        """
        profiler = _profiling.ensure_global()
        if profiler is not None:
            return json_response(200, profiler.snapshot())
        try:
            seconds = float(query.get("seconds", "0.5"))
            hz = float(query.get("hz", str(_profiling.DEFAULT_HZ)))
            if hz <= 0 or hz > _profiling.MAX_HZ:
                raise ValueError(f"hz must be in (0, {_profiling.MAX_HZ:g}]")
            if seconds <= 0 or seconds > _profiling.MAX_BURST_SECONDS:
                raise ValueError(
                    f"seconds must be in (0, {_profiling.MAX_BURST_SECONDS:g}]"
                )
        except ValueError as error:
            return error_response(400, f"invalid profile parameters: {error}")
        return json_response(
            200, _profiling.burst_sample(seconds=seconds, hz=hz)
        )

    # -- payload builders ---------------------------------------------------

    def sessions_payload(self) -> Dict[str, Any]:
        # The live rows are the registry-wide accounts (every session in
        # the process, managed or not -- matching the eviction ranking);
        # the manager contributes its evicted stubs on top.
        sessions = [dict(row, state="live") for row in _resources.REGISTRY.snapshot()]
        sessions.extend(
            row for row in self.manager.describe() if row.get("state") == "evicted"
        )
        return {
            "count": _resources.REGISTRY.count(),
            "manager": self.manager.stats(),
            "sessions": sessions,
            "eviction_ranking": _resources.REGISTRY.eviction_ranking(),
        }

    def health_extra(self) -> Dict[str, Any]:
        # Benign unlocked reads: attribute loads and int-sized counters.
        extra: Dict[str, Any] = {
            "sessions": self.manager.count(),
            "max_sessions": self.manager.max_sessions,
            "sessions_evicted_total": self.manager.evicted_total,
            "sessions_restored_total": self.manager.restored_total,
            "slo_breaches_total": self.slow_log.total_recorded,
            "ir_mode": _ir.active_mode(),
            "ir_arena_bytes": _ir.GLOBAL_STORE.arena_bytes(),
        }
        if self.default_session_id is not None:
            session = self.manager.peek(self.default_session_id)
            if session is not None:
                interner = session.interner
                extra.update(
                    {
                        "selected": session.selected is not None,
                        "summarized": session.result is not None,
                        "session_id": session.session_id,
                        "ir_interned_annotations": (
                            len(interner) if interner is not None else 0
                        ),
                    }
                )
        return extra


def _is_tracing() -> bool:
    from ..observability import tracing as _tracing

    return _tracing.is_enabled()
