"""PROX as an HTTP service (§7.1's REST API, stdlib-only).

The original PROX exposes its selection, summarization and evaluation
services as REST endpoints behind a Java/Spring server.  This module
is the *HTTP adapter* only: socket plumbing, request metrics and
latency-SLO accounting.  Routing and handler logic live in
:class:`~repro.prox.app.ProxApp`, so the exact same handlers serve the
single-process server here and the sharded multi-worker front
(:mod:`repro.prox.workers`).

=======  =========================  ======================================
method   path                       body / query
=======  =========================  ======================================
GET      /titles                    optional ``?search=substring``
POST     /select                    ``{"titles": [...]}`` or
                                    ``{"genre": ..., "year": ...,
                                    "decade": ...}``
POST     /summarize                 the Figure 7.4 form fields plus the
                                    scoring-engine knobs (see
                                    :class:`SummarizationRequest`)
GET      /summary/expression        the polynomial-form view (Figure 7.8)
GET      /summary/groups            the groups view (Figures 7.5-7.7)
POST     /ingest                    a streaming provenance delta
POST     /evaluate                  ``{"false_annotations": [...],
                                    "false_attributes": {...}}``
POST     /sessions                  create a session -> 201; at the
                                    capacity limit -> 429 + Retry-After
DELETE   /sessions/<id>             close a session
POST     /sessions/<id>/evict       snapshot-evict to disk now
POST     /sessions/<id>/restore     rehydrate an evicted session now
GET      /sessions                  per-session resource accounts,
                                    manager stats, eviction ranking
GET      /sessions/<id>/stats       one session's account (lock-free)
GET      /healthz                   liveness probe (lock-free)
GET      /metrics                   Prometheus text exposition
GET      /debug/profile             profiler snapshot / bounded burst
GET      /debug/slow_requests       tail-sampled SLO-breach ring
=======  =========================  ======================================

Every data route also accepts the session-scoped forms
``/sessions/<id>/summarize`` and ``?session=<id>``; without either, the
server's default session answers (single-session back-compat).  Each
request locks only its own session -- ``/healthz``, ``/metrics``,
``/sessions`` and a ``/summarize`` on another session never contend.

Latency SLOs: every route has a declared target
(:class:`~repro.observability.slo.SloPolicy`; override via
``ProxServer(slo=...)``).  A request slower than its target counts one
``prox_slo_breaches_total{scope=<route>}`` and is retained in the
slow-request ring -- with its full span tree when tracing is enabled.

Responses are JSON (``/metrics`` is ``text/plain``); errors use
conventional status codes with a ``{"error": ...}`` body.  Every
request is counted in ``prox_http_requests_total{method,path,status}``
/ timed in ``prox_http_request_seconds`` and logged at INFO through
``repro.prox.server``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import profiling as _profiling
from ..observability import slo as _slo
from ..observability import tracing as _tracing
from .app import ProxApp, metric_path as _metric_path
from .manager import SessionManager
from .session import ProxSession

_LOG = _log.get_logger("prox.server")
_HTTP_REQUESTS = _metrics.counter(
    "prox_http_requests_total",
    "HTTP requests served, by method, route and status.",
    labelnames=("method", "path", "status"),
)
_HTTP_SECONDS = _metrics.histogram(
    "prox_http_request_seconds",
    "HTTP request handling seconds, by route.",
    labelnames=("path",),
)


class ProxRequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: parse, dispatch to the backend, write."""

    server_version = "PROX/1.0"
    #: Set by ProxServer: the dispatch backend (a ProxApp or a sharded
    #: front), the latency SLO policy, the tail-sampled slow-request
    #: ring, and the owning server (in-flight accounting for drain).
    backend: Any
    slo_policy: _slo.SloPolicy
    slow_log: _slo.SlowRequestLog
    prox_server: "ProxServer"

    #: Status of the response most recently written by this handler.
    _last_status: int = 0

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route ``http.server``'s raw stderr lines through the
        structured logger at DEBUG (silent at the default level, so
        tests and the CLI stay quiet; ``REPRO_LOG_LEVEL=debug`` shows
        them)."""
        _LOG.debug("http_server message=%s", format % args)

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_response(self, response: Tuple[int, Any, str, Dict[str, str]]) -> None:
        status, payload, content_type, headers = response
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self._send_bytes(status, body, content_type, headers)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if not length:
            return {}
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- plumbing -----------------------------------------------------------

    def _observe(self, method: str, path: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        label_path = _metric_path(path)
        if _metrics.ENABLED:
            _HTTP_REQUESTS.inc(
                method=method, path=label_path, status=str(self._last_status)
            )
            _HTTP_SECONDS.observe(elapsed, path=label_path)
        # Latency SLO: count the breach, and tail-sample -- the request
        # span tree (complete by now: _observe runs after the span
        # closed) is retained only for requests over their target.
        target = self.slo_policy.target(label_path)
        breached = elapsed > target
        trace: Optional[Dict[str, Any]] = None
        if _tracing.is_enabled():
            root = _tracing.take_trace()
            if breached and root is not None:
                trace = root.to_dict()
        if breached:
            _slo.record_breach(label_path)
            self.slow_log.record(
                method=method,
                path=path,
                status=self._last_status,
                seconds=elapsed,
                target_seconds=target,
                trace=trace,
            )
        _LOG.info(
            "http_request method=%s path=%s status=%d seconds=%.4f",
            method,
            path,
            self._last_status,
            elapsed,
        )

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        self.prox_server._request_started()
        try:
            with _tracing.span("http[%s %s]", method, parsed.path):
                try:
                    body = self._body() if method in ("POST", "DELETE") else {}
                except ValueError as error:
                    self._send_response(
                        (400, {"error": str(error)},
                         "application/json; charset=utf-8", {})
                    )
                    return
                query = {
                    key: values[0]
                    for key, values in parse_qs(parsed.query).items()
                }
                response = self.backend.dispatch(
                    method, parsed.path, query, body
                )
                self._send_response(response)
        finally:
            self.prox_server._request_finished()
            self._observe(method, parsed.path, started)

    def do_GET(self) -> None:  # noqa: N802
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")


class ProxServer:
    """A threaded PROX HTTP server over a dispatch backend.

    Single-session back-compat (the demo deployment)::

        server = ProxServer(session)          # port 0: pick a free port
        server.start()
        ... http requests against server.address ...
        server.stop()

    Multi-session::

        server = ProxServer(manager=SessionManager(max_sessions=32))

    Sharded (see :mod:`repro.prox.workers`)::

        server = ProxServer(backend=WorkerFront(workers=2))
    """

    def __init__(
        self,
        session: Optional[ProxSession] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: Optional[_slo.SloPolicy] = None,
        manager: Optional[SessionManager] = None,
        backend: Optional[Any] = None,
    ):
        self.slo = slo if slo is not None else _slo.SloPolicy()
        self.slow_log = _slo.SlowRequestLog(ring_size=self.slo.ring_size)
        self.manager: Optional[SessionManager] = None
        self.app: Optional[ProxApp] = None
        self.session: Optional[ProxSession] = None
        if backend is not None:
            if session is not None or manager is not None:
                raise ValueError("backend= excludes session=/manager=")
            self.backend = backend
        else:
            self.manager = manager if manager is not None else SessionManager()
            default_session_id: Optional[str] = None
            if session is None and manager is None:
                session = ProxSession()
            if session is not None:
                self.manager.adopt(session)
                default_session_id = session.session_id
                self.session = session
            self.app = ProxApp(
                manager=self.manager,
                slo=self.slo,
                slow_log=self.slow_log,
                default_session_id=default_session_id,
            )
            self.backend = self.app
        handler = type(
            "BoundProxHandler",
            (ProxRequestHandler,),
            {
                "backend": self.backend,
                "slo_policy": self.slo,
                "slow_log": self.slow_log,
                "prox_server": self,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()

    # -- in-flight accounting (drain) --------------------------------------

    def _request_started(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def _request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.set()

    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("server already started")
        # REPRO_PROFILE=on: the continuous profiler covers the server's
        # whole lifetime (no-op and zero-cost when the flag is off).
        _profiling.ensure_global()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="prox-http", daemon=True
        )
        self._thread.start()
        host, port = self.address
        _LOG.info("server_started host=%s port=%d", host, port)

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown, phase 1: quiesce and snapshot.

        Stops accepting new connections, waits for in-flight requests
        to finish (``ThreadingHTTPServer`` handler threads are daemons,
        so nothing else would), then snapshots live sessions via the
        backend.  Call :meth:`stop` afterwards to release the socket.
        """
        self._httpd.shutdown()
        drained_in_time = self._idle.wait(timeout)
        result: Dict[str, Any] = {"inflight_drained": drained_in_time}
        if not drained_in_time:  # pragma: no cover - pathological hang
            result["inflight_remaining"] = self.inflight()
            _LOG.warning(
                "drain_timeout inflight=%d timeout=%.1f",
                self.inflight(),
                timeout,
            )
        if hasattr(self.backend, "drain"):
            result["sessions"] = self.backend.drain()
        elif self.manager is not None:
            result["sessions"] = self.manager.drain()
        _LOG.info("server_drained result=%s", result)
        return result

    def stop(self) -> None:
        """Stop the accept loop and release the socket.

        Raises :class:`RuntimeError` if the server thread fails to exit
        within the join timeout -- a silently leaked thread would keep
        the port bound and hide the hang.
        """
        if self._thread is None:
            return
        self._httpd.shutdown()
        thread = self._thread
        thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None
        if thread.is_alive():
            raise RuntimeError(
                "server thread failed to stop within 5s; socket closed "
                "but the serve loop is still running"
            )
        _LOG.info("server_stopped")

    def __enter__(self) -> "ProxServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
