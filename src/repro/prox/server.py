"""PROX as an HTTP service (§7.1's REST API, stdlib-only).

The original PROX exposes its selection, summarization and evaluation
services as REST endpoints behind a Java/Spring server.  This module
provides the same API surface on ``http.server``:

=======  =====================  ==========================================
method   path                   body / query
=======  =====================  ==========================================
GET      /titles                optional ``?search=substring``
POST     /select                ``{"titles": [...]}`` or
                                ``{"genre": ..., "year": ..., "decade": ...}``
POST     /summarize             the Figure 7.4 form fields (all optional):
                                ``distance_weight``, ``size_weight``,
                                ``distance_bound``, ``size_bound``,
                                ``number_of_steps``, ``aggregation``,
                                ``valuation_class``, ``val_func``, plus the
                                scoring-engine knobs ``parallelism``
                                ("auto"/"off"/int), ``incremental``
                                ("auto"/"on"/"off"), ``carry``
                                ("auto"/"on"/"off") and ``lazy``
                                ("on"/"off")
GET      /summary/expression    the polynomial-form view (Figure 7.8)
GET      /summary/groups        the groups view (Figures 7.5-7.7)
POST     /ingest                a streaming provenance delta (see
                                ``repro.serialization.delta_from_dict``):
                                ``annotations``, ``terms``, ``valuations``,
                                ``extend_valuations`` -- applied append-only
                                to the live session so the next /summarize
                                with ``"repair"`` repairs the summary
POST     /evaluate              ``{"false_annotations": [...],
                                "false_attributes": {...}}`` → original and
                                summary answers with evaluation times
GET      /healthz               liveness probe (lock-free, always answers)
GET      /metrics               Prometheus text exposition of the process
                                registry (lock-free)
GET      /sessions              per-session resource accounts plus the
                                eviction-advisor ranking (lock-free)
GET      /sessions/<id>/stats   one session's resource account (lock-free)
GET      /debug/profile         the continuous profiler's snapshot when
                                ``REPRO_PROFILE`` is on; otherwise a
                                bounded on-demand burst sample
                                (``?seconds=0.5&hz=97``)
GET      /debug/slow_requests   the tail-sampled ring of requests that
                                breached their latency SLO (with span
                                trees when ``REPRO_TRACE`` is on)
=======  =====================  ==========================================

Latency SLOs: every route has a declared target
(:class:`~repro.observability.slo.SloPolicy`; override via
``ProxServer(slo=...)``).  A request slower than its target counts one
``prox_slo_breaches_total{scope=<route>}`` and is retained in the
slow-request ring -- with its full span tree when tracing is enabled
(tail sampling: only the interesting traces are kept, and the ring is
bounded).

Responses are JSON (``/metrics`` is ``text/plain``); errors use
conventional status codes with a ``{"error": ...}`` body.  One server
hosts one :class:`~repro.prox.session.ProxSession` (like the demo
deployment).  Every request is counted in
``prox_http_requests_total{method,path,status}`` / timed in
``prox_http_request_seconds`` and logged at INFO through
``repro.prox.server`` (key=value lines; ``REPRO_LOG_LEVEL`` gates
them, so tests stay silent at the default ``warning``).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..observability import health as _health
from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import profiling as _profiling
from ..observability import resources as _resources
from ..observability import slo as _slo
from ..observability import tracing as _tracing
from ..provenance import ir as _ir
from .session import ProxSession
from .summarization import SummarizationRequest

_LOG = _log.get_logger("prox.server")
_HTTP_REQUESTS = _metrics.counter(
    "prox_http_requests_total",
    "HTTP requests served, by method, route and status.",
    labelnames=("method", "path", "status"),
)
_HTTP_SECONDS = _metrics.histogram(
    "prox_http_request_seconds",
    "HTTP request handling seconds, by route.",
    labelnames=("path",),
)

#: Routes used as metric label values; anything else becomes "other"
#: so scrape cardinality stays bounded under hostile paths.
_KNOWN_PATHS = frozenset(
    {
        "/titles",
        "/select",
        "/summarize",
        "/ingest",
        "/evaluate",
        "/summary/expression",
        "/summary/groups",
        "/healthz",
        "/metrics",
        "/sessions",
        "/debug/profile",
        "/debug/slow_requests",
    }
)

_SESSION_STATS_PATH = re.compile(r"^/sessions/([^/]+)/stats$")


def _metric_path(path: str) -> str:
    """The bounded-cardinality route label for ``path``."""
    if path in _KNOWN_PATHS:
        return path
    if _SESSION_STATS_PATH.match(path):
        return "/sessions/<id>/stats"
    return "other"


class ProxRequestHandler(BaseHTTPRequestHandler):
    """Dispatches the PROX REST API onto the server's session."""

    server_version = "PROX/1.0"
    #: Set by ProxServer; the shared session plus its lock, the latency
    #: SLO policy and the tail-sampled slow-request ring.
    session: ProxSession
    lock: threading.Lock
    slo_policy: _slo.SloPolicy
    slow_log: _slo.SlowRequestLog

    # -- plumbing -----------------------------------------------------------

    #: Status of the response most recently written by this handler.
    _last_status: int = 0

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route ``http.server``'s raw stderr lines through the
        structured logger at DEBUG (silent at the default level, so
        tests and the CLI stay quiet; ``REPRO_LOG_LEVEL=debug`` shows
        them)."""
        _LOG.debug("http_server message=%s", format % args)

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self._send_bytes(status, body, "application/json; charset=utf-8")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if not length:
            return {}
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routing --------------------------------------------------------------

    def _observe(self, method: str, path: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        label_path = _metric_path(path)
        if _metrics.ENABLED:
            _HTTP_REQUESTS.inc(
                method=method, path=label_path, status=str(self._last_status)
            )
            _HTTP_SECONDS.observe(elapsed, path=label_path)
        # Latency SLO: count the breach, and tail-sample -- the request
        # span tree (complete by now: _observe runs after the span
        # closed) is retained only for requests over their target.
        target = self.slo_policy.target(label_path)
        breached = elapsed > target
        trace: Optional[Dict[str, Any]] = None
        if _tracing.is_enabled():
            root = _tracing.take_trace()
            if breached and root is not None:
                trace = root.to_dict()
        if breached:
            _slo.record_breach(label_path)
            self.slow_log.record(
                method=method,
                path=path,
                status=self._last_status,
                seconds=elapsed,
                target_seconds=target,
                trace=trace,
            )
        _LOG.info(
            "http_request method=%s path=%s status=%d seconds=%.4f",
            method,
            path,
            self._last_status,
            elapsed,
        )

    def do_GET(self) -> None:  # noqa: N802
        started = time.perf_counter()
        parsed = urlparse(self.path)
        try:
            with _tracing.span("http[GET %s]", parsed.path):
                self._route_get(parsed)
        finally:
            self._observe("GET", parsed.path, started)

    def do_POST(self) -> None:  # noqa: N802
        started = time.perf_counter()
        parsed = urlparse(self.path)
        try:
            with _tracing.span("http[POST %s]", parsed.path):
                self._route_post(parsed)
        finally:
            self._observe("POST", parsed.path, started)

    def _route_get(self, parsed) -> None:
        # Observability endpoints answer without the session lock: a
        # probe must succeed even while a long summarization holds it.
        if parsed.path == "/healthz":
            self._send(200, _health.health_payload(self._health_extra()))
            return
        if parsed.path == "/metrics":
            self._send_text(
                200,
                _metrics.REGISTRY.render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if parsed.path == "/sessions":
            self._send(
                200,
                {
                    "count": _resources.REGISTRY.count(),
                    "sessions": _resources.REGISTRY.snapshot(),
                    "eviction_ranking": _resources.REGISTRY.eviction_ranking(),
                },
            )
            return
        session_stats = _SESSION_STATS_PATH.match(parsed.path)
        if session_stats:
            account = _resources.REGISTRY.get(session_stats.group(1))
            if account is None:
                self._error(
                    404, f"unknown session {session_stats.group(1)!r}"
                )
            else:
                self._send(200, account.to_dict())
            return
        if parsed.path == "/debug/profile":
            self._handle_profile(parsed)
            return
        if parsed.path == "/debug/slow_requests":
            self._send(
                200,
                {
                    "slow_requests": self.slow_log.snapshot(),
                    "total_recorded": self.slow_log.total_recorded,
                    "slo": self.slo_policy.describe(),
                    "tracing_enabled": _tracing.is_enabled(),
                },
            )
            return
        try:
            with self.lock:
                if parsed.path == "/titles":
                    query = parse_qs(parsed.query)
                    search = query.get("search", [None])[0]
                    self._send(200, {"titles": list(self.session.titles(search))})
                elif parsed.path == "/summary/expression":
                    self._send(200, {"expression": self.session.expression_view()})
                elif parsed.path == "/summary/groups":
                    groups = [
                        {
                            "annotation": group.annotation,
                            "size": group.size,
                            "members": list(group.members),
                            "shared_attributes": dict(group.shared_attributes),
                            "aggregated": dict(group.aggregated),
                        }
                        for group in self.session.groups_view()
                    ]
                    self._send(200, {"groups": groups})
                else:
                    self._error(404, f"unknown path {parsed.path}")
        except RuntimeError as error:
            self._error(409, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, str(error))

    def _handle_profile(self, parsed) -> None:
        """The continuous profiler's snapshot, or an on-demand burst.

        Lock-free with respect to the session: the sampler observes the
        summarizing thread from outside, which is exactly the point.
        """
        profiler = _profiling.ensure_global()
        if profiler is not None:
            self._send(200, profiler.snapshot())
            return
        query = parse_qs(parsed.query)
        try:
            seconds = float(query.get("seconds", ["0.5"])[0])
            hz = float(query.get("hz", [str(_profiling.DEFAULT_HZ)])[0])
            if hz <= 0 or hz > _profiling.MAX_HZ:
                raise ValueError(
                    f"hz must be in (0, {_profiling.MAX_HZ:g}]"
                )
            if seconds <= 0 or seconds > _profiling.MAX_BURST_SECONDS:
                raise ValueError(
                    f"seconds must be in (0, {_profiling.MAX_BURST_SECONDS:g}]"
                )
        except ValueError as error:
            self._error(400, f"invalid profile parameters: {error}")
            return
        self._send(200, _profiling.burst_sample(seconds=seconds, hz=hz))

    def _health_extra(self) -> Dict[str, Any]:
        # Benign unlocked reads: attribute loads and int-sized counters.
        interner = self.session.interner
        return {
            "selected": self.session.selected is not None,
            "summarized": self.session.result is not None,
            "session_id": self.session.session_id,
            "slo_breaches_total": self.slow_log.total_recorded,
            "ir_mode": _ir.active_mode(),
            "ir_interned_annotations": len(interner) if interner is not None else 0,
            "ir_arena_bytes": _ir.GLOBAL_STORE.arena_bytes(),
        }

    def _route_post(self, parsed) -> None:
        try:
            body = self._body()
            with self.lock:
                if parsed.path == "/select":
                    self._handle_select(body)
                elif parsed.path == "/summarize":
                    self._handle_summarize(body)
                elif parsed.path == "/ingest":
                    self._handle_ingest(body)
                elif parsed.path == "/evaluate":
                    self._handle_evaluate(body)
                else:
                    self._error(404, f"unknown path {parsed.path}")
        except (ValueError, KeyError, LookupError) as error:
            self._error(400, str(error))
        except RuntimeError as error:
            self._error(409, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, str(error))

    # -- handlers ----------------------------------------------------------------

    def _handle_select(self, body: Dict[str, Any]) -> None:
        if "titles" in body:
            size = self.session.select_titles(list(body["titles"]))
        else:
            size = self.session.select_by(
                genre=body.get("genre"),
                year=body.get("year"),
                decade=body.get("decade"),
            )
        self._send(200, {"selected_size": size})

    def _handle_summarize(self, body: Dict[str, Any]) -> None:
        allowed = {
            "distance_weight",
            "size_weight",
            "distance_bound",
            "size_bound",
            "number_of_steps",
            "aggregation",
            "valuation_class",
            "val_func",
            "parallelism",
            "incremental",
            "carry",
            "lazy",
            "sample_sharing",
            "sample_block",
            "repair",
            "slo_seconds",
        }
        unknown = set(body) - allowed - {"seed"}
        if unknown:
            raise ValueError(f"unknown summarization parameters: {sorted(unknown)}")
        request = SummarizationRequest(
            **{key: value for key, value in body.items() if key in allowed}
        )
        result = self.session.summarize(request, seed=int(body.get("seed", 0)))
        scoring_paths: Dict[str, int] = {}
        for record in result.steps:
            path = record.scoring_path or "unknown"
            scoring_paths[path] = scoring_paths.get(path, 0) + 1
        self._send(
            200,
            {
                "size": result.final_size,
                "distance": result.final_distance.normalized,
                "steps": result.n_steps,
                "stop_reason": result.stop_reason,
                "total_seconds": result.total_seconds,
                "scoring_paths": scoring_paths,
                "repaired": result.repaired,
                "repair_invalidated": result.repair_invalidated,
                "repair_seeded": result.repair_seeded,
                "steps_detail": [
                    {
                        "step": record.step,
                        "merged": list(record.merged),
                        "label": record.label,
                        "size_after": record.size_after,
                        "distance_after": (
                            record.distance_after.normalized
                            if record.distance_after is not None
                            else None
                        ),
                        "n_candidates": record.n_candidates,
                        "n_rescored": record.n_rescored,
                        "scoring_path": record.scoring_path,
                        "candidate_seconds": record.candidate_seconds,
                        "step_seconds": record.step_seconds,
                    }
                    for record in result.steps
                ],
            },
        )

    def _handle_ingest(self, body: Dict[str, Any]) -> None:
        from ..serialization import delta_from_dict

        delta = delta_from_dict({"kind": "delta", **body})
        stats = self.session.ingest(delta)
        self._send(200, dict(stats))

    def _handle_evaluate(self, body: Dict[str, Any]) -> None:
        original, summary = self.session.evaluate(
            false_annotations=list(body.get("false_annotations", ())),
            false_attributes=body.get("false_attributes"),
        )
        self._send(
            200,
            {
                "original": {
                    "ratings": dict(original.ratings),
                    "evaluation_time_ns": original.evaluation_time_ns,
                },
                "summary": {
                    "ratings": dict(summary.ratings),
                    "evaluation_time_ns": summary.evaluation_time_ns,
                },
            },
        )


class ProxServer:
    """A threaded PROX HTTP server around one session.

    Usage::

        server = ProxServer(session)          # port 0: pick a free port
        server.start()
        ... http requests against server.address ...
        server.stop()
    """

    def __init__(
        self,
        session: Optional[ProxSession] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: Optional[_slo.SloPolicy] = None,
    ):
        self.session = session if session is not None else ProxSession()
        self.slo = slo if slo is not None else _slo.SloPolicy()
        self.slow_log = _slo.SlowRequestLog(ring_size=self.slo.ring_size)
        handler = type(
            "BoundProxHandler",
            (ProxRequestHandler,),
            {
                "session": self.session,
                "lock": threading.Lock(),
                "slo_policy": self.slo,
                "slow_log": self.slow_log,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("server already started")
        # REPRO_PROFILE=on: the continuous profiler covers the server's
        # whole lifetime (no-op and zero-cost when the flag is off).
        _profiling.ensure_global()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="prox-http", daemon=True
        )
        self._thread.start()
        host, port = self.address
        _LOG.info("server_started host=%s port=%d", host, port)

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None
        _LOG.info("server_stopped")

    def __enter__(self) -> "ProxServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
