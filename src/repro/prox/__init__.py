"""The PROX system (Chapter 7): selection, summarization, provisioning."""

from .evaluator import EvaluationOutcome, EvaluatorService
from .selection import SelectionService
from .server import ProxServer
from .session import GroupView, ProxSession
from .summarization import (
    VAL_FUNCS,
    VALUATION_CLASSES,
    SummarizationRequest,
    SummarizationService,
)

__all__ = [
    "EvaluationOutcome",
    "EvaluatorService",
    "GroupView",
    "ProxServer",
    "ProxSession",
    "SelectionService",
    "SummarizationRequest",
    "SummarizationService",
    "VALUATION_CLASSES",
    "VAL_FUNCS",
]
