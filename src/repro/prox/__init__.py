"""The PROX system (Chapter 7): selection, summarization, provisioning."""

from .app import ProxApp
from .evaluator import EvaluationOutcome, EvaluatorService
from .manager import CapacityError, SessionManager
from .selection import SelectionService
from .server import ProxServer
from .session import GroupView, ProxSession
from .summarization import (
    VAL_FUNCS,
    VALUATION_CLASSES,
    SummarizationRequest,
    SummarizationService,
)

__all__ = [
    "CapacityError",
    "EvaluationOutcome",
    "EvaluatorService",
    "GroupView",
    "ProxApp",
    "ProxServer",
    "SessionManager",
    "ProxSession",
    "SelectionService",
    "SummarizationRequest",
    "SummarizationService",
    "VALUATION_CLASSES",
    "VAL_FUNCS",
]
