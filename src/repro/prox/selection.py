"""PROX selection service (§7.1, Figures 7.2-7.3).

The selection service restricts provenance to user-chosen data
components before summarization: either an explicit list of movie
titles, or all movies matching genre/year criteria.  Selection never
loses information -- it returns the sub-expression consisting of the
selected groups' terms, over the same annotation universe.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets.base import DatasetInstance
from ..provenance.tensor_sum import TensorSum


class SelectionService:
    """Selects provenance by title or by attribute criteria."""

    def __init__(self, instance: DatasetInstance):
        if not isinstance(instance.expression, TensorSum):
            raise TypeError("the selection service operates on tensor-sum provenance")
        self.instance = instance

    def available_titles(self) -> Sequence[str]:
        """All group (movie) titles present in the provenance."""
        return [group for group in self.instance.expression.groups() if group]

    def search_titles(self, needle: str) -> Sequence[str]:
        """Substring title search, as in the Figure 7.2 search box."""
        lowered = needle.lower()
        return [title for title in self.available_titles() if lowered in title.lower()]

    def by_titles(self, titles: Sequence[str]) -> TensorSum:
        """Provenance of exactly the chosen titles."""
        chosen = set(titles)
        missing = chosen - set(self.available_titles())
        if missing:
            raise KeyError(f"unknown titles: {sorted(missing)}")
        expression = self.instance.expression
        return TensorSum(
            (term for term in expression.terms if term.group in chosen),
            expression.monoid,
        )

    def by_attributes(
        self,
        genre: Optional[str] = None,
        year: Optional[int] = None,
        decade: Optional[str] = None,
    ) -> TensorSum:
        """Provenance of all movies matching the given criteria
        (Figure 7.3's genre + year selection)."""
        universe = self.instance.universe
        titles = []
        for title in self.available_titles():
            annotation = universe[title]
            if genre is not None and annotation.attributes.get("genre") != genre:
                continue
            if year is not None and annotation.attributes.get("year") != year:
                continue
            if decade is not None and annotation.attributes.get("decade") != decade:
                continue
            titles.append(title)
        if not titles:
            raise LookupError(
                f"no movies match genre={genre!r} year={year!r} decade={decade!r}"
            )
        return self.by_titles(titles)
