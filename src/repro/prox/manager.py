"""Multi-session lifecycle: registry, per-session locks, eviction.

PR 7 built the signals (per-session resource accounts, the
``eviction_score`` ranking); this module is the actor that consumes
them.  A :class:`SessionManager` owns every live
:class:`~repro.prox.session.ProxSession` in a process:

* **create/lookup/close** with per-session ``RLock``\\ s, so a long
  ``/summarize`` on one session never blocks requests on another
  (replacing the server's old class-level lock);
* **capacity limits** -- ``create`` past ``max_sessions`` raises
  :class:`CapacityError`, which the HTTP layer maps to
  ``429 Too Many Requests`` + ``Retry-After``;
* **snapshot eviction** -- a background loop walks the PR 7 eviction
  ranking and snapshot-evicts sessions idle past the threshold
  (:meth:`ProxSession.snapshot` + close); the next ``acquire`` on an
  evicted session transparently rehydrates it from disk
  (:meth:`ProxSession.restore`), so eviction is invisible to clients
  beyond the first-touch latency.

Counters: ``prox_sessions_evicted_total``,
``prox_sessions_restored_total``, ``prox_sessions_rejected_total``.
"""

from __future__ import annotations

import contextlib
import os
import re
import shutil
import tempfile
import threading
from typing import Callable, Dict, Iterator, List, Optional

from ..observability import metrics as _metrics
from ..observability import resources as _resources
from .session import ProxSession

_EVICTED = _metrics.counter(
    "prox_sessions_evicted_total",
    "Sessions snapshot-evicted to disk by the session manager.",
)
_RESTORED = _metrics.counter(
    "prox_sessions_restored_total",
    "Evicted sessions rehydrated from snapshots on next touch.",
)
_REJECTED = _metrics.counter(
    "prox_sessions_rejected_total",
    "Session creations rejected at the capacity limit (HTTP 429).",
)

_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Default idle threshold before the background loop evicts (seconds).
DEFAULT_EVICT_IDLE_SECONDS = 300.0
#: Default cadence of the background eviction loop (seconds).
DEFAULT_EVICTION_INTERVAL = 5.0


class CapacityError(RuntimeError):
    """The manager is at ``max_sessions``; retry after a short delay."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class UnknownSessionError(KeyError):
    """No session registered under the requested id (HTTP 404)."""


class _Entry:
    """One managed session slot (live, or evicted to a snapshot)."""

    __slots__ = ("lock", "session", "snapshot_path", "evicted")

    def __init__(self, session: Optional[ProxSession]):
        self.lock = threading.RLock()
        self.session = session
        self.snapshot_path: Optional[str] = None
        self.evicted = False


class SessionManager:
    """Registry of live sessions with eviction and capacity limits."""

    def __init__(
        self,
        factory: Optional[Callable[[str], ProxSession]] = None,
        max_sessions: int = 16,
        snapshot_dir: Optional[str] = None,
        evict_idle_seconds: float = DEFAULT_EVICT_IDLE_SECONDS,
        eviction_interval: float = DEFAULT_EVICTION_INTERVAL,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self._factory = factory or (
            lambda session_id: ProxSession(session_id=session_id)
        )
        self.max_sessions = max_sessions
        self._snapshot_dir = snapshot_dir
        self._owns_snapshot_dir = snapshot_dir is None
        self.evict_idle_seconds = evict_idle_seconds
        self.eviction_interval = eviction_interval
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._evictor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Lifetime totals (mirrors the metric counters, always on).
        self.evicted_total = 0
        self.restored_total = 0
        self.rejected_total = 0

    # -- lifecycle ---------------------------------------------------------

    def create(self, session_id: Optional[str] = None) -> ProxSession:
        """Create and register a session; :class:`CapacityError` if full."""
        return self.create_with(session_id, self._factory)

    def create_with(
        self,
        session_id: Optional[str],
        factory: Callable[[str], ProxSession],
    ) -> ProxSession:
        """:meth:`create` with a one-off factory (e.g. a custom seed)."""
        with self._lock:
            if session_id is None:
                while True:
                    self._next_id += 1
                    session_id = f"m{self._next_id}"
                    if session_id not in self._entries:
                        break
            elif not _SESSION_ID_RE.match(session_id):
                raise ValueError(f"invalid session id {session_id!r}")
            if session_id in self._entries:
                raise ValueError(f"session {session_id!r} already exists")
            if len(self._entries) >= self.max_sessions:
                self.rejected_total += 1
                if _metrics.ENABLED:
                    _REJECTED.inc()
                raise CapacityError(
                    f"at capacity ({self.max_sessions} sessions)",
                    retry_after=max(1.0, self.eviction_interval),
                )
            entry = _Entry(None)
            self._entries[session_id] = entry
        # Build outside the manager lock (dataset generation can be
        # slow); the entry lock keeps other callers off the slot.
        with entry.lock:
            try:
                entry.session = factory(session_id)
            except BaseException:
                with self._lock:
                    self._entries.pop(session_id, None)
                raise
        return entry.session

    def peek(self, session_id: str) -> Optional[ProxSession]:
        """The live session object, or ``None`` (unknown or evicted).

        Lock-free by design -- for health probes that must answer even
        while a long summarization holds the session lock.
        """
        with self._lock:
            entry = self._entries.get(session_id)
        return entry.session if entry is not None else None

    def adopt(self, session: ProxSession) -> str:
        """Register an externally built session (single-session mode)."""
        with self._lock:
            session_id = session.session_id
            if session_id in self._entries:
                raise ValueError(f"session {session_id!r} already managed")
            if len(self._entries) >= self.max_sessions:
                raise CapacityError(
                    f"at capacity ({self.max_sessions} sessions)"
                )
            self._entries[session_id] = _Entry(session)
        return session_id

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._entries

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def count(self) -> int:
        with self._lock:
            return len(self._entries)

    @contextlib.contextmanager
    def acquire(self, session_id: str) -> Iterator[ProxSession]:
        """Lock one session for a request, rehydrating if evicted.

        Raises :class:`KeyError` for unknown ids.  The per-session lock
        is held for the duration of the ``with`` body; requests on
        other sessions proceed concurrently.
        """
        with self._lock:
            entry = self._entries.get(session_id)
        if entry is None:
            raise UnknownSessionError(f"no such session {session_id!r}")
        with entry.lock:
            with self._lock:
                if self._entries.get(session_id) is not entry:
                    raise UnknownSessionError(f"no such session {session_id!r}")
            if entry.evicted:
                entry.session = ProxSession.restore(
                    entry.snapshot_path, session_id=session_id
                )
                entry.evicted = False
                self.restored_total += 1
                if _metrics.ENABLED:
                    _RESTORED.inc()
            yield entry.session

    def evict(self, session_id: str) -> bool:
        """Snapshot ``session_id`` to disk and release its memory.

        Returns ``False`` when the session is unknown, already evicted,
        or cannot be snapshot (no regeneration recipe).  Summarization
        results and repair state are dropped with the process objects --
        both provably recomputable bit-identically (PR 6).
        """
        with self._lock:
            entry = self._entries.get(session_id)
        if entry is None:
            return False
        with entry.lock:
            if entry.evicted or entry.session is None:
                return False
            if not entry.session.can_snapshot():
                return False
            path = os.path.join(self.snapshot_dir(), f"{session_id}.snap")
            entry.session.snapshot(path)
            entry.session.close()
            entry.session = None
            entry.snapshot_path = path
            entry.evicted = True
            self.evicted_total += 1
            if _metrics.ENABLED:
                _EVICTED.inc()
        return True

    def close(self, session_id: str) -> bool:
        """Remove a session entirely (idempotent); deletes its snapshot."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
        if entry is None:
            return False
        with entry.lock:
            if entry.session is not None:
                entry.session.close()
                entry.session = None
            if entry.snapshot_path is not None:
                try:
                    os.unlink(entry.snapshot_path)
                except OSError:
                    pass
                entry.snapshot_path = None
        return True

    def close_all(self) -> None:
        for session_id in self.session_ids():
            self.close(session_id)
        if self._owns_snapshot_dir and self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None

    # -- introspection ------------------------------------------------------

    def snapshot_dir(self) -> str:
        with self._lock:
            if self._snapshot_dir is None:
                self._snapshot_dir = tempfile.mkdtemp(prefix="prox-snapshots-")
            else:
                os.makedirs(self._snapshot_dir, exist_ok=True)
            return self._snapshot_dir

    def describe(self) -> List[Dict[str, object]]:
        """One row per managed session: live accounts or evicted stubs."""
        rows: List[Dict[str, object]] = []
        for session_id in self.session_ids():
            with self._lock:
                entry = self._entries.get(session_id)
            if entry is None:
                continue
            if entry.evicted:
                rows.append(
                    {
                        "session_id": session_id,
                        "state": "evicted",
                        "snapshot_path": entry.snapshot_path,
                        "snapshot_bytes": (
                            os.path.getsize(entry.snapshot_path)
                            if entry.snapshot_path
                            and os.path.exists(entry.snapshot_path)
                            else 0
                        ),
                    }
                )
            else:
                account = _resources.REGISTRY.get(session_id)
                row = account.to_dict() if account else {"session_id": session_id}
                row["state"] = "live"
                rows.append(row)
        return rows

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = len(self._entries)
            evicted = sum(1 for e in self._entries.values() if e.evicted)
        return {
            "sessions": total,
            "live": total - evicted,
            "evicted": evicted,
            "max_sessions": self.max_sessions,
            "evicted_total": self.evicted_total,
            "restored_total": self.restored_total,
            "rejected_total": self.rejected_total,
        }

    # -- drain / eviction loop ---------------------------------------------

    def drain(self) -> Dict[str, object]:
        """Snapshot every live snapshotable session (graceful shutdown)."""
        snapshotted: List[str] = []
        skipped: List[str] = []
        for session_id in self.session_ids():
            if self.evict(session_id):
                snapshotted.append(session_id)
            else:
                with self._lock:
                    entry = self._entries.get(session_id)
                if entry is not None and not entry.evicted:
                    skipped.append(session_id)
        return {"snapshotted": snapshotted, "skipped": skipped}

    def evict_idle(self) -> List[str]:
        """One pass of the eviction policy: most-evictable first."""
        evicted: List[str] = []
        for row in _resources.REGISTRY.eviction_ranking():
            session_id = row["session_id"]
            if session_id not in self:
                continue
            if float(row["idle_seconds"]) < self.evict_idle_seconds:
                continue
            if self.evict(session_id):
                evicted.append(session_id)
        return evicted

    def start_eviction_loop(self) -> None:
        if self._evictor is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.eviction_interval):
                try:
                    self.evict_idle()
                except Exception:  # pragma: no cover - keep the loop alive
                    pass

        self._evictor = threading.Thread(
            target=_loop, name="prox-evictor", daemon=True
        )
        self._evictor.start()

    def stop_eviction_loop(self) -> None:
        if self._evictor is None:
            return
        self._stop.set()
        self._evictor.join(timeout=5.0)
        alive = self._evictor.is_alive()
        self._evictor = None
        if alive:  # pragma: no cover - would indicate a wedged pass
            raise RuntimeError("eviction loop failed to stop within 5s")
