"""Command-line interface: ``repro <command>``.

Commands
--------
``table51``
    Print Table 5.1 (dataset / summarization parameters).
``generate``
    Generate a dataset's provenance expression; optionally save JSON.
``summarize``
    Run Prov-Approx / Clustering / Random on a generated instance and
    report size, distance and the merge log.
``experiment``
    Run one of the Chapter 6 experiments and print its rows.
``prox``
    A scripted tour of the PROX system session.
``ingest``
    Stream provenance deltas into a PROX session: summarize, ingest,
    then *repair* the summary and compare against recomputing it.

All commands are deterministic given ``--seed``.

Observability: ``summarize --trace FILE`` records the hierarchical
span tree (``summarize > step[k] > score_candidates``) and writes it
as JSON; ``summarize --profile FILE`` runs the stdlib sampling
profiler over the run and writes collapsed stacks + flamegraph JSON
(``REPRO_PROFILE=<hz>`` overrides the sampling rate);
``REPRO_LOG_LEVEL`` / ``REPRO_TRACE`` / ``REPRO_METRICS`` control the
structured-logging/tracing/metrics knobs everywhere, and
``REPRO_KERNEL=python|numpy|native`` (or ``summarize --kernel``)
selects the scoring kernel backend.  See docs/OPERATIONS.md for the
full runbook.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .observability import profiling
from .observability import tracing
from .core import kernels as _kernels
from .provenance import ir as _ir

from . import serialization
from .core import (
    ClusteringSummarizer,
    RandomSummarizer,
    SummarizationConfig,
    Summarizer,
)
from .datasets import (
    DDPConfig,
    MovieLensConfig,
    WikipediaConfig,
    format_table_5_1,
    generate_ddp,
    generate_movielens,
    generate_wikipedia,
)
from .experiments import (
    DatasetSpec,
    ddp_spec,
    format_rows,
    movielens_spec,
    steps_experiment,
    target_dist_experiment,
    target_size_experiment,
    timing_experiment,
    usage_time_experiment,
    wdist_experiment,
    wikipedia_spec,
)
from .prox import ProxSession, SummarizationRequest

_GENERATORS = {
    "movielens": lambda seed: generate_movielens(MovieLensConfig(seed=seed)),
    "wikipedia": lambda seed: generate_wikipedia(WikipediaConfig(seed=seed)),
    "ddp": lambda seed: generate_ddp(DDPConfig(seed=seed)),
}

_SPECS = {
    "movielens": movielens_spec,
    "wikipedia": wikipedia_spec,
    "ddp": ddp_spec,
}

_EXPERIMENTS = {
    "wdist": wdist_experiment,
    "target-size": target_size_experiment,
    "target-dist": target_dist_experiment,
    "steps": steps_experiment,
    "usage": usage_time_experiment,
    "timing": timing_experiment,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PROX: approximated summarization of data provenance",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table51", help="print Table 5.1")

    generate = commands.add_parser("generate", help="generate a provenance instance")
    generate.add_argument("dataset", choices=sorted(_GENERATORS))
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", help="write the expression as JSON to this file")
    generate.add_argument(
        "--show", action="store_true", help="print the full expression"
    )

    summarize = commands.add_parser("summarize", help="summarize an instance")
    summarize.add_argument("dataset", choices=sorted(_GENERATORS))
    summarize.add_argument("--seed", type=int, default=0)
    summarize.add_argument(
        "--algorithm",
        choices=("prov-approx", "clustering", "random"),
        default="prov-approx",
    )
    summarize.add_argument("--wdist", type=float, default=0.5)
    summarize.add_argument("--steps", type=int, default=20)
    summarize.add_argument("--target-size", type=int, default=1)
    summarize.add_argument("--target-dist", type=float, default=1.0)
    summarize.add_argument("--arity", type=int, default=2, help="merge arity (k-way)")
    summarize.add_argument(
        "--carry",
        choices=("auto", "on", "off"),
        default="auto",
        help="cross-step candidate carry: maintain the candidate pool "
        "and delta-rescore across greedy steps (default: auto)",
    )
    summarize.add_argument(
        "--lazy",
        action="store_true",
        help="lazy-greedy selection: re-score only queue heads "
        "(requires carry; sound by Prop 4.2.2 monotonicity)",
    )
    summarize.add_argument(
        "--sample-sharing",
        choices=("auto", "on", "off"),
        default="auto",
        help="bit-packed sampled scoring for classes too large to "
        "enumerate: one shared Monte-Carlo batch per step instead of "
        "per-candidate redraws (default: auto)",
    )
    summarize.add_argument(
        "--sample-block",
        type=int,
        default=64,
        help="round Chebyshev sampling budgets up to a multiple of "
        "this so 64-bit mask words pack fully (default: 64)",
    )
    summarize.add_argument("--save", help="write the summary as JSON to this file")
    summarize.add_argument(
        "--log", action="store_true", help="print the per-step merge log"
    )
    summarize.add_argument(
        "--trace",
        metavar="FILE",
        help="record hierarchical tracing spans and write them as JSON",
    )
    summarize.add_argument(
        "--profile",
        metavar="FILE",
        help="sample-profile the run (collapsed stacks + flamegraph "
        "JSON; REPRO_PROFILE=<hz> overrides the sampling rate)",
    )
    summarize.add_argument(
        "--ir-stats",
        action="store_true",
        help="print interner cardinality and term-arena storage after the run",
    )
    summarize.add_argument(
        "--kernel",
        choices=("auto", "python", "numpy", "native"),
        default="",
        help="scoring kernel backend (default: REPRO_KERNEL, else auto-"
        "detect; native degrades to numpy, numpy to python, each with a "
        "warning if unavailable)",
    )

    experiment = commands.add_parser("experiment", help="run a Chapter 6 experiment")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--dataset", choices=sorted(_SPECS), default="movielens")
    experiment.add_argument(
        "--seeds", type=int, nargs="+", default=[11, 23], metavar="SEED"
    )
    experiment.add_argument("--csv", help="also write the rows to this CSV file")

    prox = commands.add_parser("prox", help="scripted PROX session tour")
    prox.add_argument("--seed", type=int, default=7)

    ingest = commands.add_parser(
        "ingest", help="stream provenance deltas and repair the summary"
    )
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument("--users", type=int, default=40)
    ingest.add_argument("--movies", type=int, default=60)
    ingest.add_argument("--deltas", type=int, default=5,
                        help="number of streamed deltas (default: 5)")
    ingest.add_argument("--delta-seed", type=int, default=1)
    ingest.add_argument("--spam-every", type=int, default=0,
                        help="every k-th delta spam-flags a user pair "
                        "(extends cancel-valuations; default: never)")
    ingest.add_argument("--steps", type=int, default=8)
    ingest.add_argument("--repair", choices=("auto", "on", "off"),
                        default="auto")
    ingest.add_argument("--from", dest="from_file", metavar="FILE",
                        help="read deltas from a JSON list of delta "
                        "payloads instead of generating them")

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the Chapter 6 evaluation"
    )
    reproduce.add_argument("--out", default="results", help="output directory")
    reproduce.add_argument(
        "--profile", choices=("quick", "full"), default="quick",
        help="quick: bench grids (~3 min); full: thesis grids (much longer)",
    )
    reproduce.add_argument(
        "--figures", nargs="+", metavar="FIG",
        help="restrict to specific figure ids (e.g. fig_6_1a)",
    )

    serve = commands.add_parser("serve", help="run the PROX HTTP server")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard sessions across N worker processes (0 = in-process)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=16, metavar="M",
        help="capacity limit; POST /sessions past it returns 429",
    )
    serve.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="where evicted-session snapshots live (default: a tempdir)",
    )
    serve.add_argument(
        "--evict-idle", type=float, default=300.0, metavar="SECONDS",
        help="idle threshold before a session is snapshot-evicted",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "table51": _cmd_table51,
        "generate": _cmd_generate,
        "summarize": _cmd_summarize,
        "experiment": _cmd_experiment,
        "prox": _cmd_prox,
        "ingest": _cmd_ingest,
        "reproduce": _cmd_reproduce,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args)


def _cmd_table51(args: argparse.Namespace) -> int:
    rows = [factory(0).describe_row() for factory in _GENERATORS.values()]
    print(format_table_5_1(rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    instance = _GENERATORS[args.dataset](args.seed)
    expression = instance.expression
    print(f"{instance.name} provenance (seed {args.seed}):")
    print(f"  size {expression.size()}, "
          f"{len(expression.annotation_names())} annotations, "
          f"valuation class {instance.valuations.name} ({len(instance.valuations)})")
    if args.show:
        print(expression)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            serialization.dump(serialization.expression_to_dict(expression), handle)
        print(f"  expression written to {args.out}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    if args.kernel:
        _kernels.set_backend(args.kernel)
    if args.trace:
        tracing.set_enabled(True)
        tracing.take_trace()  # drop any stale tree from this thread
    profiler: Optional[profiling.Profiler] = None
    if args.profile:
        profiler = profiling.Profiler(
            hz=profiling.configured_hz() or profiling.DEFAULT_HZ
        )
        profiler.start()
    instance = _GENERATORS[args.dataset](args.seed)
    config = SummarizationConfig(
        w_dist=args.wdist,
        target_size=args.target_size,
        target_dist=args.target_dist,
        max_steps=args.steps,
        merge_arity=args.arity,
        seed=args.seed,
        carry=args.carry,
        lazy=args.lazy,
        sample_sharing=args.sample_sharing,
        sample_block=args.sample_block,
    )
    problem = instance.problem()
    if args.algorithm == "prov-approx":
        result = Summarizer(problem, config).run()
    elif args.algorithm == "random":
        result = RandomSummarizer(problem, config).run()
    else:
        if not instance.cluster_specs:
            if profiler is not None:
                profiler.stop()
            print(
                f"error: the clustering baseline is undefined for "
                f"{args.dataset} (no feature vectors, §6.1)",
                file=sys.stderr,
            )
            return 2
        result = ClusteringSummarizer(problem, config, instance.cluster_specs).run()
    if profiler is not None:
        profiler.stop()

    print(f"{args.algorithm} on {instance.name} (seed {args.seed}):")
    print(f"  size {result.original_size} -> {result.final_size}")
    print(f"  distance {result.final_distance.normalized:.4f} "
          f"({'exact' if result.final_distance.exact else 'sampled'})")
    print(f"  {result.n_steps} steps"
          f" (+{result.equivalence_merges} equivalence merges),"
          f" stop: {result.stop_reason},"
          f" {result.total_seconds:.2f}s")
    paths: dict = {}
    for record in result.steps:
        if record.scoring_path:
            paths[record.scoring_path] = paths.get(record.scoring_path, 0) + 1
    if paths:
        rendered = ", ".join(
            f"{path}×{count}" for path, count in sorted(paths.items())
        )
        print(f"  scoring paths: {rendered}")
    rescored = sum(r.n_rescored for r in result.steps if r.n_rescored >= 0)
    measured = sum(
        r.n_candidates for r in result.steps if r.n_rescored >= 0
    )
    if measured:
        print(
            f"  candidate carry: {measured - rescored}/{measured} "
            f"measurements carried across steps"
        )
    if args.log:
        for record in result.steps:
            distance = (
                f"{record.distance_after.normalized:.4f}"
                if record.distance_after is not None
                else "-"
            )
            timing = (
                f", {record.step_seconds * 1e3:.1f}ms"
                f" [{record.scoring_path}]" if record.scoring_path else ""
            )
            print(f"    step {record.step}: {{{', '.join(record.merged)}}} -> "
                  f"{record.label} (size {record.size_after}, "
                  f"distance {distance}{timing})")
    if args.ir_stats:
        interned = len(problem.interner) if problem.interner is not None else 0
        arena = _ir.GLOBAL_STORE.stats()
        print(f"  ir mode {_ir.active_mode()}: "
              f"{interned} interned annotations, "
              f"{arena['monomials']} arena monomials, "
              f"{arena['arena_bytes']} arena bytes")
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            serialization.dump(serialization.summary_to_dict(result), handle)
        print(f"  summary written to {args.save}")
    if args.trace:
        trace = tracing.take_trace()
        payload = trace.to_dict() if trace is not None else {}
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        print(f"  trace written to {args.trace}")
    if profiler is not None:
        snapshot = profiler.snapshot()
        with open(args.profile, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, default=str)
            handle.write("\n")
        print(
            f"  profile written to {args.profile} "
            f"({snapshot['samples']} samples at {snapshot['hz']:g} Hz)"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec: DatasetSpec = _SPECS[args.dataset]()
    runner = _EXPERIMENTS[args.name]
    rows = runner(spec, seeds=tuple(args.seeds))
    print(format_rows(rows))
    if args.csv:
        from .experiments import write_csv

        write_csv(rows, args.csv)
        print(f"rows written to {args.csv}")
    return 0


def _cmd_prox(args: argparse.Namespace) -> int:
    session = ProxSession(seed=args.seed)
    titles = session.titles()
    print(f"PROX session over {len(titles)} movies; selecting the first 4.")
    size = session.select_titles(titles[:4])
    print(f"selected provenance size: {size}")
    result = session.summarize(
        SummarizationRequest(distance_weight=0.7, number_of_steps=6)
    )
    print(f"summary: size {result.final_size}, "
          f"distance {result.final_distance.normalized:.4f}")
    print(session.expression_view())
    original, summary = session.evaluate(false_attributes={"gender": "M"})
    print(f"provisioning 'cancel all Male users':")
    print(f"  original: {dict(original.rows())} ({original.evaluation_time_ns} ns)")
    print(f"  summary : {dict(summary.rows())} ({summary.evaluation_time_ns} ns)")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from .datasets.movielens import (
        MovieLensDeltaConfig,
        generate_movielens_deltas,
    )

    instance = generate_movielens(
        MovieLensConfig(n_users=args.users, n_movies=args.movies, seed=args.seed)
    )
    session = ProxSession(instance)
    session.select_titles(session.titles())
    request = SummarizationRequest(
        number_of_steps=args.steps, repair=args.repair
    )
    if args.from_file:
        with open(args.from_file, "r", encoding="utf-8") as handle:
            payloads = json.load(handle)
        deltas = [
            serialization.delta_from_dict({"kind": "delta", **payload})
            for payload in payloads
        ]
    else:
        deltas = generate_movielens_deltas(
            instance,
            MovieLensDeltaConfig(
                n_deltas=args.deltas,
                seed=args.delta_seed,
                spam_flag_every=args.spam_every,
            ),
        )

    result = session.summarize(request)
    print(f"initial summary: size {result.original_size} -> {result.final_size}, "
          f"{result.n_steps} steps")
    repair_seconds = 0.0
    for index, delta in enumerate(deltas, start=1):
        stats = session.ingest(delta)
        started = time.perf_counter()
        result = session.summarize(request)
        elapsed = time.perf_counter() - started
        repair_seconds += elapsed
        print(f"delta {index}: {delta.describe()} -> "
              f"selected size {stats['selected_size']}; "
              f"{'repaired' if result.repaired else 'recomputed'} summary "
              f"size {result.final_size} "
              f"(seeded {result.repair_seeded}, "
              f"invalidated {result.repair_invalidated}, "
              f"{elapsed * 1e3:.1f}ms)")
    print(f"ingested {session.ingested_deltas} deltas; "
          f"final summary size {result.final_size}, "
          f"distance {result.final_distance.normalized:.4f}; "
          f"re-summarization total {repair_seconds * 1e3:.1f}ms")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments import reproduce_all

    reproduce_all(args.out, profile=args.profile, figures=args.figures)
    print(f"results written to {args.out}/")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - interactive
    import signal
    import threading

    from .prox.manager import SessionManager
    from .prox.server import ProxServer

    if args.workers > 0:
        # Sharded: fork the workers before building any session so each
        # worker's arena is pristine and snapshot restores are zero-copy.
        from .prox.workers import WorkerFront

        front = WorkerFront(
            n_workers=args.workers,
            max_sessions=args.max_sessions,
            snapshot_dir=args.snapshot_dir,
            evict_idle_seconds=args.evict_idle,
        )
        front.start()
        server = ProxServer(backend=front, host=args.host, port=args.port)
    else:
        manager = SessionManager(
            factory=lambda sid: ProxSession(seed=args.seed, session_id=sid),
            max_sessions=args.max_sessions,
            snapshot_dir=args.snapshot_dir,
            evict_idle_seconds=args.evict_idle,
        )
        manager.adopt(ProxSession(seed=args.seed))
        manager.start_eviction_loop()
        server = ProxServer(
            session=None, host=args.host, port=args.port, manager=manager
        )
        # Single-session back-compat: unscoped routes hit the default.
        server.app.default_session_id = manager.session_ids()[0]
    host, port = server.address
    mode = f"{args.workers} workers" if args.workers > 0 else "in-process"
    print(f"PROX HTTP API on http://{host}:{port} ({mode}; "
          f"max {args.max_sessions} sessions; Ctrl-C or SIGTERM to drain)")
    print(f"  liveness: http://{host}:{port}/healthz")
    print(f"  metrics:  http://{host}:{port}/metrics (Prometheus text format)")
    server.start()

    # Graceful shutdown: first SIGTERM/SIGINT drains in-flight requests
    # and snapshots live sessions, then the process exits 0.
    shutdown = threading.Event()

    def _on_signal(signum, frame):
        shutdown.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    shutdown.wait()
    print("draining: waiting for in-flight requests, snapshotting sessions")
    try:
        drained = server.drain()
        snapshotted = drained.get("sessions")
        if snapshotted:
            print(f"drained: {snapshotted}")
    finally:
        if args.workers == 0:
            manager.stop_eviction_loop()
        server.stop()
    print("shutdown complete")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
