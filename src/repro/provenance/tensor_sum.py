"""Grouped tensor-sum normal form -- the summarizer's representation.

Every provenance expression in the thesis's three datasets is a formal
aggregation sum of tensors whose provenance part is a *monomial* (a
product of annotations, possibly guarded by comparison tokens), e.g.

    MovieLens:  (UID1 · Title1 · Year1) ⊗ (Rating, 1) ⊕ ...
    Wikipedia:  (User1 · Page1) ⊗ (EditType, 1) ⊕ ...

:class:`TensorSum` stores exactly that: a sequence of :class:`Term`
entries, each carrying its monomial, guards, ``(value, count)`` pair
and the *group* it aggregates into (the movie / page / concept whose
score it contributes to).  Evaluating a tensor sum under a truth
valuation yields one :class:`~repro.provenance.monoids.CountedAggregate`
per group -- the "vector of aggregated ratings" the thesis's Euclidean
VAL-FUNC compares.

Two evaluation paths exist:

* :meth:`TensorSum.evaluate` -- takes the set of *false* annotations
  and uses per-group caches so that a valuation cancelling few
  annotations only re-folds the affected groups.  The summarization
  algorithm calls this thousands of times per step.
* :meth:`TensorSum.evaluate_scan` -- a cache-free linear scan used by
  the usage-time experiment (Fig. 6.4), where wall-clock cost must be
  proportional to expression size.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..observability import tracing as _tracing
from .monoids import AggregationMonoid, CountedAggregate, fold_counted

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Evaluation result: aggregate per group.
GroupVector = Dict[Optional[str], CountedAggregate]


@dataclass(frozen=True)
class Guard:
    """A comparison token ``[a1 · ... · ak ⊗ value op threshold]``.

    When every annotation of the guard is true the left operand is
    ``value`` (congruence ``1 ⊗ m ≡ m``), otherwise 0 (``0 ⊗ m ≡ 0``);
    the token holds iff ``left op threshold``.
    """

    annotations: Tuple[str, ...]
    value: float
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(
                f"unsupported guard operator {self.op!r}; expected one of "
                f"{sorted(_COMPARATORS)}"
            )

    def satisfied(self, false_annotations: AbstractSet[str]) -> bool:
        alive = all(name not in false_annotations for name in self.annotations)
        left = self.value if alive else 0.0
        return _COMPARATORS[self.op](left, self.threshold)

    def satisfied_by_truth(self, truth: Mapping[str, bool]) -> bool:
        alive = all(truth.get(name, True) for name in self.annotations)
        left = self.value if alive else 0.0
        return _COMPARATORS[self.op](left, self.threshold)

    def rename(self, mapping: Mapping[str, str]) -> "Guard":
        return Guard(
            tuple(sorted(mapping.get(name, name) for name in self.annotations)),
            self.value,
            self.op,
            self.threshold,
        )

    def size(self) -> int:
        return len(self.annotations)

    def __str__(self) -> str:
        inner = " · ".join(self.annotations) if self.annotations else "1"
        return f"[{inner} ⊗ {self.value:g} {self.op} {self.threshold:g}]"


@dataclass(frozen=True)
class Term:
    """One tensor ``(a1 · ... · ak · guards) ⊗ (value, count)``."""

    annotations: Tuple[str, ...]
    value: float
    count: int = 1
    group: Optional[str] = None
    guards: Tuple[Guard, ...] = ()

    def all_annotation_names(self) -> Tuple[str, ...]:
        names = list(self.annotations)
        for guard in self.guards:
            names.extend(guard.annotations)
        return tuple(names)

    def size(self) -> int:
        return len(self.annotations) + sum(guard.size() for guard in self.guards)

    def alive(self, false_annotations: AbstractSet[str]) -> bool:
        """Whether the term contributes under the given cancellations."""
        if any(name in false_annotations for name in self.annotations):
            return False
        return all(guard.satisfied(false_annotations) for guard in self.guards)

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        return Term(
            annotations=tuple(
                sorted(mapping.get(name, name) for name in self.annotations)
            ),
            value=self.value,
            count=self.count,
            group=mapping.get(self.group, self.group) if self.group else None,
            guards=tuple(guard.rename(mapping) for guard in self.guards),
        )

    def __str__(self) -> str:
        parts = list(self.annotations) + [str(guard) for guard in self.guards]
        monomial = " · ".join(parts) if parts else "1"
        value = int(self.value) if float(self.value).is_integer() else self.value
        return f"({monomial}) ⊗ ({value}, {self.count})"


class TensorSum:
    """A grouped formal sum of tensors (immutable).

    Parameters
    ----------
    terms:
        The tensor contributions.  Terms with identical
        ``(annotations, guards, group)`` are merged on construction via
        the congruence ``k ⊗ m1 ⊕ k ⊗ m2 ≡ k ⊗ (m1 ⊕ m2)`` -- this is
        what makes summaries *smaller* after a merge.
    monoid:
        Aggregation monoid combining values (MAX / SUM / MIN).
    """

    __slots__ = (
        "terms",
        "monoid",
        "_annotation_names",
        "_size",
        "_ann_to_groups",
        "_group_terms",
        "_full_vector",
    )

    def __init__(self, terms: Iterable[Term], monoid: AggregationMonoid):
        self.terms: Tuple[Term, ...] = self._merge_congruent(terms, monoid)
        self.monoid = monoid
        self._annotation_names: Optional[FrozenSet[str]] = None
        self._size: Optional[int] = None
        self._ann_to_groups: Optional[Dict[str, FrozenSet[Optional[str]]]] = None
        self._group_terms: Optional[Dict[Optional[str], Tuple[Term, ...]]] = None
        self._full_vector: Optional[GroupVector] = None

    @staticmethod
    def _merge_congruent(
        terms: Iterable[Term], monoid: AggregationMonoid
    ) -> Tuple[Term, ...]:
        merged: Dict[Tuple, Term] = {}
        order: List[Tuple] = []
        for term in terms:
            key = (term.annotations, term.guards, term.group)
            existing = merged.get(key)
            if existing is None:
                merged[key] = term
                order.append(key)
            else:
                merged[key] = Term(
                    annotations=term.annotations,
                    value=monoid.combine(existing.value, term.value),
                    count=existing.count + term.count,
                    group=term.group,
                    guards=term.guards,
                )
        return tuple(merged[key] for key in order)

    # -- structural queries -------------------------------------------------

    def annotation_names(self) -> FrozenSet[str]:
        """All annotation names occurring in monomials and guards."""
        if self._annotation_names is None:
            names: set = set()
            for term in self.terms:
                names.update(term.all_annotation_names())
            self._annotation_names = frozenset(names)
        return self._annotation_names

    def size(self) -> int:
        """Number of annotation occurrences, with repetition (§3.2)."""
        if self._size is None:
            self._size = sum(term.size() for term in self.terms)
        return self._size

    def groups(self) -> Tuple[Optional[str], ...]:
        """Distinct group keys, in first-appearance order."""
        seen: List[Optional[str]] = []
        for term in self.terms:
            if term.group not in seen:
                seen.append(term.group)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.terms)

    # -- homomorphism application --------------------------------------------

    def apply_mapping(self, mapping: Mapping[str, str]) -> "TensorSum":
        """Apply a homomorphism ``h`` (annotation renaming) and simplify."""
        with _tracing.span("rename") as opened:
            renamed = TensorSum(
                (term.rename(mapping) for term in self.terms), self.monoid
            )
            opened.set("n_terms", len(self.terms))
            opened.set("n_renamed", len(mapping))
            return renamed

    # -- evaluation -----------------------------------------------------------

    def _indexes(self) -> None:
        ann_to_groups: Dict[str, set] = {}
        group_terms: Dict[Optional[str], List[Term]] = {}
        for term in self.terms:
            group_terms.setdefault(term.group, []).append(term)
            for name in term.all_annotation_names():
                ann_to_groups.setdefault(name, set()).add(term.group)
        self._ann_to_groups = {
            name: frozenset(groups) for name, groups in ann_to_groups.items()
        }
        self._group_terms = {
            group: tuple(terms) for group, terms in group_terms.items()
        }
        empty: FrozenSet[str] = frozenset()
        self._full_vector = {
            group: fold_counted(
                (
                    CountedAggregate(term.value, term.count)
                    for term in terms
                    if term.alive(empty)
                ),
                self.monoid,
            )
            for group, terms in self._group_terms.items()
        }

    def evaluate(self, false_annotations: AbstractSet[str]) -> GroupVector:
        """Aggregate per group with the given annotations cancelled.

        Annotations not mentioned are true.  Uses per-group caches:
        only groups touched by a cancelled annotation are re-folded.
        """
        if self._full_vector is None:
            self._indexes()
        assert self._full_vector is not None
        assert self._ann_to_groups is not None
        assert self._group_terms is not None
        affected: set = set()
        relevant = False
        for name in false_annotations:
            groups = self._ann_to_groups.get(name)
            if groups:
                affected.update(groups)
                relevant = True
        if not relevant:
            return dict(self._full_vector)
        result = dict(self._full_vector)
        for group in affected:
            result[group] = fold_counted(
                (
                    CountedAggregate(term.value, term.count)
                    for term in self._group_terms[group]
                    if term.alive(false_annotations)
                ),
                self.monoid,
            )
        return result

    def evaluate_scan(self, truth: Mapping[str, bool]) -> GroupVector:
        """Cache-free evaluation scanning every term.

        Used to time provenance *usage* honestly (Fig. 6.4): the cost is
        linear in the number of terms, so summaries evaluate faster.
        """
        buckets: Dict[Optional[str], List[CountedAggregate]] = {}
        for term in self.terms:
            if not all(truth.get(name, True) for name in term.annotations):
                continue
            if not all(guard.satisfied_by_truth(truth) for guard in term.guards):
                continue
            buckets.setdefault(term.group, []).append(
                CountedAggregate(term.value, term.count)
            )
        result: GroupVector = {}
        for group in self.groups():
            result[group] = fold_counted(buckets.get(group, ()), self.monoid)
        return result

    def full_vector(self) -> GroupVector:
        """The aggregate per group with nothing cancelled."""
        if self._full_vector is None:
            self._indexes()
        assert self._full_vector is not None
        return dict(self._full_vector)

    def __str__(self) -> str:
        return " ⊕ ".join(str(term) for term in self.terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TensorSum of {len(self.terms)} terms, size {self.size()}, "
            f"{self.monoid.name} aggregation>"
        )
