"""Witness extraction and textual explanations.

Provenance "can be used to explain results by correlating input with
output data" (Ch. 1).  For an aggregate, the natural explanation is
its *witnesses*: the contributions that actually determine the
reported value -- for MAX, the argmax terms; for MIN, the argmin
terms; for SUM/COUNT, every surviving contribution.

:func:`witnesses` returns those terms (under an optional what-if
cancellation set) and :func:`explain` renders the answer the way the
PROX group views do: the value, who contributed it, and the attributes
of the contributors.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, List, Optional

from .annotations import AnnotationUniverse
from .monoids import MaxMonoid, MinMonoid
from .tensor_sum import TensorSum, Term


def witnesses(
    expression: TensorSum,
    group: Optional[str],
    false_annotations: AbstractSet[str] = frozenset(),
) -> List[Term]:
    """The terms that determine ``group``'s aggregate value.

    For MAX (MIN) aggregation only the terms attaining the maximum
    (minimum) are witnesses -- cancelling any other contribution cannot
    change the answer.  For additive monoids every alive term is a
    witness.  Returns an empty list when the group has no surviving
    contributions.
    """
    alive = [
        term
        for term in expression.terms
        if term.group == group and term.alive(false_annotations)
    ]
    if not alive:
        return []
    monoid = expression.monoid
    if isinstance(monoid, MaxMonoid):
        best = max(term.value for term in alive)
        return [term for term in alive if term.value == best]
    if isinstance(monoid, MinMonoid):
        best = min(term.value for term in alive)
        return [term for term in alive if term.value == best]
    return alive


def counterfactual_annotations(
    expression: TensorSum,
    group: Optional[str],
    false_annotations: AbstractSet[str] = frozenset(),
) -> FrozenSet[str]:
    """Annotations whose individual cancellation changes the answer.

    The actionable core of "how does the information change if we
    discard this contribution?": an annotation is counterfactual for
    the group iff it appears in *every* witness.
    """
    witness_terms = witnesses(expression, group, false_annotations)
    if not witness_terms:
        return frozenset()
    common: FrozenSet[str] = frozenset(witness_terms[0].all_annotation_names())
    for term in witness_terms[1:]:
        common &= frozenset(term.all_annotation_names())
    return common - frozenset(false_annotations)


def explain(
    expression: TensorSum,
    group: Optional[str],
    universe: Optional[AnnotationUniverse] = None,
    false_annotations: AbstractSet[str] = frozenset(),
) -> str:
    """A textual explanation of one group's aggregate value."""
    vector = expression.evaluate(false_annotations)
    aggregate = vector.get(group)
    label = str(group) if group is not None else "(result)"
    if aggregate is None or aggregate.count == 0:
        return f"{label}: no surviving contributions"
    witness_terms = witnesses(expression, group, false_annotations)
    lines = [
        f"{label}: {expression.monoid.name} = "
        f"{aggregate.finalized_value():g} from {aggregate.count} contribution(s)"
    ]
    for term in witness_terms:
        contributors = []
        for name in term.annotations:
            if universe is not None and name in universe:
                attributes = dict(universe[name].attributes)
                described = ", ".join(
                    f"{key}={value}"
                    for key, value in attributes.items()
                    if not str(key).startswith("_")
                )
                contributors.append(f"{name} ({described})" if described else name)
            else:
                contributors.append(name)
        lines.append(
            f"  witness: {' · '.join(contributors)} ⊗ ({term.value:g}, {term.count})"
        )
    pivotal = counterfactual_annotations(expression, group, false_annotations)
    if pivotal:
        lines.append(
            "  discarding any of "
            f"{{{', '.join(sorted(pivotal))}}} would change this answer"
        )
    return "\n".join(lines)
