"""Canonical ``N[Ann]`` polynomials (Green et al.'s provenance semiring).

The AST of :mod:`repro.provenance.expressions` represents provenance
*syntactically*; two expressions that are equal in ``N[Ann]`` (e.g.
``a·(b + c)`` and ``a·b + a·c``) compare unequal as trees.  This module
provides the *canonical form*: a mapping from monomials (multisets of
annotations) to natural coefficients, on which semiring equality is
structural equality.

The polynomial semiring is the free commutative semiring over ``Ann``:
any annotation valuation into any commutative semiring extends
uniquely through :meth:`Polynomial.evaluate_in` -- that universal
property is what makes ``N[Ann]`` "the most informative" provenance
and is exercised directly by the property-based tests.

Summarization mappings ``h : Ann → Ann'`` act on polynomials through
:meth:`Polynomial.rename`, and :func:`from_expression` converts any
pure (tensor-free) AST into canonical form.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, TypeVar

from .expressions import ONE, ZERO, Comparison, Product, ProvExpr, Sum, Var
from .semirings import Semiring

T = TypeVar("T")

#: A monomial: annotation name → exponent.
Monomial = Tuple[Tuple[str, int], ...]

_EMPTY: Monomial = ()


def _monomial(names: Iterable[str]) -> Monomial:
    counts = Counter(names)
    return tuple(sorted(counts.items()))


def _monomial_product(first: Monomial, second: Monomial) -> Monomial:
    counts = Counter(dict(first))
    for name, exponent in second:
        counts[name] += exponent
    return tuple(sorted(counts.items()))


class Polynomial:
    """A polynomial with natural coefficients over annotation names.

    Immutable; arithmetic returns new polynomials.  Construct with
    :meth:`variable`, :meth:`constant`, or :func:`from_expression`.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] = ()):
        cleaned: Dict[Monomial, int] = {}
        for monomial, coefficient in dict(terms).items():
            if coefficient < 0:
                raise ValueError("N[Ann] has natural coefficients only")
            if coefficient:
                cleaned[monomial] = coefficient
        self._terms = cleaned

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls()

    @classmethod
    def one(cls) -> "Polynomial":
        return cls({_EMPTY: 1})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        return cls({_monomial((name,)): 1})

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        if value < 0:
            raise ValueError("N[Ann] has natural coefficients only")
        return cls({_EMPTY: value}) if value else cls()

    # -- structure -----------------------------------------------------------

    def terms(self) -> Dict[Monomial, int]:
        """Monomial → coefficient (copy)."""
        return dict(self._terms)

    def coefficient(self, names: Iterable[str]) -> int:
        return self._terms.get(_monomial(names), 0)

    def is_zero(self) -> bool:
        return not self._terms

    def annotation_names(self) -> FrozenSet[str]:
        names: set = set()
        for monomial in self._terms:
            names.update(name for name, _ in monomial)
        return frozenset(names)

    def degree(self) -> int:
        """Largest total degree of a monomial (0 for constants)."""
        if not self._terms:
            return 0
        return max(
            sum(exponent for _, exponent in monomial) for monomial in self._terms
        )

    def size(self) -> int:
        """Annotation occurrences with repetition, counting coefficients.

        Matches the §3.2 size measure on the expanded sum-of-monomials
        form: ``2·a·b²`` contributes 2 × (1 + 2) = 6.
        """
        return sum(
            coefficient * sum(exponent for _, exponent in monomial)
            for monomial, coefficient in self._terms.items()
        )

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        terms: Dict[Monomial, int] = {}
        for left_monomial, left_coefficient in self._terms.items():
            for right_monomial, right_coefficient in other._terms.items():
                product = _monomial_product(left_monomial, right_monomial)
                terms[product] = (
                    terms.get(product, 0) + left_coefficient * right_coefficient
                )
        return Polynomial(terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._terms.items())))

    # -- homomorphisms ------------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Apply a summarization mapping ``h`` (a semiring hom on N[Ann])."""
        terms: Dict[Monomial, int] = {}
        for monomial, coefficient in self._terms.items():
            names = []
            for name, exponent in monomial:
                names.extend([mapping.get(name, name)] * exponent)
            renamed = _monomial(names)
            terms[renamed] = terms.get(renamed, 0) + coefficient
        return Polynomial(terms)

    def evaluate_in(
        self, semiring: Semiring[T], valuation: Mapping[str, T]
    ) -> T:
        """The unique semiring-hom extension of ``valuation``.

        Every annotation must be mapped; coefficients and exponents are
        interpreted by repeated semiring addition/multiplication (so
        the result is correct in *any* commutative semiring, including
        the boolean and tropical ones).
        """
        total = semiring.zero
        for monomial, coefficient in self._terms.items():
            value = semiring.one
            for name, exponent in monomial:
                try:
                    base = valuation[name]
                except KeyError:
                    raise KeyError(f"valuation missing annotation {name!r}") from None
                for _ in range(exponent):
                    value = semiring.times(value, base)
            for _ in range(coefficient):
                total = semiring.plus(total, value)
        return total

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(self._terms.items()):
            factors = [
                name if exponent == 1 else f"{name}^{exponent}"
                for name, exponent in monomial
            ]
            body = "·".join(factors) if factors else "1"
            if coefficient == 1 and factors:
                parts.append(body)
            elif factors:
                parts.append(f"{coefficient}·{body}")
            else:
                parts.append(str(coefficient))
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polynomial({self})"


def from_expression(expression: ProvExpr) -> Polynomial:
    """Canonicalize a pure (tensor- and comparison-free) AST.

    Comparison tokens have no polynomial normal form (they are abstract
    guards, §2.2), so they are rejected here; flatten guarded
    expressions through the tensor-sum form instead.
    """
    if expression == ZERO:
        return Polynomial.zero()
    if expression == ONE:
        return Polynomial.one()
    if isinstance(expression, Var):
        return Polynomial.variable(expression.name)
    if isinstance(expression, Sum):
        total = Polynomial.zero()
        for child in expression.children:
            total = total + from_expression(child)
        return total
    if isinstance(expression, Product):
        total = Polynomial.one()
        for child in expression.children:
            total = total * from_expression(child)
        return total
    if isinstance(expression, Comparison):
        raise TypeError(
            "comparison tokens are abstract guards without a polynomial "
            "normal form (§2.2); canonicalize the guard-free part only"
        )
    raise TypeError(f"cannot canonicalize {type(expression).__name__}")
