"""Canonical ``N[Ann]`` polynomials (Green et al.'s provenance semiring).

The AST of :mod:`repro.provenance.expressions` represents provenance
*syntactically*; two expressions that are equal in ``N[Ann]`` (e.g.
``a·(b + c)`` and ``a·b + a·c``) compare unequal as trees.  This module
provides the *canonical form*: a mapping from monomials (multisets of
annotations) to natural coefficients, on which semiring equality is
structural equality.

The polynomial semiring is the free commutative semiring over ``Ann``:
any annotation valuation into any commutative semiring extends
uniquely through :meth:`Polynomial.evaluate_in` -- that universal
property is what makes ``N[Ann]`` "the most informative" provenance
and is exercised directly by the property-based tests.

Summarization mappings ``h : Ann → Ann'`` act on polynomials through
:meth:`Polynomial.rename`, and :func:`from_expression` converts any
pure (tensor-free) AST into canonical form.

Representation: :class:`Polynomial` is a façade.  In the default
``ir`` mode (:mod:`repro.provenance.ir`) a polynomial is two parallel
integer arrays over the process-wide interned term store -- the
string-keyed terms dict is materialized lazily only when asked for.
``REPRO_IR=legacy`` restores the seed dict-of-tuples storage; each
instance captures the mode active at construction, and mixed-mode
arithmetic degrades gracefully through the terms-dict boundary.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, TypeVar

from ..observability import tracing as _tracing
from . import ir as _ir
from .expressions import ONE, ZERO, Comparison, Product, ProvExpr, Sum, Var
from .semirings import Semiring

T = TypeVar("T")

#: A monomial: annotation name → exponent.
Monomial = Tuple[Tuple[str, int], ...]

_EMPTY: Monomial = ()


def _monomial(names: Iterable[str]) -> Monomial:
    counts = Counter(names)
    return tuple(sorted(counts.items()))


def _monomial_product(first: Monomial, second: Monomial) -> Monomial:
    """Merge two name-sorted exponent runs directly.

    Both operands are canonical (sorted by name, unique names), so the
    product is a single linear merge -- no ``Counter`` rebuild, no
    re-sort.  ~3x faster than the seed implementation on typical
    provenance monomials (see ``benchmarks/bench_ir_memory.py``).
    """
    if not first:
        return second
    if not second:
        return first
    merged = []
    i = j = 0
    n_first, n_second = len(first), len(second)
    while i < n_first and j < n_second:
        name_a, exp_a = first[i]
        name_b, exp_b = second[j]
        if name_a == name_b:
            merged.append((name_a, exp_a + exp_b))
            i += 1
            j += 1
        elif name_a < name_b:
            merged.append(first[i])
            i += 1
        else:
            merged.append(second[j])
            j += 1
    merged.extend(first[i:])
    merged.extend(second[j:])
    return tuple(merged)


class Polynomial:
    """A polynomial with natural coefficients over annotation names.

    Immutable; arithmetic returns new polynomials.  Construct with
    :meth:`variable`, :meth:`constant`, or :func:`from_expression`.
    """

    __slots__ = ("_terms", "_data", "_store", "_names", "_hash")

    def __init__(self, terms: Mapping[Monomial, int] = ()):
        cleaned: Dict[Monomial, int] = {}
        for monomial, coefficient in dict(terms).items():
            if coefficient < 0:
                raise ValueError("N[Ann] has natural coefficients only")
            if coefficient:
                cleaned[monomial] = coefficient
        self._names: Optional[FrozenSet[str]] = None
        self._hash: Optional[int] = None
        if _ir.ir_enabled():
            store = _ir.GLOBAL_STORE
            counts: Dict[int, int] = {}
            for monomial, coefficient in cleaned.items():
                mono = store.mono_from_name_pairs(monomial)
                counts[mono] = counts.get(mono, 0) + coefficient
            self._store: Optional[_ir.TermStore] = store
            self._data: Optional[_ir.PolyData] = store.poly_from_counts(counts)
            self._terms: Optional[Dict[Monomial, int]] = None
        else:
            self._store = None
            self._data = None
            self._terms = cleaned

    @classmethod
    def _from_data(cls, store: "_ir.TermStore", data: "_ir.PolyData") -> "Polynomial":
        """Wrap already-canonical IR columns without revalidation."""
        poly = cls.__new__(cls)
        poly._store = store
        poly._data = data
        poly._terms = None
        poly._names = None
        poly._hash = None
        return poly

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls()

    @classmethod
    def one(cls) -> "Polynomial":
        return cls({_EMPTY: 1})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        return cls({((name, 1),): 1})

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        if value < 0:
            raise ValueError("N[Ann] has natural coefficients only")
        return cls({_EMPTY: value}) if value else cls()

    # -- structure -----------------------------------------------------------

    def _term_dict(self) -> Dict[Monomial, int]:
        """The name-space terms, materialized lazily under the IR."""
        if self._terms is None:
            store, data = self._store, self._data
            self._terms = {
                store.mono_name_pairs(mono): coefficient
                for mono, coefficient in zip(data.mono_ids, data.coeffs)
            }
        return self._terms

    def ir_data(self) -> "Optional[_ir.PolyData]":
        """The backing IR columns (``None`` for legacy-mode instances)."""
        return self._data

    def ir_store(self) -> "Optional[_ir.TermStore]":
        """The term store the IR columns index into, if any."""
        return self._store

    def terms(self) -> Dict[Monomial, int]:
        """Monomial → coefficient (copy)."""
        return dict(self._term_dict())

    def coefficient(self, names: Iterable[str]) -> int:
        monomial = _monomial(names)
        if self._data is not None:
            interner = self._store.interner
            flat = []
            pairs = []
            for name, exponent in monomial:
                ann_id = interner.lookup(name)
                if ann_id is None:
                    return 0
                pairs.append((ann_id, exponent))
            for ann_id, exponent in sorted(pairs):
                flat.append(ann_id)
                flat.append(exponent)
            return self._store.poly_coefficient(self._data, tuple(flat))
        return self._terms.get(monomial, 0)

    def is_zero(self) -> bool:
        if self._data is not None:
            return len(self._data) == 0
        return not self._terms

    def annotation_names(self) -> FrozenSet[str]:
        if self._names is None:
            if self._data is not None:
                self._names = frozenset(
                    self._store.interner.names_of(
                        self._store.poly_annotation_ids(self._data)
                    )
                )
            else:
                names: set = set()
                for monomial in self._terms:
                    names.update(name for name, _ in monomial)
                self._names = frozenset(names)
        return self._names

    def degree(self) -> int:
        """Largest total degree of a monomial (0 for constants)."""
        if self._data is not None:
            return self._store.poly_degree(self._data)
        if not self._terms:
            return 0
        return max(
            sum(exponent for _, exponent in monomial) for monomial in self._terms
        )

    def size(self) -> int:
        """Annotation occurrences with repetition, counting coefficients.

        Matches the §3.2 size measure on the expanded sum-of-monomials
        form: ``2·a·b²`` contributes 2 × (1 + 2) = 6.
        """
        if self._data is not None:
            return self._store.poly_size(self._data)
        return sum(
            coefficient * sum(exponent for _, exponent in monomial)
            for monomial, coefficient in self._terms.items()
        )

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if (
            self._data is not None
            and other._data is not None
            and self._store is other._store
        ):
            return Polynomial._from_data(
                self._store, self._store.poly_add(self._data, other._data)
            )
        terms = dict(self._term_dict())
        for monomial, coefficient in other._term_dict().items():
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if (
            self._data is not None
            and other._data is not None
            and self._store is other._store
        ):
            return Polynomial._from_data(
                self._store, self._store.poly_mul(self._data, other._data)
            )
        terms: Dict[Monomial, int] = {}
        for left_monomial, left_coefficient in self._term_dict().items():
            for right_monomial, right_coefficient in other._term_dict().items():
                product = _monomial_product(left_monomial, right_monomial)
                terms[product] = (
                    terms.get(product, 0) + left_coefficient * right_coefficient
                )
        return Polynomial(terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        if (
            self._data is not None
            and other._data is not None
            and self._store is other._store
        ):
            return (
                self._data.mono_ids == other._data.mono_ids
                and self._data.coeffs == other._data.coeffs
            )
        return self._term_dict() == other._term_dict()

    def __hash__(self) -> int:
        # Mode-independent (IR and legacy instances that compare equal
        # must hash equal), cached -- the instance is immutable.
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._term_dict().items())))
        return self._hash

    # -- homomorphisms ------------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Apply a summarization mapping ``h`` (a semiring hom on N[Ann])."""
        with _tracing.span("rename") as opened:
            if _tracing.is_enabled():
                opened.set(
                    "n_terms",
                    len(self._data) if self._data is not None else len(self._terms),
                )
            if self._data is not None:
                table = self._store.rename_table(mapping)
                return Polynomial._from_data(
                    self._store, self._store.poly_rename(self._data, table)
                )
            terms: Dict[Monomial, int] = {}
            for monomial, coefficient in self._terms.items():
                names = []
                for name, exponent in monomial:
                    names.extend([mapping.get(name, name)] * exponent)
                renamed = _monomial(names)
                terms[renamed] = terms.get(renamed, 0) + coefficient
            return Polynomial(terms)

    def evaluate_in(
        self, semiring: Semiring[T], valuation: Mapping[str, T]
    ) -> T:
        """The unique semiring-hom extension of ``valuation``.

        Every annotation must be mapped; coefficients and exponents are
        interpreted by repeated semiring addition/multiplication (so
        the result is correct in *any* commutative semiring, including
        the boolean and tropical ones).
        """
        if self._data is not None:
            return self._store.poly_evaluate_in(self._data, semiring, valuation)
        total = semiring.zero
        for monomial, coefficient in self._terms.items():
            value = semiring.one
            for name, exponent in monomial:
                try:
                    base = valuation[name]
                except KeyError:
                    raise KeyError(f"valuation missing annotation {name!r}") from None
                for _ in range(exponent):
                    value = semiring.times(value, base)
            for _ in range(coefficient):
                total = semiring.plus(total, value)
        return total

    def __str__(self) -> str:
        terms = self._term_dict()
        if not terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(terms.items()):
            factors = [
                name if exponent == 1 else f"{name}^{exponent}"
                for name, exponent in monomial
            ]
            body = "·".join(factors) if factors else "1"
            if coefficient == 1 and factors:
                parts.append(body)
            elif factors:
                parts.append(f"{coefficient}·{body}")
            else:
                parts.append(str(coefficient))
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polynomial({self})"


def from_expression(expression: ProvExpr) -> Polynomial:
    """Canonicalize a pure (tensor- and comparison-free) AST.

    Comparison tokens have no polynomial normal form (they are abstract
    guards, §2.2), so they are rejected here; flatten guarded
    expressions through the tensor-sum form instead.
    """
    if expression == ZERO:
        return Polynomial.zero()
    if expression == ONE:
        return Polynomial.one()
    if isinstance(expression, Var):
        return Polynomial.variable(expression.name)
    if isinstance(expression, Sum):
        total = Polynomial.zero()
        for child in expression.children:
            total = total + from_expression(child)
        return total
    if isinstance(expression, Product):
        total = Polynomial.one()
        for child in expression.children:
            total = total * from_expression(child)
        return total
    if isinstance(expression, Comparison):
        raise TypeError(
            "comparison tokens are abstract guards without a polynomial "
            "normal form (§2.2); canonicalize the guard-free part only"
        )
    raise TypeError(f"cannot canonicalize {type(expression).__name__}")
