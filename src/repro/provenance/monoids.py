"""Aggregation monoids for tensor-paired provenance values.

Amsterdamer, Deutch and Tannen extend K-relations to aggregate queries
by pairing provenance with values from a commutative monoid ``M`` via a
tensor ``⊗`` and combining the pairs with a formal sum ``⊕``.  The
thesis uses three aggregation monoids (Table 5.1): MAX, SUM and MIN,
always alongside a contributor count, i.e. values are pairs
``(aggregate, how many tuples contributed)``.

:class:`AggregationMonoid` captures the plain value monoid;
:class:`CountedAggregate` is the pair monoid used in the running
examples, e.g. ``Female ⊗ (5, 2)`` meaning "max rating 5, from 2 users".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional


class AggregationMonoid(ABC):
    """A commutative monoid ``(M, ⊕, 0_M)`` of aggregate values."""

    #: Name used when datasets describe themselves (Table 5.1).
    name: str = "monoid"

    @property
    @abstractmethod
    def identity(self) -> float:
        """Neutral element of ``⊕`` (value of an empty aggregation)."""

    @abstractmethod
    def combine(self, a: float, b: float) -> float:
        """The monoid operation ``⊕``."""

    def fold(self, values: Iterable[float]) -> float:
        """Aggregate ``values``, returning :attr:`identity` when empty."""
        acc = self.identity
        for value in values:
            acc = self.combine(acc, value)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class SumMonoid(AggregationMonoid):
    """Real addition with identity 0 -- the SUM aggregate."""

    name = "SUM"

    @property
    def identity(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b


class MaxMonoid(AggregationMonoid):
    """``max`` with identity ``-inf`` -- the MAX aggregate.

    An empty MAX aggregation conventionally evaluates to 0 in the
    thesis's UI (a movie whose reviews were all cancelled shows rating
    0); use :meth:`finalize` to apply that convention.
    """

    name = "MAX"

    @property
    def identity(self) -> float:
        return -math.inf

    def combine(self, a: float, b: float) -> float:
        return max(a, b)


class MinMonoid(AggregationMonoid):
    """``min`` with identity ``+inf`` -- the MIN aggregate."""

    name = "MIN"

    @property
    def identity(self) -> float:
        return math.inf

    def combine(self, a: float, b: float) -> float:
        return min(a, b)


class CountMonoid(AggregationMonoid):
    """Counts contributing tuples; each tensor contributes its count."""

    name = "COUNT"

    @property
    def identity(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b


#: Shared stateless instances.
SUM = SumMonoid()
MAX = MaxMonoid()
MIN = MinMonoid()
COUNT = CountMonoid()

_BY_NAME = {m.name: m for m in (SUM, MAX, MIN, COUNT)}


def monoid_by_name(name: str) -> AggregationMonoid:
    """Look up an aggregation monoid by its Table 5.1 name.

    Raises :class:`KeyError` with the available names on a miss, which
    surfaces configuration typos early.
    """
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown aggregation monoid {name!r}; expected one of "
            f"{sorted(_BY_NAME)}"
        ) from None


@dataclass(frozen=True)
class CountedAggregate:
    """A pair ``(value, count)`` as used in the running examples.

    ``value`` is the aggregate (MAX/SUM/MIN of ratings, number of major
    edits, ...) and ``count`` the number of base tuples that
    contributed.  Pairs combine pointwise: values through the chosen
    :class:`AggregationMonoid`, counts by addition.
    """

    value: float
    count: int

    def combine(self, other: "CountedAggregate", monoid: AggregationMonoid) -> "CountedAggregate":
        """Combine two counted aggregates under ``monoid``."""
        return CountedAggregate(
            value=monoid.combine(self.value, other.value),
            count=self.count + other.count,
        )

    def finalized_value(self, empty_value: float = 0.0) -> float:
        """The aggregate value, mapping the empty aggregation to ``empty_value``.

        MAX/MIN identities are infinite sentinels; user-facing results
        (and the UI in Figures 7.9/7.10) report 0 for a group whose
        contributions were all cancelled.
        """
        if self.count == 0 or math.isinf(self.value):
            return empty_value
        return self.value


def fold_counted(
    pairs: Iterable[CountedAggregate],
    monoid: AggregationMonoid,
    empty: Optional[CountedAggregate] = None,
) -> CountedAggregate:
    """Fold counted aggregates under ``monoid``.

    Returns ``empty`` (default: identity with count 0) when ``pairs``
    is empty.
    """
    acc = empty if empty is not None else CountedAggregate(monoid.identity, 0)
    for pair in pairs:
        acc = acc.combine(pair, monoid)
    return acc
