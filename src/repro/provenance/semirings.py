"""Commutative semirings used throughout the provenance model.

The semiring provenance framework of Green, Karvounarakis and Tannen
interprets positive relational algebra over any commutative semiring
``(K, +, *, 0, 1)``.  The polynomial semiring ``N[Ann]`` is the most
general ("free") one; concrete semirings such as the boolean semiring
or the tropical semiring are obtained from it by evaluating the
indeterminates, which is exactly what a truth valuation does.

This module provides a small semiring abstraction plus the concrete
instances the thesis relies on:

* :class:`BooleanSemiring` -- truth valuations of plain annotations.
* :class:`NaturalsSemiring` -- bag semantics / counting.
* :class:`TropicalSemiring` -- ``(N ∪ {∞}, min, +, ∞, 0)``; used by the
  DDP dataset, where ``min`` picks the cheapest execution and ``+``
  accumulates per-transition costs.
* :class:`FloatSemiring` -- ordinary real arithmetic, for aggregate
  values.

Instances are stateless, so module-level singletons (``BOOLEAN``,
``NATURALS``, ``TROPICAL``, ``REALS``) are provided for convenience.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, TypeVar

T = TypeVar("T")


class Semiring(ABC, Generic[T]):
    """A commutative semiring ``(K, +, *, 0, 1)``.

    Subclasses supply the two operations and the two neutral elements;
    this base class supplies folds and the axioms as checkable
    predicates (used by the property-based tests).
    """

    #: Human-readable name of the structure, e.g. ``"N[x]"``.
    name: str = "semiring"

    @property
    @abstractmethod
    def zero(self) -> T:
        """Neutral element of ``+`` (annihilator of ``*``)."""

    @property
    @abstractmethod
    def one(self) -> T:
        """Neutral element of ``*``."""

    @abstractmethod
    def plus(self, a: T, b: T) -> T:
        """Semiring addition (alternative use of data)."""

    @abstractmethod
    def times(self, a: T, b: T) -> T:
        """Semiring multiplication (joint use of data)."""

    def sum(self, items: Iterable[T]) -> T:
        """Fold ``+`` over ``items`` starting from :attr:`zero`."""
        acc = self.zero
        for item in items:
            acc = self.plus(acc, item)
        return acc

    def product(self, items: Iterable[T]) -> T:
        """Fold ``*`` over ``items`` starting from :attr:`one`."""
        acc = self.one
        for item in items:
            acc = self.times(acc, item)
        return acc

    def is_member(self, value: Any) -> bool:
        """Return whether ``value`` belongs to the carrier set.

        The default accepts anything; subclasses narrow it so tests can
        generate valid elements.
        """
        return True

    # -- axiom predicates (exercised by hypothesis tests) ---------------

    def satisfies_commutativity(self, a: T, b: T) -> bool:
        return (
            self.plus(a, b) == self.plus(b, a)
            and self.times(a, b) == self.times(b, a)
        )

    def satisfies_associativity(self, a: T, b: T, c: T) -> bool:
        return (
            self.plus(self.plus(a, b), c) == self.plus(a, self.plus(b, c))
            and self.times(self.times(a, b), c) == self.times(a, self.times(b, c))
        )

    def satisfies_identity(self, a: T) -> bool:
        return (
            self.plus(a, self.zero) == a
            and self.times(a, self.one) == a
            and self.times(a, self.zero) == self.zero
        )

    def satisfies_distributivity(self, a: T, b: T, c: T) -> bool:
        return self.times(a, self.plus(b, c)) == self.plus(
            self.times(a, b), self.times(a, c)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class BooleanSemiring(Semiring[bool]):
    """``({False, True}, or, and, False, True)``.

    Truth valuations of provenance polynomials take values here: ``+``
    is disjunction (a tuple is derivable by *some* alternative) and
    ``*`` is conjunction (all joined inputs must be present).
    """

    name = "bool"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def is_member(self, value: Any) -> bool:
        return isinstance(value, bool)


class NaturalsSemiring(Semiring[int]):
    """``(N, +, *, 0, 1)`` -- counts derivations under bag semantics."""

    name = "N"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b

    def is_member(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0


class TropicalSemiring(Semiring[float]):
    """``(N ∪ {∞}, min, +, ∞, 0)`` -- the cost semiring of the DDP model.

    Addition is ``min`` (choose the cheapest execution) and
    multiplication is ``+`` (sum the costs of a single execution's
    transitions).  ``math.inf`` plays the role of the absent
    execution.
    """

    name = "tropical"

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return min(a, b)

    def times(self, a: float, b: float) -> float:
        return a + b

    def is_member(self, value: Any) -> bool:
        if value == math.inf:
            return True
        return isinstance(value, (int, float)) and value >= 0


class FloatSemiring(Semiring[float]):
    """Ordinary real arithmetic ``(R, +, *, 0, 1)``."""

    name = "R"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def plus(self, a: float, b: float) -> float:
        return a + b

    def times(self, a: float, b: float) -> float:
        return a * b

    def is_member(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and math.isfinite(value)


#: Shared stateless instances.
BOOLEAN = BooleanSemiring()
NATURALS = NaturalsSemiring()
TROPICAL = TropicalSemiring()
REALS = FloatSemiring()
