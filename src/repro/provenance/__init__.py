"""Semiring provenance model: expressions, valuations, aggregation.

This subpackage is the substrate of Chapter 2 -- everything the
summarization algorithm (in :mod:`repro.core`) consumes:

* :mod:`~repro.provenance.semirings` / :mod:`~repro.provenance.monoids`
  -- the algebraic structures.
* :mod:`~repro.provenance.annotations` -- annotations with attributes,
  domains and summary-group membership.
* :mod:`~repro.provenance.expressions` -- the general ``N[Ann]`` AST
  with tensors and comparison tokens.
* :mod:`~repro.provenance.tensor_sum` -- the grouped tensor-sum normal
  form the summarizer operates on.
* :mod:`~repro.provenance.ddp_expression` -- DDP provenance over the
  tropical semiring.
* :mod:`~repro.provenance.valuation` /
  :mod:`~repro.provenance.valuation_classes` -- truth valuations and
  the classes ``V_Ann`` distances average over.
"""

from .annotations import Annotation, AnnotationUniverse
from .ddp_expression import (
    CostTransition,
    DBTransition,
    DDPExpression,
    DDPResult,
    Execution,
)
from .explanations import counterfactual_annotations, explain, witnesses
from .expressions import (
    ONE,
    ZERO,
    AggSum,
    Comparison,
    Product,
    ProvExpr,
    Sum,
    Tensor,
    Var,
)
from .monoids import (
    COUNT,
    MAX,
    MIN,
    SUM,
    AggregationMonoid,
    CountedAggregate,
    fold_counted,
    monoid_by_name,
)
from .ir import (
    GLOBAL_STORE,
    AnnotationInterner,
    PolyData,
    RenameTable,
    TermStore,
    ir_enabled,
)
from .polynomial import Monomial, Polynomial, from_expression
from .semirings import (
    BOOLEAN,
    NATURALS,
    REALS,
    TROPICAL,
    BooleanSemiring,
    FloatSemiring,
    NaturalsSemiring,
    Semiring,
    TropicalSemiring,
)
from .tensor_sum import Guard, GroupVector, TensorSum, Term
from .valuation import ALL_TRUE, Valuation, cancel
from .valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    CancelSubsets,
    ExplicitValuations,
    TaxonomyConsistent,
    ValuationClass,
    bernoulli_weighted,
)

__all__ = [
    "ALL_TRUE",
    "AggSum",
    "AggregationMonoid",
    "Annotation",
    "AnnotationInterner",
    "AnnotationUniverse",
    "BOOLEAN",
    "BooleanSemiring",
    "COUNT",
    "CancelSingleAnnotation",
    "CancelSingleAttribute",
    "CancelSubsets",
    "Comparison",
    "CostTransition",
    "CountedAggregate",
    "DBTransition",
    "DDPExpression",
    "DDPResult",
    "Execution",
    "ExplicitValuations",
    "FloatSemiring",
    "GLOBAL_STORE",
    "Guard",
    "GroupVector",
    "MAX",
    "Monomial",
    "MIN",
    "NATURALS",
    "NaturalsSemiring",
    "ONE",
    "PolyData",
    "Polynomial",
    "Product",
    "ProvExpr",
    "REALS",
    "RenameTable",
    "SUM",
    "Semiring",
    "Sum",
    "TROPICAL",
    "TaxonomyConsistent",
    "Tensor",
    "TensorSum",
    "Term",
    "TermStore",
    "TropicalSemiring",
    "Valuation",
    "ValuationClass",
    "Var",
    "ZERO",
    "bernoulli_weighted",
    "cancel",
    "counterfactual_annotations",
    "explain",
    "fold_counted",
    "from_expression",
    "ir_enabled",
    "monoid_by_name",
    "witnesses",
]
