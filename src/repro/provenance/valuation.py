"""Truth valuations over provenance annotations (§2.3).

A valuation maps annotations to truth values -- or, for DDP cost
variables, to 0/1 multipliers -- and extends to whole provenance
expressions through the semiring axioms and the tensor congruences.
Provisioning ("what if we ignore all male users' reviews?") is exactly
evaluation under such a valuation.

Valuations here are *sparse*: they record only the annotations that
deviate from a default (normally ``1``/true).  The thesis's valuation
classes cancel one annotation or one attribute group, so the sparse
representation keeps evaluation and lifting cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple


@dataclass(frozen=True)
class Valuation:
    """A sparse truth/number valuation.

    Parameters
    ----------
    assignment:
        Annotation name → assigned value for the annotations that
        deviate from ``default``.  Boolean annotations use 0.0 / 1.0;
        DDP cost variables may use any multiplier (the thesis uses
        0/1).
    default:
        Value of every unmentioned annotation (1.0: present/true).
    weight:
        The weighting ``w(v)`` of Definition 3.2.2 (uniform 1 by
        default).
    label:
        Human-readable description, e.g. ``"cancel Gender=M"``.
    """

    assignment: Mapping[str, float] = field(default_factory=dict)
    default: float = 1.0
    weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))

    def value(self, name: str) -> float:
        """Numeric value assigned to ``name``."""
        return self.assignment.get(name, self.default)

    def truth(self, name: str) -> bool:
        """Boolean reading of the value (non-zero is true)."""
        return self.value(name) != 0

    def false_set(self) -> FrozenSet[str]:
        """Annotations assigned zero.

        Only meaningful with the (usual) default of 1: the returned set
        together with "everything else true" determines the valuation
        on boolean annotations.
        """
        return frozenset(
            name for name, value in self.assignment.items() if value == 0
        )

    def truth_map(self, names: Iterable[str]) -> Dict[str, bool]:
        """Materialize truth values for ``names`` (for scan evaluation)."""
        return {name: self.truth(name) for name in names}

    def cancelling(self, names: Iterable[str]) -> "Valuation":
        """A copy that additionally cancels ``names``."""
        assignment = dict(self.assignment)
        for name in names:
            assignment[name] = 0.0
        return Valuation(assignment, self.default, self.weight, self.label)

    def is_contradictory(self) -> bool:
        """A sparse valuation assigns one value per name, never two."""
        return False

    def __str__(self) -> str:
        if self.label:
            return self.label
        cancelled = sorted(self.false_set())
        if cancelled:
            return f"cancel {{{', '.join(cancelled)}}}"
        return "all-true"


#: The valuation that keeps every annotation (identity provisioning).
ALL_TRUE = Valuation()


def cancel(names: Iterable[str], weight: float = 1.0, label: str = "") -> Valuation:
    """Convenience constructor: cancel exactly ``names``, keep the rest."""
    names = tuple(names)
    if not label:
        label = f"cancel {{{', '.join(sorted(names))}}}"
    return Valuation({name: 0.0 for name in names}, weight=weight, label=label)
