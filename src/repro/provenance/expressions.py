"""General provenance expression AST over ``N[Ann]`` with aggregates.

This is the faithful algebraic representation of Chapter 2: polynomials
over annotations (:class:`Var`, :class:`Sum`, :class:`Product`, the
constants :class:`Zero`/:class:`One`), comparison tokens such as
``[S1 · U1 ⊗ 5 > 2]`` (:class:`Comparison`), tensors pairing provenance
with aggregate values (:class:`Tensor`) and the formal aggregation sum
``⊕`` (:class:`AggSum`).

The relational layer (:mod:`repro.db.query`) and the workflow engine
build these trees.  The summarization algorithm itself runs on the
flattened normal form of :mod:`repro.provenance.tensor_sum`, obtained
through :meth:`AggSum.to_tensor_sum`.

All nodes are immutable; ``simplify`` returns new trees, applying the
semiring identities (0 absorbs products, drops out of sums; 1 drops out
of products) and the tensor congruences ``0 ⊗ m ≡ 0`` and
``k ⊗ m1 ⊕ k ⊗ m2 ≡ k ⊗ (m1 ⊕ m2)``.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .monoids import AggregationMonoid, CountedAggregate, fold_counted

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


class ProvExpr(ABC):
    """A node of the pure polynomial part of a provenance expression."""

    __slots__ = ()

    @abstractmethod
    def annotation_names(self) -> FrozenSet[str]:
        """Names of annotations occurring in the subtree."""

    @abstractmethod
    def size(self) -> int:
        """Number of annotation occurrences, counted with repetition.

        This is the thesis's provenance-size measure (§3.2).
        """

    @abstractmethod
    def rename(self, mapping: Mapping[str, str]) -> "ProvExpr":
        """Apply a homomorphism ``h`` by renaming annotations."""

    @abstractmethod
    def truth(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate in the boolean semiring under a truth assignment.

        Annotations missing from ``assignment`` default to ``True``
        (the thesis's valuations cancel a few annotations and keep the
        rest).
        """

    @abstractmethod
    def simplify(self) -> "ProvExpr":
        """Apply semiring identities bottom-up."""

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "ProvExpr") -> "ProvExpr":
        return Sum((self, other)).simplify()

    def __mul__(self, other: "ProvExpr") -> "ProvExpr":
        return Product((self, other)).simplify()


@dataclass(frozen=True)
class Var(ProvExpr):
    """An annotation indeterminate of ``N[Ann]``."""

    name: str

    def annotation_names(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def size(self) -> int:
        return 1

    def rename(self, mapping: Mapping[str, str]) -> ProvExpr:
        return Var(mapping.get(self.name, self.name))

    def truth(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment.get(self.name, True))

    def simplify(self) -> ProvExpr:
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Const(ProvExpr):
    value: bool

    def annotation_names(self) -> FrozenSet[str]:
        return frozenset()

    def size(self) -> int:
        return 0

    def rename(self, mapping: Mapping[str, str]) -> ProvExpr:
        return self

    def truth(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def simplify(self) -> ProvExpr:
        return self

    def __str__(self) -> str:
        return "1" if self.value else "0"


#: The absent-data constant ``0``.
ZERO = _Const(False)
#: The present-data constant ``1``.
ONE = _Const(True)


@dataclass(frozen=True)
class Sum(ProvExpr):
    """Alternative use of data: ``+`` of ``N[Ann]`` (union, projection)."""

    children: Tuple[ProvExpr, ...]

    def __init__(self, children: Iterable[ProvExpr]):
        object.__setattr__(self, "children", tuple(children))

    def annotation_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for child in self.children:
            names |= child.annotation_names()
        return names

    def size(self) -> int:
        return sum(child.size() for child in self.children)

    def rename(self, mapping: Mapping[str, str]) -> ProvExpr:
        return Sum(child.rename(mapping) for child in self.children)

    def truth(self, assignment: Mapping[str, bool]) -> bool:
        return any(child.truth(assignment) for child in self.children)

    def simplify(self) -> ProvExpr:
        flat = []
        for child in self.children:
            child = child.simplify()
            if child == ZERO:
                continue
            if isinstance(child, Sum):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            return ZERO
        if len(flat) == 1:
            return flat[0]
        return Sum(flat)

    def __str__(self) -> str:
        return " + ".join(_wrap(child) for child in self.children)


@dataclass(frozen=True)
class Product(ProvExpr):
    """Joint use of data: ``*`` of ``N[Ann]`` (join)."""

    children: Tuple[ProvExpr, ...]

    def __init__(self, children: Iterable[ProvExpr]):
        object.__setattr__(self, "children", tuple(children))

    def annotation_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for child in self.children:
            names |= child.annotation_names()
        return names

    def size(self) -> int:
        return sum(child.size() for child in self.children)

    def rename(self, mapping: Mapping[str, str]) -> ProvExpr:
        return Product(child.rename(mapping) for child in self.children)

    def truth(self, assignment: Mapping[str, bool]) -> bool:
        return all(child.truth(assignment) for child in self.children)

    def simplify(self) -> ProvExpr:
        flat = []
        for child in self.children:
            child = child.simplify()
            if child == ZERO:
                return ZERO
            if child == ONE:
                continue
            if isinstance(child, Product):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            return ONE
        if len(flat) == 1:
            return flat[0]
        return Product(flat)

    def __str__(self) -> str:
        return " · ".join(_wrap(child) for child in self.children)


@dataclass(frozen=True)
class Comparison(ProvExpr):
    """A comparison token such as ``[S1 · U1 ⊗ 5 > 2]``.

    The guard provenance ``prov`` is tensor-paired with ``value``; under
    a truth assignment, ``prov`` evaluating to 1 makes the left operand
    ``value`` (congruence ``1 ⊗ m ≡ m``) and evaluating to 0 makes it 0
    (``0 ⊗ m ≡ 0``).  The token itself then evaluates to 1 or 0
    depending on ``<left> op threshold``.

    The DDP guards ``[d_i · d_j] ≠ 0`` are the ``value=1`` special
    case: the token is satisfied exactly when the polynomial is
    non-zero.
    """

    prov: ProvExpr
    value: float
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(
                f"unsupported comparison operator {self.op!r}; expected one of "
                f"{sorted(_COMPARATORS)}"
            )

    def annotation_names(self) -> FrozenSet[str]:
        return self.prov.annotation_names()

    def size(self) -> int:
        return self.prov.size()

    def rename(self, mapping: Mapping[str, str]) -> ProvExpr:
        return Comparison(self.prov.rename(mapping), self.value, self.op, self.threshold)

    def truth(self, assignment: Mapping[str, bool]) -> bool:
        left = self.value if self.prov.truth(assignment) else 0.0
        return _COMPARATORS[self.op](left, self.threshold)

    def simplify(self) -> ProvExpr:
        prov = self.prov.simplify()
        if prov in (ZERO, ONE):
            left = self.value if prov == ONE else 0.0
            return ONE if _COMPARATORS[self.op](left, self.threshold) else ZERO
        # The token's outcome may not depend on the guard provenance at
        # all (e.g. [s ⊗ 1 > 2] is false whatever s is): fold it.
        alive = _COMPARATORS[self.op](self.value, self.threshold)
        dead = _COMPARATORS[self.op](0.0, self.threshold)
        if alive and dead:
            return ONE
        if not alive and not dead:
            return ZERO
        return Comparison(prov, self.value, self.op, self.threshold)

    def __str__(self) -> str:
        return f"[{self.prov} ⊗ {_fmt(self.value)} {self.op} {_fmt(self.threshold)}]"


@dataclass(frozen=True)
class Tensor:
    """A tensor ``prov ⊗ (value, count)`` -- one aggregate contribution.

    ``group`` optionally names the object (movie, page, ...) whose
    aggregate this contribution belongs to; evaluation of an
    :class:`AggSum` produces one aggregate per group (the thesis's
    formal sum ``⊕_M`` across movies).
    """

    prov: ProvExpr
    value: float
    count: int = 1
    group: Optional[str] = None

    def annotation_names(self) -> FrozenSet[str]:
        return self.prov.annotation_names()

    def size(self) -> int:
        return self.prov.size()

    def rename(self, mapping: Mapping[str, str]) -> "Tensor":
        group = mapping.get(self.group, self.group) if self.group else None
        return Tensor(self.prov.rename(mapping), self.value, self.count, group)

    def __str__(self) -> str:
        return f"{_wrap(self.prov)} ⊗ ({_fmt(self.value)}, {self.count})"


@dataclass(frozen=True)
class AggSum:
    """The formal sum ``⊕`` of tensors -- a full aggregate expression.

    This is the top-level shape of Example 2.2.1: a sum of
    ``annotation-monomial ⊗ (value, count)`` contributions.  Evaluation
    under a truth assignment applies the congruences, folds surviving
    contributions through the aggregation monoid, and returns one
    :class:`CountedAggregate` per group.
    """

    tensors: Tuple[Tensor, ...]
    monoid: AggregationMonoid

    def __init__(self, tensors: Iterable[Tensor], monoid: AggregationMonoid):
        object.__setattr__(self, "tensors", tuple(tensors))
        object.__setattr__(self, "monoid", monoid)

    def annotation_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for tensor in self.tensors:
            names |= tensor.annotation_names()
        return names

    def size(self) -> int:
        return sum(tensor.size() for tensor in self.tensors)

    def rename(self, mapping: Mapping[str, str]) -> "AggSum":
        return AggSum((tensor.rename(mapping) for tensor in self.tensors), self.monoid)

    def simplify(self) -> "AggSum":
        """Drop ``0 ⊗ m`` tensors and merge tensors with equal provenance.

        Equal-provenance tensors in the same group merge through
        ``k ⊗ m1 ⊕ k ⊗ m2 ≡ k ⊗ (m1 ⊕ m2)``, combining values via the
        aggregation monoid and summing the counts.
        """
        merged: Dict[Tuple[ProvExpr, Optional[str]], Tensor] = {}
        order = []
        for tensor in self.tensors:
            prov = tensor.prov.simplify()
            if prov == ZERO:
                continue
            key = (prov, tensor.group)
            if key in merged:
                previous = merged[key]
                merged[key] = Tensor(
                    prov,
                    self.monoid.combine(previous.value, tensor.value),
                    previous.count + tensor.count,
                    tensor.group,
                )
            else:
                merged[key] = Tensor(prov, tensor.value, tensor.count, tensor.group)
                order.append(key)
        return AggSum((merged[key] for key in order), self.monoid)

    def evaluate(self, assignment: Mapping[str, bool]) -> Dict[Optional[str], CountedAggregate]:
        """Aggregate per group under a truth assignment.

        Unmapped annotations default to ``True``.
        """
        groups: Dict[Optional[str], list] = {}
        for tensor in self.tensors:
            if tensor.prov.truth(assignment):
                groups.setdefault(tensor.group, []).append(
                    CountedAggregate(tensor.value, tensor.count)
                )
        return {
            group: fold_counted(pairs, self.monoid)
            for group, pairs in groups.items()
        }

    def to_tensor_sum(self):
        """Flatten into the summarizer's normal form.

        Each tensor's provenance must be a monomial -- a product of
        variables and comparison tokens -- which is the shape all the
        thesis's datasets produce (Table 5.1).  A sum inside a tensor
        is distributed out first.
        """
        from .tensor_sum import Guard, TensorSum, Term

        terms = []
        for tensor in self.tensors:
            for monomial, guards in _monomials_of(tensor.prov):
                terms.append(
                    Term(
                        annotations=tuple(sorted(monomial)),
                        guards=tuple(guards),
                        value=tensor.value,
                        count=tensor.count,
                        group=tensor.group,
                    )
                )
        return TensorSum(terms, self.monoid)

    def __str__(self) -> str:
        return " ⊕ ".join(str(tensor) for tensor in self.tensors)


def _monomials_of(expr: ProvExpr) -> Sequence[Tuple[Tuple[str, ...], Tuple]]:
    """Expand ``expr`` into monomials ``(variables, guards)``.

    Distributes products over sums so that each returned entry is a
    pure conjunction.  Comparison tokens whose guard provenance is a
    monomial become :class:`~repro.provenance.tensor_sum.Guard`.
    """
    from .tensor_sum import Guard

    expr = expr.simplify()
    if expr == ZERO:
        return []
    if expr == ONE:
        return [((), ())]
    if isinstance(expr, Var):
        return [((expr.name,), ())]
    if isinstance(expr, Comparison):
        inner = _monomials_of(expr.prov)
        if len(inner) != 1 or inner[0][1]:
            raise ValueError(
                "comparison guards must contain a single monomial to flatten"
            )
        guard = Guard(inner[0][0], expr.value, expr.op, expr.threshold)
        return [((), (guard,))]
    if isinstance(expr, Sum):
        result = []
        for child in expr.children:
            result.extend(_monomials_of(child))
        return result
    if isinstance(expr, Product):
        result: list = [((), ())]
        for child in expr.children:
            child_monomials = _monomials_of(child)
            result = [
                (vars_a + vars_b, guards_a + guards_b)
                for vars_a, guards_a in result
                for vars_b, guards_b in child_monomials
            ]
        return result
    raise TypeError(f"cannot flatten expression node {type(expr).__name__}")


def _wrap(expr: ProvExpr) -> str:
    text = str(expr)
    if isinstance(expr, Sum):
        return f"({text})"
    return text


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"
