"""Interned provenance IR: annotation interner + arena-backed term store.

PROX's premise is that provenance expressions are too large to keep
around naively, yet the seed representation stored every ``N[Ann]``
monomial as a string-keyed tuple-of-tuples and rebuilt ``Counter``
objects term by term on every product and rename.  This module is the
memory/throughput answer: all annotation *names* are interned once
into dense integer ids, and all *monomials* live in one flat
append-only arena, so a polynomial reduces to two parallel integer
arrays -- ``(monomial id, coefficient)`` pairs -- and every kernel is
integer work over shared storage.  This mirrors how related
summarization systems get leverage from compact representations:
provenance-type aggregation (Moreau 2015) and provenance abstraction
for hypothetical reasoning (Deutch et al. 2020) both map concrete
identifiers into a small interned space before doing any real work.

Layout
------

:class:`AnnotationInterner`
    Bidirectional ``str ↔ int`` map.  Ids are dense, start at 0 and
    are stable for the interner's lifetime (a session holds one
    interner, so repeated ``/summarize`` calls reuse ids instead of
    re-parsing annotation strings).

:class:`TermStore`
    The arena.  Monomials are interned exactly like names: the
    ``(annotation-id, exponent)`` pairs of every distinct monomial are
    appended once to one flat ``array('q')`` (``_pair_data``), with a
    bounds array mapping monomial id → slice.  Monomial id 0 is the
    empty monomial (the constant ``1``).  Because monomials are
    interned, polynomial products and renames memoize at the monomial
    level: multiplying ``a·b²`` by ``c`` resolves to a single
    dictionary hit after the first time anywhere in the process.

:class:`PolyData`
    One polynomial: parallel ``array('q')`` columns ``mono_ids`` /
    ``coeffs``, sorted by monomial id (the canonical simplified form
    -- equality is array equality).  All semiring kernels
    (:meth:`TermStore.poly_add`, :meth:`TermStore.poly_mul`,
    :meth:`TermStore.poly_rename`, :meth:`TermStore.poly_size`, ...)
    are vectorized-in-pure-python loops over these columns.

:class:`RenameTable`
    A summarization mapping ``h : Ann → Ann'`` compiled to an id-remap
    array (``table[id] = id'``) plus a per-table monomial memo, so
    applying the same ``h`` to many polynomials (or the same monomial
    under many terms) is a lookup, not a rebuild.

Mode switch
-----------

``REPRO_IR=legacy`` (escape hatch, kept for one release) restores the
seed dict-of-tuples representation everywhere the IR threads through:
:class:`~repro.provenance.polynomial.Polynomial` falls back to its
string-keyed terms dict, the fast scorers key masks on names instead
of ids, and equivalence grouping uses truth-tuple signatures.  The
differential suite (``tests/core/test_parallel_scoring.py``) proves
both modes produce bit-identical summaries, sizes and distances.

Observability: the gauges ``repro_ir_interned_annotations`` and
``repro_ir_arena_bytes`` (exported via the existing ``/metrics``
endpoint) track interner cardinality and arena storage; publishing
stores update them on growth, others via :func:`publish_metrics`.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..observability import metrics as _metrics

MODE_IR = "ir"
MODE_LEGACY = "legacy"

_LEGACY_WORDS = frozenset({"legacy", "off", "0", "false", "no", "disabled"})

_IR_INTERNED = _metrics.gauge(
    "repro_ir_interned_annotations",
    "Annotation names interned by the most recently published interner.",
)
_IR_ARENA_BYTES = _metrics.gauge(
    "repro_ir_arena_bytes",
    "Bytes held by the most recently published term-store arena arrays.",
)


def _mode_from_env() -> str:
    raw = os.environ.get("REPRO_IR", MODE_IR).strip().lower()
    return MODE_LEGACY if raw in _LEGACY_WORDS else MODE_IR


_MODE: str = _mode_from_env()


def active_mode() -> str:
    """The representation currently in effect (``"ir"`` or ``"legacy"``)."""
    return _MODE


def ir_enabled() -> bool:
    """Whether the interned IR representation is active."""
    return _MODE == MODE_IR


def set_mode(new_mode: str) -> None:
    """Switch representations process-wide (objects keep the mode they
    were built under; only *new* constructions are affected)."""
    global _MODE
    if new_mode not in (MODE_IR, MODE_LEGACY):
        raise ValueError(f"mode must be {MODE_IR!r} or {MODE_LEGACY!r}, got {new_mode!r}")
    _MODE = new_mode


@contextmanager
def mode(temporary: str) -> Iterator[str]:
    """Temporarily switch representations (tests and differentials)."""
    previous = active_mode()
    set_mode(temporary)
    try:
        yield temporary
    finally:
        set_mode(previous)


class AnnotationInterner:
    """Dense, stable, bidirectional ``annotation name ↔ int id`` map.

    A snapshot-restored interner (:meth:`from_snapshot`) wraps the
    read-only name block of an arena snapshot: the NUL-separated UTF-8
    blob is kept as-is and only decoded into Python strings -- and the
    reverse ``name → id`` dict only built -- when something actually
    asks (lazy restore).  Interning a *new* name materializes both and
    then grows them normally; ids assigned by the snapshot stay stable.
    """

    __slots__ = ("_ids", "_names", "_blob", "publish")

    def __init__(self, names: Iterable[str] = (), publish: bool = False):
        self._ids: Optional[Dict[str, int]] = {}
        self._names: Optional[List[str]] = []
        #: Undecoded snapshot name block (restored interners only).
        self._blob: Optional[bytes] = None
        #: Whether growth updates the ``repro_ir_interned_annotations`` gauge.
        self.publish = publish
        for name in names:
            self.intern(name)

    @classmethod
    def from_snapshot(cls, blob: bytes, publish: bool = False) -> "AnnotationInterner":
        """Wrap a read-only NUL-separated name block without decoding it."""
        interner = cls(publish=publish)
        if blob:
            interner._blob = bytes(blob)
            interner._names = None
            interner._ids = None
        return interner

    def _materialize(self) -> List[str]:
        """Decode the snapshot name block on first real use."""
        if self._names is None:
            self._names = [part.decode("utf-8") for part in self._blob.split(b"\x00")]
            self._blob = None
        return self._names

    def _id_map(self) -> Dict[str, int]:
        if self._ids is None:
            self._ids = {name: i for i, name in enumerate(self._materialize())}
        return self._ids

    def intern(self, name: str) -> int:
        """The id of ``name``, allocating the next dense id if new."""
        ids = self._ids
        if ids is None:
            ids = self._id_map()
        interned = ids.get(name)
        if interned is None:
            interned = len(self._names)
            ids[name] = interned
            self._names.append(name)
            if self.publish and _metrics.ENABLED:
                _IR_INTERNED.set(len(self._names))
        return interned

    def intern_all(self, names: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.intern(name) for name in names)

    def lookup(self, name: str) -> Optional[int]:
        """The id of ``name`` if already interned, without allocating."""
        return self._id_map().get(name)

    def name_of(self, interned: int) -> str:
        names = self._names
        if names is None:
            names = self._materialize()
        return names[interned]

    def names_of(self, ids: Iterable[int]) -> Tuple[str, ...]:
        names = self._names
        if names is None:
            names = self._materialize()
        return tuple(names[i] for i in ids)

    def __len__(self) -> int:
        if self._names is None:
            return self._blob.count(b"\x00") + 1
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._id_map()

    def __iter__(self) -> Iterator[str]:
        """Names in id order."""
        if self._names is None:
            self._materialize()
        return iter(self._names)

    def nbytes(self) -> int:
        """Rough payload estimate: the name characters plus two slots
        (forward dict entry, reverse list entry) per name."""
        if self._names is None:
            return len(self._blob) + 16 * len(self)
        return sum(len(name) for name in self._names) + 16 * len(self._names)


class IntColumn:
    """A read-only int64 base buffer with a private writable tail.

    The copy-on-append primitive behind zero-copy arena snapshots: a
    restored :class:`TermStore` wraps each snapshot block (an mmap'd
    ``memoryview`` cast to ``'q'``) as the *base* and appends new
    entries to a session-private ``array('q')`` *tail*.  Reads below
    the frozen length index straight into the mapped file -- nothing is
    copied at restore time -- while appends grow only the tail, so the
    snapshot file itself is never written through.

    Supports exactly the sequence surface the arena kernels use:
    ``len``, integer ``[]``, iteration, ``append`` / ``extend`` and
    ``itemsize``.
    """

    __slots__ = ("base", "tail", "_n_base")

    itemsize = 8

    def __init__(self, base=None):
        #: Read-only ``memoryview`` cast to ``'q'`` (or ``None``).
        self.base = base
        self.tail = array("q")
        self._n_base = len(base) if base is not None else 0

    def __len__(self) -> int:
        return self._n_base + len(self.tail)

    def __getitem__(self, index: int) -> int:
        n_base = self._n_base
        if index < 0:
            index += n_base + len(self.tail)
        if index < n_base:
            return self.base[index]
        return self.tail[index - n_base]

    def __iter__(self) -> Iterator[int]:
        if self.base is not None:
            yield from self.base
        yield from self.tail

    def append(self, value: int) -> None:
        self.tail.append(value)

    def extend(self, values: Iterable[int]) -> None:
        self.tail.extend(values)

    def frozen_length(self) -> int:
        """Entries served zero-copy from the snapshot buffer."""
        return self._n_base


class RenameTable:
    """A mapping ``h : Ann → Ann'`` compiled against one interner.

    ``table[id]`` is the image id; monomial renames memoize per table,
    so re-applying the same ``h`` costs one dict lookup per monomial.
    """

    __slots__ = ("table", "_memo")

    def __init__(self, table: "array[int]"):
        self.table = table
        self._memo: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.table)


class PolyData:
    """One canonical polynomial: sorted, parallel integer columns."""

    __slots__ = ("mono_ids", "coeffs")

    def __init__(self, mono_ids: "array[int]", coeffs: "array[int]"):
        self.mono_ids = mono_ids
        self.coeffs = coeffs

    def __len__(self) -> int:
        return len(self.mono_ids)

    def nbytes(self) -> int:
        return (
            self.mono_ids.itemsize * len(self.mono_ids)
            + self.coeffs.itemsize * len(self.coeffs)
        )


_EMPTY_KEY: Tuple[int, ...] = ()


class TermStore:
    """Arena of interned monomials plus the polynomial kernels.

    Monomial id ``m`` owns ``_pair_data[_bounds[m]:_bounds[m + 1]]`` --
    a flat, ann-id-sorted run of ``(annotation-id, exponent)`` pairs.
    Id 0 is the empty monomial.  The store is append-only; nothing is
    ever moved or freed, so ids and slices are stable for its lifetime
    (single-writer: share a store across threads only behind a lock,
    as the PROX server's session lock already provides).
    """

    __slots__ = (
        "interner",
        "_pair_data",
        "_bounds",
        "_mono_sizes",
        "_mono_index",
        "_product_memo",
        "_rename_tables",
        "publish",
    )

    def __init__(
        self,
        interner: Optional[AnnotationInterner] = None,
        publish: bool = False,
    ):
        self.interner = interner if interner is not None else AnnotationInterner()
        self.publish = publish
        if publish:
            self.interner.publish = True
        self._pair_data = array("q")
        self._bounds = array("q", (0, 0))  # mono 0: the empty slice
        self._mono_sizes = array("q", (0,))
        self._mono_index: Optional[Dict[Tuple[int, ...], int]] = {_EMPTY_KEY: 0}
        self._product_memo: Dict[Tuple[int, int], int] = {}
        self._rename_tables: Dict[Tuple[Tuple[str, str], ...], RenameTable] = {}

    @classmethod
    def from_buffers(
        cls,
        names_blob: bytes,
        pair_base,
        bounds_base,
        sizes_base,
        publish: bool = False,
    ) -> "TermStore":
        """Wrap the read-only blocks of an arena snapshot (zero-copy).

        ``pair_base`` / ``bounds_base`` / ``sizes_base`` are int64
        ``memoryview``s over an mmap'd snapshot (see
        :func:`repro.serialization.load_arena_snapshot`); each becomes
        the frozen base of an :class:`IntColumn`, so existing monomials
        are read straight from the file while streaming ingest appends
        to a session-private writable tail (copy-on-append).  The
        monomial lookup index -- the only derived structure the
        snapshot cannot carry -- is rebuilt *lazily*, on the first
        operation that interns or looks up a monomial by key; pure
        reads over restored polynomials never pay for it.
        """
        if len(bounds_base) != len(sizes_base) + 1:
            raise ValueError("arena snapshot bounds/sizes blocks disagree")
        if len(bounds_base) < 2 or bounds_base[0] != 0 or bounds_base[1] != 0:
            raise ValueError("arena snapshot must start with the empty monomial")
        store = cls.__new__(cls)
        store.interner = AnnotationInterner.from_snapshot(names_blob, publish=publish)
        store.publish = publish
        store._pair_data = IntColumn(pair_base)
        store._bounds = IntColumn(bounds_base)
        store._mono_sizes = IntColumn(sizes_base)
        store._mono_index = None  # rebuilt lazily on first intern/lookup
        store._product_memo = {}
        store._rename_tables = {}
        return store

    # -- monomial arena ------------------------------------------------------

    def restored(self) -> bool:
        """Whether this store wraps a read-only snapshot base."""
        return isinstance(self._pair_data, IntColumn)

    def frozen_monomials(self) -> int:
        """Monomials served zero-copy from the snapshot (0 if none)."""
        sizes = self._mono_sizes
        return sizes.frozen_length() if isinstance(sizes, IntColumn) else 0

    def _index(self) -> Dict[Tuple[int, ...], int]:
        """The monomial key → id map, rebuilt lazily after a restore."""
        index = self._mono_index
        if index is None:
            data = self._pair_data
            bounds = self._bounds
            index = {}
            for mono in range(len(self._mono_sizes)):
                start, end = bounds[mono], bounds[mono + 1]
                index[tuple(data[i] for i in range(start, end))] = mono
            self._mono_index = index
        return index

    def n_monomials(self) -> int:
        return len(self._mono_sizes)

    def arena_bytes(self) -> int:
        """Bytes held by the arena arrays (pair data, bounds, sizes)."""
        return (
            self._pair_data.itemsize * len(self._pair_data)
            + self._bounds.itemsize * len(self._bounds)
            + self._mono_sizes.itemsize * len(self._mono_sizes)
        )

    def stats(self) -> Dict[str, int]:
        return {
            "interned_annotations": len(self.interner),
            "interner_bytes": self.interner.nbytes(),
            "monomials": self.n_monomials(),
            "arena_bytes": self.arena_bytes(),
            "frozen_monomials": self.frozen_monomials(),
        }

    def intern_monomial(self, flat_key: Tuple[int, ...]) -> int:
        """Intern a flattened ``(ann_id, exp, ann_id, exp, ...)`` run.

        The key must be sorted by annotation id with positive exponents
        and no duplicate ids (the canonical monomial form).
        """
        index = self._mono_index
        if index is None:
            index = self._index()
        mono = index.get(flat_key)
        if mono is None:
            mono = len(self._mono_sizes)
            index[flat_key] = mono
            self._pair_data.extend(flat_key)
            self._bounds.append(len(self._pair_data))
            self._mono_sizes.append(sum(flat_key[1::2]))
            if self.publish and _metrics.ENABLED:
                _IR_ARENA_BYTES.set(self.arena_bytes())
        return mono

    def mono_from_name_pairs(self, pairs: Iterable[Tuple[str, int]]) -> int:
        """Intern a name-space monomial (``(name, exponent)`` pairs)."""
        id_pairs = sorted(
            (self.interner.intern(name), exponent) for name, exponent in pairs
        )
        flat: List[int] = []
        for ann_id, exponent in id_pairs:
            flat.append(ann_id)
            flat.append(exponent)
        return self.intern_monomial(tuple(flat))

    def find_monomial(self, flat_key: Tuple[int, ...]) -> Optional[int]:
        """The id of an already-interned monomial, without allocating."""
        return self._index().get(flat_key)

    def append_delta(
        self,
        names: Iterable[str] = (),
        monomials: Iterable[Iterable[Tuple[str, int]]] = (),
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Grow the arena in place for one streaming provenance delta.

        Batch-interns new annotation ``names`` and name-space
        ``monomials`` (iterables of ``(name, exponent)`` pairs) without
        touching anything already interned: existing ids, bounds and
        pair runs are stable, so polynomials, rename tables and scorer
        masks built against the store stay valid mid-stream.  Returns
        ``(name ids, monomial ids)`` for the appended entries (ids of
        already-known names/monomials are simply reused).

        Raises :class:`RuntimeError` if the append-only invariant is
        ever violated (pre-existing slices moved) -- that would silently
        corrupt every live polynomial, so it is checked, not assumed.
        """
        monos_before = self.n_monomials()
        pairs_before = len(self._pair_data)
        name_ids = tuple(self.interner.intern(name) for name in names)
        mono_ids = tuple(self.mono_from_name_pairs(pairs) for pairs in monomials)
        if (
            self._bounds[monos_before] != pairs_before
            or self.n_monomials() < monos_before
        ):  # pragma: no cover - structural invariant
            raise RuntimeError(
                "append_delta violated the term-store append-only invariant"
            )
        if self.publish and _metrics.ENABLED:
            _IR_INTERNED.set(len(self.interner))
            _IR_ARENA_BYTES.set(self.arena_bytes())
        return name_ids, mono_ids

    def mono_pairs(self, mono: int) -> List[Tuple[int, int]]:
        """The ``(annotation-id, exponent)`` pairs of one monomial."""
        data = self._pair_data
        start, end = self._bounds[mono], self._bounds[mono + 1]
        return [(data[i], data[i + 1]) for i in range(start, end, 2)]

    def mono_name_pairs(self, mono: int) -> Tuple[Tuple[str, int], ...]:
        """Name-space pairs, sorted by name (the legacy ``Monomial``)."""
        name_of = self.interner.name_of
        return tuple(
            sorted((name_of(ann_id), exp) for ann_id, exp in self.mono_pairs(mono))
        )

    def mono_size(self, mono: int) -> int:
        """Total degree (annotation occurrences with repetition)."""
        return self._mono_sizes[mono]

    def mono_annotation_ids(self, mono: int) -> Tuple[int, ...]:
        data = self._pair_data
        return tuple(
            data[i] for i in range(self._bounds[mono], self._bounds[mono + 1], 2)
        )

    def mono_product(self, left: int, right: int) -> int:
        """Monomial product: merge the two sorted pair runs (memoized)."""
        if left == 0:
            return right
        if right == 0:
            return left
        key = (left, right) if left <= right else (right, left)
        product = self._product_memo.get(key)
        if product is None:
            product = self.intern_monomial(
                _active_merge()(self.mono_pairs(left), self.mono_pairs(right))
            )
            self._product_memo[key] = product
        return product

    # -- rename tables -------------------------------------------------------

    def rename_table(self, mapping: Mapping[str, str]) -> RenameTable:
        """Compile ``h`` to an id-remap table (cached per mapping).

        Tables are extended lazily when the interner has grown since
        compilation, so cached tables survive new annotations.
        """
        cache_key = tuple(sorted(mapping.items()))
        table = self._rename_tables.get(cache_key)
        if table is None:
            table = RenameTable(array("q"))
            self._rename_tables[cache_key] = table
        interner = self.interner
        if len(table.table) < len(interner):
            for ann_id in range(len(table.table), len(interner)):
                name = interner.name_of(ann_id)
                table.table.append(interner.intern(mapping.get(name, name)))
        return table

    def rename_mono(self, mono: int, table: RenameTable) -> int:
        """Apply an id-remap to one monomial (memoized per table)."""
        renamed = table._memo.get(mono)
        if renamed is None:
            remap = table.table
            counts: Dict[int, int] = {}
            for ann_id, exponent in self.mono_pairs(mono):
                image = remap[ann_id]
                counts[image] = counts.get(image, 0) + exponent
            flat: List[int] = []
            for ann_id in sorted(counts):
                flat.append(ann_id)
                flat.append(counts[ann_id])
            renamed = self.intern_monomial(tuple(flat))
            table._memo[mono] = renamed
        return renamed

    # -- polynomial kernels --------------------------------------------------

    def poly_from_counts(self, counts: Mapping[int, int]) -> PolyData:
        """Canonical simplification: drop zeros, sort by monomial id."""
        mono_ids = array("q")
        coeffs = array("q")
        for mono in sorted(counts):
            coefficient = counts[mono]
            if coefficient:
                mono_ids.append(mono)
                coeffs.append(coefficient)
        return PolyData(mono_ids, coeffs)

    def poly_zero(self) -> PolyData:
        return PolyData(array("q"), array("q"))

    def poly_add(self, left: PolyData, right: PolyData) -> PolyData:
        """Merge two sorted ``(mono, coeff)`` columns."""
        mono_ids = array("q")
        coeffs = array("q")
        left_ids, left_coeffs = left.mono_ids, left.coeffs
        right_ids, right_coeffs = right.mono_ids, right.coeffs
        i = j = 0
        n_left, n_right = len(left_ids), len(right_ids)
        while i < n_left and j < n_right:
            a, b = left_ids[i], right_ids[j]
            if a == b:
                mono_ids.append(a)
                coeffs.append(left_coeffs[i] + right_coeffs[j])
                i += 1
                j += 1
            elif a < b:
                mono_ids.append(a)
                coeffs.append(left_coeffs[i])
                i += 1
            else:
                mono_ids.append(b)
                coeffs.append(right_coeffs[j])
                j += 1
        for k in range(i, n_left):
            mono_ids.append(left_ids[k])
            coeffs.append(left_coeffs[k])
        for k in range(j, n_right):
            mono_ids.append(right_ids[k])
            coeffs.append(right_coeffs[k])
        return PolyData(mono_ids, coeffs)

    def poly_mul(self, left: PolyData, right: PolyData) -> PolyData:
        counts: Dict[int, int] = {}
        mono_product = self.mono_product
        right_pairs = list(zip(right.mono_ids, right.coeffs))
        for left_mono, left_coeff in zip(left.mono_ids, left.coeffs):
            for right_mono, right_coeff in right_pairs:
                product = mono_product(left_mono, right_mono)
                counts[product] = counts.get(product, 0) + left_coeff * right_coeff
        return self.poly_from_counts(counts)

    def poly_rename(self, poly: PolyData, table: RenameTable) -> PolyData:
        counts: Dict[int, int] = {}
        rename_mono = self.rename_mono
        for mono, coefficient in zip(poly.mono_ids, poly.coeffs):
            renamed = rename_mono(mono, table)
            counts[renamed] = counts.get(renamed, 0) + coefficient
        return self.poly_from_counts(counts)

    def poly_size(self, poly: PolyData) -> int:
        """§3.2 size: annotation occurrences weighted by coefficients."""
        sizes = self._mono_sizes
        return sum(
            coefficient * sizes[mono]
            for mono, coefficient in zip(poly.mono_ids, poly.coeffs)
        )

    def poly_degree(self, poly: PolyData) -> int:
        sizes = self._mono_sizes
        return max((sizes[mono] for mono in poly.mono_ids), default=0)

    def poly_annotation_ids(self, poly: PolyData) -> frozenset:
        ids: set = set()
        for mono in poly.mono_ids:
            ids.update(self.mono_annotation_ids(mono))
        return frozenset(ids)

    def poly_coefficient(self, poly: PolyData, flat_key: Tuple[int, ...]) -> int:
        mono = self._index().get(flat_key)
        if mono is None:
            return 0
        mono_ids = poly.mono_ids
        low, high = 0, len(mono_ids)
        while low < high:
            mid = (low + high) // 2
            if mono_ids[mid] < mono:
                low = mid + 1
            else:
                high = mid
        if low < len(mono_ids) and mono_ids[low] == mono:
            return poly.coeffs[low]
        return 0

    def poly_evaluate_in(self, poly: PolyData, semiring, valuation: Mapping[str, object]):
        """The unique semiring-hom extension of ``valuation``."""
        name_of = self.interner.name_of
        total = semiring.zero
        for mono, coefficient in zip(poly.mono_ids, poly.coeffs):
            value = semiring.one
            for ann_id, exponent in self.mono_pairs(mono):
                name = name_of(ann_id)
                try:
                    base = valuation[name]
                except KeyError:
                    raise KeyError(
                        f"valuation missing annotation {name!r}"
                    ) from None
                for _ in range(exponent):
                    value = semiring.times(value, base)
            for _ in range(coefficient):
                total = semiring.plus(total, value)
        return total


def _active_merge():
    """The active kernel backend's sorted-merge monomial product.

    Imported lazily: ``repro.core.kernels`` pulls in ``repro.core``,
    which must not execute while this module is still initializing.
    Falls back to the inline merge if the kernel tier is unavailable
    (both produce identical tuples -- the kernel reference backend *is*
    this function, extracted).
    """
    try:
        from ..core import kernels
    except Exception:
        return _merge_pair_runs
    return kernels.get_backend().merge_monomials


def _merge_pair_runs(
    first: Sequence[Tuple[int, int]], second: Sequence[Tuple[int, int]]
) -> Tuple[int, ...]:
    """Merge two ann-id-sorted pair runs, summing shared exponents."""
    flat: List[int] = []
    i = j = 0
    n_first, n_second = len(first), len(second)
    while i < n_first and j < n_second:
        ann_a, exp_a = first[i]
        ann_b, exp_b = second[j]
        if ann_a == ann_b:
            flat.append(ann_a)
            flat.append(exp_a + exp_b)
            i += 1
            j += 1
        elif ann_a < ann_b:
            flat.append(ann_a)
            flat.append(exp_a)
            i += 1
        else:
            flat.append(ann_b)
            flat.append(exp_b)
            j += 1
    for ann_id, exponent in first[i:]:
        flat.append(ann_id)
        flat.append(exponent)
    for ann_id, exponent in second[j:]:
        flat.append(ann_id)
        flat.append(exponent)
    return tuple(flat)


#: The process-wide store backing :class:`~repro.provenance.polynomial
#: .Polynomial` in IR mode (sessions may hold their own stores).
GLOBAL_STORE = TermStore(publish=True)


def store_is_pristine(store: Optional[TermStore] = None) -> bool:
    """Whether the (global) store has interned nothing beyond mono 0."""
    target = store if store is not None else GLOBAL_STORE
    return target.n_monomials() == 1 and len(target.interner) == 0


def install_store(store: TermStore) -> TermStore:
    """Swap the process-wide term store; returns the previous one.

    The shared-nothing serving tier uses this in freshly forked worker
    processes: a restored (mmap-backed) arena becomes the store every
    new :class:`~repro.provenance.polynomial.Polynomial` interns into,
    so a rehydrated session's polynomials resolve against the snapshot
    without copying it.  Polynomials built against the previous store
    stay valid -- they hold their own store reference, and cross-store
    arithmetic already degrades through the name-space boundary.
    """
    global GLOBAL_STORE
    previous = GLOBAL_STORE
    store.publish = previous.publish or store.publish
    if store.publish:
        store.interner.publish = True
    GLOBAL_STORE = store
    return previous


def publish_metrics(
    interner: Optional[AnnotationInterner] = None,
    store: Optional[TermStore] = None,
) -> None:
    """Export interner/arena gauges (``/metrics``) for the given or
    global store."""
    target = store if store is not None else GLOBAL_STORE
    counted = interner if interner is not None else target.interner
    _IR_INTERNED.set(len(counted))
    _IR_ARENA_BYTES.set(target.arena_bytes())
