"""Annotations and the universe they live in.

A provenance *annotation* is an abstract variable identifying a basic
unit of data -- a user, a movie, a Wikipedia page, a DDP database or
cost variable.  The summarization machinery needs more than the bare
name: semantic constraints (Chapter 3) look at the *domain* an
annotation belongs to (only same-domain annotations may be merged), at
its *attributes* (merged users must share gender, age range, ...), and
at its optional *taxonomy concept* (merged pages must share a WordNet
ancestor).

Summary annotations produced by a mapping ``h`` remember the set of
original annotations they stand for (:attr:`Annotation.members`); this
is what the combiner ``φ`` consumes when it lifts a valuation from
``Ann`` to ``Ann'``.

:class:`AnnotationUniverse` is the registry of all annotations of one
provenance instance.  It hands out fresh summary names and answers the
attribute/domain queries the constraint checkers ask.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Annotation:
    """One provenance annotation.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"UID278"`` or ``"Gender=F#3"``.
    domain:
        The input table / variable kind the annotation comes from,
        e.g. ``"user"``, ``"movie"``, ``"page"``, ``"db"``, ``"cost"``.
        Semantic constraints never merge across domains.
    attributes:
        Attribute name → value pairs from the underlying tuple
        (gender, age range, occupation, ...).  For a summary
        annotation these are the attributes *shared* by all members.
    concept:
        Optional taxonomy concept the annotated object is an instance
        of (Wikipedia pages carry their WordNet concept here).
    members:
        For summary annotations, the names of the *original*
        annotations summarized; empty for base annotations.
    """

    name: str
    domain: str
    attributes: Mapping[str, object] = field(default_factory=dict)
    concept: Optional[str] = None
    members: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        # Freeze the attribute mapping so Annotation stays hashable and
        # safely shareable between expressions.
        object.__setattr__(self, "attributes", _FrozenAttrs(self.attributes))

    @property
    def is_summary(self) -> bool:
        """Whether this annotation summarizes others."""
        return bool(self.members)

    def base_members(self) -> FrozenSet[str]:
        """Names of the base annotations this one stands for.

        A base annotation stands for itself.
        """
        return self.members if self.members else frozenset((self.name,))

    def shared_attributes(self, other: "Annotation") -> Dict[str, object]:
        """Attribute name → value pairs on which both annotations agree."""
        return {
            key: value
            for key, value in self.attributes.items()
            if key in other.attributes and other.attributes[key] == value
        }

    def __str__(self) -> str:
        return self.name


class _FrozenAttrs(Mapping[str, object]):
    """Immutable, hashable view over an attribute mapping."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, object]):
        self._data = dict(data)
        self._hash: Optional[int] = None

    def __getitem__(self, key: str) -> object:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._data.items(), key=lambda kv: kv[0])))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_FrozenAttrs({self._data!r})"


class AnnotationUniverse:
    """Registry of every annotation of one provenance instance.

    The universe starts from the base annotations produced by a dataset
    builder and grows as the summarization algorithm mints summary
    annotations.  Names are unique; registering two different
    annotations under one name is an error (it would silently conflate
    provenance tokens).
    """

    def __init__(self, annotations: Iterable[Annotation] = ()):
        self._by_name: Dict[str, Annotation] = {}
        self._summary_counter = 0
        for annotation in annotations:
            self.register(annotation)

    # -- registry ---------------------------------------------------------

    def register(self, annotation: Annotation) -> Annotation:
        """Add ``annotation``; idempotent for identical re-registration."""
        existing = self._by_name.get(annotation.name)
        if existing is not None:
            if existing != annotation:
                raise ValueError(
                    f"annotation name collision: {annotation.name!r} already "
                    f"registered with different content"
                )
            return existing
        self._by_name[annotation.name] = annotation
        return annotation

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Annotation:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown annotation {name!r}") from None

    def get(self, name: str) -> Optional[Annotation]:
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)

    def in_domain(self, domain: str) -> Tuple[Annotation, ...]:
        """All annotations of one domain, in registration order."""
        return tuple(a for a in self._by_name.values() if a.domain == domain)

    # -- summary annotations ----------------------------------------------

    @property
    def summary_counter(self) -> int:
        """How many counter-named summaries have been minted.

        Exposed (with the setter) so session snapshots can round-trip
        the minting state and differential harnesses can align a fresh
        reference universe with a long-lived session one -- summary
        *names* feed candidate ordering and tie-breaks, so bit-identical
        comparisons need bit-identical names.
        """
        return self._summary_counter

    @summary_counter.setter
    def summary_counter(self, value: int) -> None:
        self._summary_counter = int(value)

    def _summary_parts(
        self,
        parts: Iterable[Annotation],
        label: Optional[str],
    ) -> Tuple[List[Annotation], FrozenSet[str], Dict[str, object], str]:
        parts = list(parts)
        if len(parts) < 2:
            raise ValueError("a summary annotation must merge at least 2 parts")
        domains = {part.domain for part in parts}
        if len(domains) != 1:
            raise ValueError(
                f"cannot summarize annotations from different domains: {sorted(domains)}"
            )
        members: FrozenSet[str] = frozenset().union(
            *(part.base_members() for part in parts)
        )
        shared = dict(parts[0].attributes)
        for part in parts[1:]:
            shared = {
                key: value
                for key, value in shared.items()
                if key in part.attributes and part.attributes[key] == value
            }
        base_label = label if label else "+".join(sorted(p.name for p in parts)[:2])
        return parts, members, shared, base_label

    def new_summary(
        self,
        parts: Iterable[Annotation],
        label: Optional[str] = None,
        concept: Optional[str] = None,
    ) -> Annotation:
        """Mint and register a summary annotation for ``parts``.

        The new annotation's members are the union of the parts' base
        members and its attributes the intersection of the parts'
        attributes, so constraint checks keep working on summaries.
        ``label`` seeds the name (e.g. the shared attribute
        ``"Gender=F"``); a counter suffix keeps names unique.
        """
        parts, members, shared, base_label = self._summary_parts(parts, label)
        self._summary_counter += 1
        name = f"{base_label}#{self._summary_counter}"
        summary = Annotation(
            name=name,
            domain=parts[0].domain,
            attributes=shared,
            concept=concept,
            members=members,
        )
        return self.register(summary)

    def equivalence_summary(
        self,
        parts: Iterable[Annotation],
        label: Optional[str] = None,
        concept: Optional[str] = None,
    ) -> Annotation:
        """A *content-addressed* summary annotation for ``parts``.

        Unlike :meth:`new_summary`, the name is derived from the merged
        content (domain, base members, label, concept), not a counter:
        minting the same group twice -- in particular re-running
        ``GroupEquivalent`` after a streaming delta that left the class
        intact -- resolves to the *same* annotation.  That stability is
        what lets candidate pools and scorer measurements carry across
        ingests, and what keeps a repaired run's names identical to a
        from-scratch run's.  The ``~`` separator keeps the namespace
        disjoint from counter-minted ``label#k`` names; in the
        (astronomically unlikely) event of a digest collision with
        different content we fall back to counter minting.
        """
        parts, members, shared, base_label = self._summary_parts(parts, label)
        payload = "\x1f".join(
            (parts[0].domain, base_label, concept or "", *sorted(members))
        )
        digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=5).hexdigest()
        name = f"{base_label}~{digest}"
        summary = Annotation(
            name=name,
            domain=parts[0].domain,
            attributes=shared,
            concept=concept,
            members=members,
        )
        try:
            return self.register(summary)
        except ValueError:
            return self.new_summary(parts, label=label, concept=concept)

    # -- attribute queries --------------------------------------------------

    def attribute_values(self, attribute: str) -> Tuple[object, ...]:
        """Distinct values of ``attribute`` across base annotations."""
        seen = []
        for annotation in self._by_name.values():
            if annotation.is_summary:
                continue
            if attribute in annotation.attributes:
                value = annotation.attributes[attribute]
                if value not in seen:
                    seen.append(value)
        return tuple(seen)

    def with_attribute(self, attribute: str, value: object) -> Tuple[Annotation, ...]:
        """Base annotations whose ``attribute`` equals ``value``."""
        return tuple(
            annotation
            for annotation in self._by_name.values()
            if not annotation.is_summary
            and annotation.attributes.get(attribute) == value
        )

    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names seen on base annotations, sorted."""
        names: set = set()
        for annotation in self._by_name.values():
            if not annotation.is_summary:
                names.update(annotation.attributes)
        return tuple(sorted(names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AnnotationUniverse of {len(self)} annotations>"
