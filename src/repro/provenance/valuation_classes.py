"""Valuation classes ``V_Ann`` (§3.2, Table 5.1).

The distance between an expression and its summary is an average over
a *class* of truth valuations.  The thesis evaluates two classes for
every dataset:

* **Cancel Single Annotation** -- one valuation per annotation,
  assigning it false and everything else true
  (:class:`CancelSingleAnnotation`).
* **Cancel Single Attribute** -- one valuation per attribute value,
  cancelling every annotation carrying it, e.g. all male users
  (:class:`CancelSingleAttribute`).

For the Wikipedia dataset only valuations *consistent with the
taxonomy* are kept: a valuation must not treat a WordNet concept as
false while keeping one of its descendants true
(:class:`TaxonomyConsistent`).

Classes are finite, sized, iterable and samplable, so the distance
machinery can either enumerate them exactly or sample per
Proposition 4.1.2.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .annotations import AnnotationUniverse
from .valuation import Valuation, cancel


class ValuationClass(ABC):
    """A finite set of weighted truth valuations over base annotations."""

    #: Table 5.1 name of the class.
    name: str = "valuation class"

    @abstractmethod
    def __len__(self) -> int:
        """Number of valuations in the class."""

    @abstractmethod
    def __iter__(self) -> Iterator[Valuation]:
        """Iterate over all valuations (deterministic order)."""

    def sample(self, rng: random.Random) -> Valuation:
        """Draw one valuation uniformly (weights are not sampling odds;
        they enter VAL-FUNC per Definition 3.2.2)."""
        index = rng.randrange(len(self))
        for position, valuation in enumerate(self):
            if position == index:
                return valuation
        raise RuntimeError("valuation class changed size during sampling")

    def total_weight(self) -> float:
        return sum(valuation.weight for valuation in self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name}) of {len(self)} valuations>"


class ExplicitValuations(ValuationClass):
    """A class given extensionally as a list of valuations."""

    name = "Explicit"

    def __init__(self, valuations: Iterable[Valuation]):
        self._valuations: Tuple[Valuation, ...] = tuple(valuations)
        if not self._valuations:
            raise ValueError("a valuation class must contain at least one valuation")

    def __len__(self) -> int:
        return len(self._valuations)

    def __iter__(self) -> Iterator[Valuation]:
        return iter(self._valuations)

    def sample(self, rng: random.Random) -> Valuation:
        return rng.choice(self._valuations)


class CancelSingleAnnotation(ExplicitValuations):
    """One valuation per base annotation: cancel it, keep the rest.

    ``domains`` restricts which annotations get their own valuation
    (e.g. the MovieLens experiments cancel user annotations, not
    years).  With no restriction every base annotation is used.
    """

    name = "Cancel Single Annotation"

    def __init__(
        self,
        universe: AnnotationUniverse,
        domains: Optional[Sequence[str]] = None,
    ):
        valuations = []
        for annotation in universe:
            if annotation.is_summary:
                continue
            if domains is not None and annotation.domain not in domains:
                continue
            valuations.append(
                cancel((annotation.name,), label=f"cancel {annotation.name}")
            )
        super().__init__(valuations)


class CancelSingleAttribute(ExplicitValuations):
    """One valuation per attribute value: cancel all carriers.

    For every attribute listed (default: all attributes present on
    base annotations) and every value it takes, the class contains the
    valuation cancelling exactly the base annotations carrying that
    value -- e.g. *cancel all Male users*.
    """

    name = "Cancel Single Attribute"

    def __init__(
        self,
        universe: AnnotationUniverse,
        attributes: Optional[Sequence[str]] = None,
        domains: Optional[Sequence[str]] = None,
    ):
        if attributes is None:
            attributes = universe.attribute_names()
        valuations = []
        for attribute in attributes:
            for value in universe.attribute_values(attribute):
                names = [
                    annotation.name
                    for annotation in universe.with_attribute(attribute, value)
                    if domains is None or annotation.domain in domains
                ]
                if names:
                    valuations.append(
                        cancel(names, label=f"cancel {attribute}={value}")
                    )
        super().__init__(valuations)


class CancelSubsets(ExplicitValuations):
    """All valuations cancelling between 1 and ``max_cancelled``
    annotations of the given domains.

    Generalizes Cancel-Single-Annotation ("we assume that there is a
    single spammer", Example 3.2.1) to scenarios with up to ``k``
    simultaneous spammers.  The class has ``Σ_{i=1..k} C(n, i)``
    members, so keep ``max_cancelled`` small or let the distance
    machinery sample it.
    """

    name = "Cancel Subsets"

    def __init__(
        self,
        universe: AnnotationUniverse,
        max_cancelled: int = 2,
        domains: Optional[Sequence[str]] = None,
    ):
        from itertools import combinations

        if max_cancelled < 1:
            raise ValueError("max_cancelled must be at least 1")
        names = [
            annotation.name
            for annotation in universe
            if not annotation.is_summary
            and (domains is None or annotation.domain in domains)
        ]
        valuations = []
        for size in range(1, max_cancelled + 1):
            for subset in combinations(names, size):
                valuations.append(cancel(subset))
        super().__init__(valuations)
        self.name = f"Cancel Subsets (≤{max_cancelled})"


def bernoulli_weighted(
    valuations: ValuationClass, cancel_probability: float
) -> ExplicitValuations:
    """Reweight a class by the joint probability of its cancellations.

    §3.2 names "the joint probability of the truth values" as a natural
    ``w(v)``: if each annotation is independently cancelled with
    probability ``q``, a valuation cancelling ``c`` annotations gets
    weight ``q^c`` (the surviving annotations' factor is common to the
    comparison and omitted).
    """
    if not 0.0 < cancel_probability <= 1.0:
        raise ValueError("cancel_probability must be in (0, 1]")
    reweighted = []
    for valuation in valuations:
        cancelled = len(valuation.false_set())
        reweighted.append(
            Valuation(
                valuation.assignment,
                default=valuation.default,
                weight=valuation.weight * cancel_probability ** cancelled,
                label=valuation.label,
            )
        )
    return ExplicitValuations(reweighted)


class TaxonomyConsistent(ValuationClass):
    """Filter a class down to its taxonomy-consistent valuations.

    A valuation is *inconsistent* (§5.2) when it treats a taxonomy
    concept ``A`` as false while treating a concept ``B ⊑ A`` as true.
    Concept-level truth is read off the annotations: concept ``C`` is
    false under ``v`` iff ``C`` has carriers and ``v`` cancels every
    base annotation whose concept set contains ``C``.
    """

    name = "Taxonomy Consistent"

    def __init__(
        self,
        inner: ValuationClass,
        concepts_of: Mapping[str, Sequence[str]],
        parent_of: Mapping[str, Optional[str]],
    ):
        self._inner = inner
        self._concepts_of = {
            name: tuple(concepts) for name, concepts in concepts_of.items()
        }
        self._parent_of = dict(parent_of)
        carriers: Dict[str, List[str]] = {}
        for name, concepts in self._concepts_of.items():
            for concept in concepts:
                carriers.setdefault(concept, []).append(name)
        self._carriers = {
            concept: frozenset(names) for concept, names in carriers.items()
        }
        self._kept: Tuple[Valuation, ...] = tuple(
            valuation for valuation in inner if self.is_consistent(valuation)
        )
        if not self._kept:
            raise ValueError("no taxonomy-consistent valuations remain")
        self.name = f"{inner.name} (taxonomy consistent)"

    def is_consistent(self, valuation: Valuation) -> bool:
        cancelled = valuation.false_set()
        false_concepts = {
            concept
            for concept, names in self._carriers.items()
            if names and names <= cancelled
        }
        for concept, names in self._carriers.items():
            if concept in false_concepts:
                continue
            # The concept is true; all its ancestors must be true too.
            parent = self._parent_of.get(concept)
            while parent is not None:
                if parent in false_concepts:
                    return False
                parent = self._parent_of.get(parent)
        return True

    def __len__(self) -> int:
        return len(self._kept)

    def __iter__(self) -> Iterator[Valuation]:
        return iter(self._kept)

    def sample(self, rng: random.Random) -> Valuation:
        return rng.choice(self._kept)
