"""Provenance of Data-Dependent Processes (DDPs) -- Example 5.2.2.

A DDP models an application whose control flow is driven by a finite
state machine and by the state of an underlying database.  Its
provenance is a sum over *executions*, each a product of *transitions*:

* a user-dependent transition ``⟨c_k, 1⟩``, where ``c_k`` is a cost
  variable standing for the user effort of the step;
* a database-dependent transition ``⟨0, [d_i · d_j] ≠ 0⟩`` (or ``= 0``),
  whose guard tests a query over database variables.

Evaluation uses the tropical semiring ``(N ∪ {∞}, min, +, ∞, 0)``:
an execution is *feasible* when all its guards hold, its cost is the
sum of the costs of its user transitions (each multiplied by the 0/1
valuation of its cost variable), and the value of the whole expression
is the minimum cost over feasible executions, paired with a
feasibility flag -- ``⟨C, True⟩`` or ``⟨∞, False⟩``.

:class:`DDPExpression` implements the same summarizable-expression
protocol as :class:`~repro.provenance.tensor_sum.TensorSum`
(``annotation_names`` / ``size`` / ``apply_mapping`` / evaluation), so
Algorithm 1 runs on it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .valuation import Valuation


@dataclass(frozen=True)
class CostTransition:
    """A user-dependent transition ``⟨var, 1⟩`` with effort ``cost``.

    The valuation assigns the cost variable a 0/1 multiplier; the
    transition contributes ``multiplier * cost`` to the execution's
    effort.
    """

    var: str
    cost: float

    def rename(self, mapping: Mapping[str, str]) -> "CostTransition":
        return CostTransition(mapping.get(self.var, self.var), self.cost)

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"⟨{self.var}:{self.cost:g}, 1⟩"


@dataclass(frozen=True)
class DBTransition:
    """A database-dependent transition ``⟨0, [d_i · d_j] op 0⟩``.

    ``op`` is ``"!="`` (the query must return a tuple: all variables
    true) or ``"=="`` (the query must be empty: at least one variable
    false).
    """

    vars: Tuple[str, ...]
    op: str = "!="

    def __post_init__(self) -> None:
        if self.op not in ("!=", "=="):
            raise ValueError(f"DDP guard operator must be '!=' or '==', got {self.op!r}")
        object.__setattr__(self, "vars", tuple(self.vars))

    def satisfied(self, truth_of) -> bool:
        product_nonzero = all(truth_of(var) for var in self.vars)
        return product_nonzero if self.op == "!=" else not product_nonzero

    def rename(self, mapping: Mapping[str, str]) -> "DBTransition":
        return DBTransition(
            tuple(sorted(mapping.get(var, var) for var in self.vars)), self.op
        )

    def size(self) -> int:
        return len(self.vars)

    def __str__(self) -> str:
        inner = " · ".join(self.vars)
        return f"⟨0, [{inner}] {self.op} 0⟩"


Transition = object  # CostTransition | DBTransition (kept loose for 3.10)


@dataclass(frozen=True)
class Execution:
    """One workflow execution: a product of transitions."""

    transitions: Tuple[Transition, ...]

    def __init__(self, transitions: Iterable[Transition]):
        object.__setattr__(self, "transitions", tuple(transitions))

    def cost_transitions(self) -> Tuple[CostTransition, ...]:
        return tuple(t for t in self.transitions if isinstance(t, CostTransition))

    def db_transitions(self) -> Tuple[DBTransition, ...]:
        return tuple(t for t in self.transitions if isinstance(t, DBTransition))

    def annotation_names(self) -> FrozenSet[str]:
        names: set = set()
        for transition in self.transitions:
            if isinstance(transition, CostTransition):
                names.add(transition.var)
            else:
                names.update(transition.vars)
        return frozenset(names)

    def size(self) -> int:
        return sum(t.size() for t in self.transitions)

    def rename(self, mapping: Mapping[str, str]) -> "Execution":
        return Execution(t.rename(mapping) for t in self.transitions)

    def normalized(self) -> Tuple:
        """Commutativity-normal form used to detect equal executions."""
        costs = tuple(sorted((t.var, t.cost) for t in self.cost_transitions()))
        guards = tuple(sorted((t.vars, t.op) for t in self.db_transitions()))
        return (costs, guards)

    def __str__(self) -> str:
        return " · ".join(str(t) for t in self.transitions)


@dataclass(frozen=True)
class DDPResult:
    """Value of a DDP provenance under a valuation: ``⟨cost, feasible⟩``."""

    cost: float
    feasible: bool

    def __str__(self) -> str:
        cost = "∞" if math.isinf(self.cost) else f"{self.cost:g}"
        return f"⟨{cost}, {self.feasible}⟩"


class DDPExpression:
    """A sum of executions over the tropical cost semiring."""

    __slots__ = ("executions", "_annotation_names", "_size")

    def __init__(self, executions: Iterable[Execution]):
        self.executions: Tuple[Execution, ...] = self._dedup(executions)
        self._annotation_names: Optional[FrozenSet[str]] = None
        self._size: Optional[int] = None

    @staticmethod
    def _dedup(executions: Iterable[Execution]) -> Tuple[Execution, ...]:
        """Drop duplicate executions (idempotence of the sum of runs).

        Two executions are equal up to commutativity of the product;
        equal executions denote the same run, so keeping one preserves
        both the min-cost evaluation and the feasibility flag.
        """
        seen: Dict[Tuple, Execution] = {}
        order: List[Tuple] = []
        for execution in executions:
            key = execution.normalized()
            if key not in seen:
                seen[key] = execution
                order.append(key)
        return tuple(seen[key] for key in order)

    # -- structural queries ---------------------------------------------------

    def annotation_names(self) -> FrozenSet[str]:
        if self._annotation_names is None:
            names: set = set()
            for execution in self.executions:
                names |= execution.annotation_names()
            self._annotation_names = frozenset(names)
        return self._annotation_names

    def size(self) -> int:
        """Number of variable occurrences across all executions."""
        if self._size is None:
            self._size = sum(execution.size() for execution in self.executions)
        return self._size

    def __len__(self) -> int:
        return len(self.executions)

    # -- homomorphism application ----------------------------------------------

    def apply_mapping(self, mapping: Mapping[str, str]) -> "DDPExpression":
        return DDPExpression(execution.rename(mapping) for execution in self.executions)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, false_annotations: AbstractSet[str]) -> DDPResult:
        """Evaluate with the given variables set to 0/false, rest 1/true."""
        return self._evaluate(lambda var: var not in false_annotations,
                              lambda var: 0.0 if var in false_annotations else 1.0)

    def evaluate_valuation(self, valuation: Valuation) -> DDPResult:
        """Evaluate under a general (possibly fractional-cost) valuation."""
        return self._evaluate(valuation.truth, valuation.value)

    def _evaluate(self, truth_of, multiplier_of) -> DDPResult:
        best = math.inf
        feasible = False
        for execution in self.executions:
            if not all(t.satisfied(truth_of) for t in execution.db_transitions()):
                continue
            cost = sum(
                t.cost * multiplier_of(t.var) for t in execution.cost_transitions()
            )
            feasible = True
            best = min(best, cost)
        return DDPResult(best if feasible else math.inf, feasible)

    def evaluate_scan(self, truth: Mapping[str, bool]) -> DDPResult:
        """Mapping-driven evaluation (usage-time experiment path)."""
        return self._evaluate(
            lambda var: truth.get(var, True),
            lambda var: 1.0 if truth.get(var, True) else 0.0,
        )

    def __str__(self) -> str:
        return " + ".join(str(execution) for execution in self.executions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DDPExpression of {len(self.executions)} executions, size {self.size()}>"
