"""Workflow execution engine (§2.1).

A *run* applies the specification's modules in an order consistent
with the dataflow edges, threading each module's output relation to
its successors and giving every module access to the shared database.
The engine records all module outputs, so provenance-bearing
intermediate results stay inspectable.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..db.relation import Database, Relation
from .spec import WorkflowSpec


class WorkflowRun:
    """The result of executing a workflow: output relation per module."""

    def __init__(self, outputs: Dict[str, Optional[Relation]]):
        self._outputs = outputs

    def __getitem__(self, module: str) -> Relation:
        output = self._outputs.get(module)
        if output is None:
            raise KeyError(f"module {module!r} produced no output")
        return output

    def output_names(self):
        return tuple(sorted(name for name, out in self._outputs.items() if out is not None))


class WorkflowEngine:
    """Executes a :class:`~repro.workflow.spec.WorkflowSpec`."""

    def __init__(self, spec: WorkflowSpec, database: Database):
        self.spec = spec
        self.database = database

    def run(self) -> WorkflowRun:
        """One workflow execution over the current database state."""
        outputs: Dict[str, Optional[Relation]] = {}
        for name in self.spec.topological_order():
            module = next(m for m in self.spec.modules() if m.name == name)
            inputs = {
                source: outputs.get(source)
                for source in self.spec.predecessors(name)
            }
            outputs[name] = module.fn(self.database, inputs)
        return WorkflowRun(outputs)
