"""Workflow model of §2.1: specifications, engine, Example 2.1.1 modules."""

from .engine import WorkflowEngine, WorkflowRun
from .modules import Review, build_movie_workflow, run_movie_workflow
from .spec import Module, WorkflowSpec

__all__ = [
    "Module",
    "Review",
    "WorkflowEngine",
    "WorkflowRun",
    "WorkflowSpec",
    "build_movie_workflow",
    "run_movie_workflow",
]
