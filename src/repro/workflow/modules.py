"""The movie-rating workflow of Example 2.1.1 (Figure 2.1).

Users rate movies on several reviewing platforms.  Each *reviewing
module* crawls one platform, updates per-user statistics in the Stats
table (NumRate), and outputs a *sanitized* review stream: only reviews
by users of the module's role (audience / critic) who are "active" --
who submitted more than ``threshold`` reviews.  The sanitization is
recorded in provenance as the inequality token
``[S_i · U_i ⊗ NumRate > threshold]`` multiplying the user annotation,
exactly the shape of Example 2.2.1.  The *aggregator* unions the
sanitized streams and computes per-movie tensor-paired aggregates.

:func:`build_movie_workflow` wires the whole Figure 2.1 graph; running
it through :class:`~repro.workflow.engine.WorkflowEngine` yields a
Movies relation whose ``agg`` column holds the provenance-aware values
the thesis summarizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..db.query import aggregate, guard, join, select, union
from ..db.relation import AnnotatedTuple, Database, Relation
from ..provenance.expressions import Comparison, Var
from ..provenance.monoids import AggregationMonoid, MAX
from .engine import WorkflowEngine, WorkflowRun
from .spec import WorkflowSpec


@dataclass(frozen=True)
class Review:
    """One raw review arriving at a reviewing platform."""

    user_id: str
    movie: str
    rating: float


def _source_module(reviews: Sequence[Review], source: str):
    """A module emitting one platform's raw reviews.

    Each review tuple is annotated with its reviewer's user annotation
    ``U_<id>`` -- the basic unit of data of the application.
    """

    def fn(database: Database, inputs) -> Relation:
        relation = Relation(f"reviews_{source}", ("user_id", "movie", "rating"))
        for review in reviews:
            # Raw reviews are simply present; the user annotation enters
            # through the join with the Users table, so the sanitized
            # provenance is exactly Example 2.2.1's ``U_i · [guard]``.
            relation.add(
                {
                    "user_id": review.user_id,
                    "movie": review.movie,
                    "rating": review.rating,
                }
            )
        return relation

    return fn


def _reviewing_module(role: str, threshold: int):
    """Sanitizes a platform's reviews (Example 2.1.1's logic).

    Updates Stats (NumRate per user, annotated ``S_<id>``), keeps only
    reviews by users of ``role``, and multiplies every kept review's
    annotation with the activity guard
    ``[S · U ⊗ NumRate > threshold]``.
    """

    def fn(database: Database, inputs: Mapping[str, Optional[Relation]]) -> Relation:
        (reviews,) = [value for value in inputs.values() if value is not None]
        stats = database["Stats"]
        counted: Dict[str, int] = {}
        for annotated in reviews:
            user = str(annotated["user_id"])
            counted[user] = counted.get(user, 0) + 1
        existing = {str(t["user_id"]): t for t in stats}
        for user, count in counted.items():
            if user in existing:
                previous = existing[user]
                previous.values["num_rate"] = previous.values["num_rate"] + count
            else:
                stats.add(
                    {"user_id": user, "num_rate": count},
                    annotation=f"S_{user}",
                )

        users = database["Users"]
        of_role = select(users, lambda values: values["role"] == role)
        with_user = join(reviews, of_role, on=("user_id",))
        num_rate = {str(t["user_id"]): int(t["num_rate"]) for t in stats}

        def activity_guard(values) -> Comparison:
            # [S_i · U_i ⊗ NumRate > threshold]: the Stats annotation
            # participates only inside the inequality token (§2.2).
            user = str(values["user_id"])
            return Comparison(
                Var(f"S_{user}") * Var(f"U_{user}"),
                float(num_rate.get(user, 0)),
                ">",
                float(threshold),
            )

        guarded = guard(with_user, activity_guard, name=f"sanitized_{role}")
        return Relation(
            f"sanitized_{role}",
            ("user_id", "movie", "rating"),
            (
                AnnotatedTuple(
                    {
                        "user_id": t["user_id"],
                        "movie": t["movie"],
                        "rating": t["rating"],
                    },
                    t.prov,
                )
                for t in guarded
            ),
        )

    return fn


def _aggregator_module(monoid: AggregationMonoid):
    """Combines sanitized streams and aggregates ratings per movie."""

    def fn(database: Database, inputs: Mapping[str, Optional[Relation]]) -> Relation:
        streams = [value for value in inputs.values() if value is not None]
        if not streams:
            raise ValueError("aggregator received no sanitized reviews")
        merged = streams[0]
        for stream in streams[1:]:
            merged = union(merged, stream)
        movies = aggregate(
            merged, group_by=("movie",), value_column="rating",
            monoid=monoid, name="Movies",
        )
        database.put(Relation("Movies", movies.columns, iter(movies)))
        return movies

    return fn


def build_movie_workflow(
    users: Mapping[str, Mapping[str, object]],
    reviews_by_source: Mapping[str, Sequence[Review]],
    threshold: int = 2,
    monoid: AggregationMonoid = MAX,
) -> Tuple[WorkflowSpec, Database]:
    """Wire the Figure 2.1 workflow.

    Parameters
    ----------
    users:
        user id → attribute mapping; must include a ``"role"``
        attribute naming the reviewing module that accepts the user
        (``"audience"`` / ``"critic"``).
    reviews_by_source:
        platform name → raw reviews collected there.  One source
        module and one reviewing module are created per platform,
        alternating the audience/critic roles in declaration order.
    """
    users_relation = Relation("Users", ("user_id", "role"))
    roles = sorted({str(attributes.get("role", "audience")) for attributes in users.values()})
    for user_id, attributes in users.items():
        users_relation.add(
            {"user_id": user_id, "role": attributes.get("role", "audience")},
            annotation=f"U_{user_id}",
        )
    database = Database(
        [users_relation, Relation("Stats", ("user_id", "num_rate"))]
    )

    spec = WorkflowSpec()
    spec.add_module("aggregator", _aggregator_module(monoid), "per-movie aggregation")
    for index, (source, reviews) in enumerate(reviews_by_source.items()):
        role = roles[index % len(roles)] if roles else "audience"
        source_name = f"source_{source}"
        reviewer_name = f"reviewing_{source}"
        spec.add_module(source_name, _source_module(reviews, source), f"crawl {source}")
        spec.add_module(
            reviewer_name,
            _reviewing_module(role, threshold),
            f"sanitize {source} ({role})",
        )
        spec.add_edge(source_name, reviewer_name)
        spec.add_edge(reviewer_name, "aggregator")
    return spec, database


def run_movie_workflow(
    users: Mapping[str, Mapping[str, object]],
    reviews_by_source: Mapping[str, Sequence[Review]],
    threshold: int = 2,
    monoid: AggregationMonoid = MAX,
) -> Tuple[WorkflowRun, Database]:
    """Build and execute the workflow; returns the run and final state."""
    spec, database = build_movie_workflow(users, reviews_by_source, threshold, monoid)
    run = WorkflowEngine(spec, database).run()
    return run, database
