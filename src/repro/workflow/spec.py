"""Workflow specifications (§2.1).

A workflow specification is an FSM-like graph: *modules* are processing
steps, edges indicate dataflow from one module's output port to
another's input port, and the whole thing operates in the context of a
global persistent state -- the underlying
:class:`~repro.db.relation.Database`.  A workflow execution ("run") is
an application of the modules ordered consistently with the edges.

Modules are atomic: a module is a Python callable
``fn(database, inputs) -> Relation | None`` where ``inputs`` maps each
predecessor module's name to its output relation.  Modules may also
update the database (Example 2.1.1's reviewing modules update the
Stats table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..db.relation import Database, Relation

ModuleFn = Callable[[Database, Mapping[str, Optional[Relation]]], Optional[Relation]]


@dataclass(frozen=True)
class Module:
    """One processing step of the workflow."""

    name: str
    fn: ModuleFn
    description: str = ""


class WorkflowSpec:
    """A DAG of modules with dataflow edges."""

    def __init__(self) -> None:
        self._modules: Dict[str, Module] = {}
        self._edges: List[Tuple[str, str]] = []

    def add_module(
        self, name: str, fn: ModuleFn, description: str = ""
    ) -> Module:
        if name in self._modules:
            raise ValueError(f"module {name!r} already exists")
        module = Module(name, fn, description)
        self._modules[name] = module
        return module

    def add_edge(self, source: str, target: str) -> None:
        """Dataflow: ``source``'s output feeds ``target``'s input."""
        for endpoint in (source, target):
            if endpoint not in self._modules:
                raise KeyError(f"unknown module {endpoint!r}")
        if source == target:
            raise ValueError("self-loops are not allowed")
        self._edges.append((source, target))

    def modules(self) -> Tuple[Module, ...]:
        return tuple(self._modules.values())

    def predecessors(self, name: str) -> Tuple[str, ...]:
        return tuple(source for source, target in self._edges if target == name)

    def topological_order(self) -> List[str]:
        """Module names in an execution-compatible order.

        Raises :class:`ValueError` on cycles -- specifications must be
        acyclic for a single run to be well-defined.
        """
        incoming: Dict[str, Set[str]] = {name: set() for name in self._modules}
        for source, target in self._edges:
            incoming[target].add(source)
        order: List[str] = []
        ready = sorted(name for name, sources in incoming.items() if not sources)
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly_ready = []
            for target, sources in incoming.items():
                if name in sources:
                    sources.discard(name)
                    if not sources and target not in order and target not in ready:
                        newly_ready.append(target)
            ready.extend(sorted(newly_ready))
        if len(order) != len(self._modules):
            raise ValueError("workflow specification contains a cycle")
        return order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WorkflowSpec of {len(self._modules)} modules, "
            f"{len(self._edges)} edges>"
        )
