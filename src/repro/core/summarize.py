"""The provenance summarization algorithm (Algorithm 1, Ch. 4.2).

The algorithm builds its homomorphism gradually.  Line 1 merges
valuation-equivalent annotations (distance stays exactly 0,
Proposition 4.2.1).  Each subsequent step enumerates the
constraint-satisfying single-pair merges (``CandidateHom``), measures
every candidate's size and approximate distance from the *original*
expression, picks the candidate with the minimal
``CandidateScore = wDist*rDist + wSize*rSize`` (taxonomy distances
break ties) and repeats until a stop condition fires:

* the expression reached ``TARGET-SIZE``;
* the distance reached ``TARGET-DIST`` -- in which case the *previous*
  expression (the last one within the bound) is returned, as in the
  final lines of Algorithm 1;
* the step budget ran out, or no candidate merge remains.

Note on the loop condition: the thesis's pseudo-code writes the two
stop conditions with ``or`` but describes them ("the stop condition
for TARGET-SIZE (TARGET-DIST) is when the expression meets the size
(resp. distance) bound") and uses them experimentally (§6.5, §6.6) as
independent stopping rules; we implement the described semantics --
either bound being met stops the loop.

Greedy search is justified by monotonicity (Proposition 4.2.2): along
any merge chain the distance never decreases and the size never
increases, so a step that overshoots a bound can never be repaired by
later steps.

Instrumentation: every step records wall-clock time and the average
per-candidate measurement time -- the quantities plotted in Fig. 6.5.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..observability import metrics as _metrics
from ..observability import slo as _slo
from ..observability import tracing as _tracing
from ..provenance.annotations import AnnotationUniverse
from .candidates import enumerate_candidates
from .distance import DistanceComputer, DistanceEstimate
from .engine import ScoringEngine, _OverlayUniverse  # noqa: F401  (re-export)
from .equivalence import EquivalencePartition, compute_partition, group_equivalent
from .mapping import MappingState
from .pool import CandidatePool
from .problem import SummarizationConfig, SummarizationProblem
from .scoring import score_candidates
from .streaming import SummaryRepairState

_SUMMARIZE_RUNS = _metrics.counter(
    "prox_summarize_runs_total",
    "Completed summarization runs, by algorithm.",
    labelnames=("algorithm",),
)
_SUMMARIZE_STEPS = _metrics.counter(
    "prox_summarize_steps_total",
    "Greedy merge steps applied across all summarization runs.",
)
_SUMMARIZE_SECONDS = _metrics.histogram(
    "prox_summarize_seconds",
    "End-to-end summarization wall-clock seconds per run.",
)
_REPAIR_INVALIDATED = _metrics.counter(
    "prox_repair_invalidated_total",
    "Carried candidate-pool entries invalidated by streaming-repair "
    "runs (dropped or re-proposed because a delta touched them).",
)


@dataclass
class StepRecord:
    """One greedy step: what merged and what it cost.

    ``distance_after`` is the approximate distance of the expression
    after the step; baselines leave it ``None`` when no stop condition
    forced them to compute it.
    """

    step: int
    merged: Tuple[str, ...]
    new_annotation: str
    label: str
    size_after: int
    distance_after: Optional[DistanceEstimate]
    n_candidates: int
    candidate_seconds: float
    step_seconds: float
    #: Which engine path measured this step's candidates ("fast",
    #: "fast+incremental" or "naive"); "" in records predating the engine.
    scoring_path: str = ""
    #: Candidates freshly scored this step (all of them without
    #: cross-step carry; only the merge-affected set plus confirmation
    #: re-scores under carry); -1 in records predating the carry.
    n_rescored: int = -1

    @property
    def step_mapping(self) -> Dict[str, str]:
        """The single-step homomorphism this step applied."""
        return {name: self.new_annotation for name in self.merged}


@dataclass
class SummarizationResult:
    """Output of Algorithm 1 plus the telemetry the experiments plot."""

    original_expression: object
    summary_expression: object
    mapping: MappingState
    universe: AnnotationUniverse
    steps: List[StepRecord]
    stop_reason: str
    final_size: int
    final_distance: DistanceEstimate
    equivalence_merges: int
    total_seconds: float
    config: SummarizationConfig
    equivalence_mapping: Dict[str, str] = field(default_factory=dict)
    #: Whether this run repaired a previous run's summary (streaming
    #: ingest) rather than computing from scratch.
    repaired: bool = False
    #: Carried pool entries the delta invalidated (repaired runs only).
    repair_invalidated: int = 0
    #: Step-0 measurements served from the repair seed (repaired runs
    #: with a usable engine checkpoint only).
    repair_seeded: int = 0
    #: State a later run can repair from (:class:`~repro.core.streaming
    #: .SummaryRepairState`); ``None`` when ``config.repair`` is off.
    #: Holds live objects -- intentionally not serialized.
    repair_state: Optional[SummaryRepairState] = None

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def original_size(self) -> int:
        return self.original_expression.size()

    def size_trajectory(self) -> List[int]:
        """Expression size after every step (starting point included)."""
        sizes = [self.original_size]
        sizes.extend(record.size_after for record in self.steps)
        return sizes

    def at_step(self, step: int):
        """The expression after ``step`` greedy steps (0 = after the
        equivalence grouping) -- the UI's left/right arrows (Figs
        7.5-7.8 let the user "observe the algorithm in action, step by
        step").
        """
        if not 0 <= step <= len(self.steps):
            raise IndexError(
                f"step must be in [0, {len(self.steps)}], got {step}"
            )
        expression = self.original_expression
        if self.equivalence_mapping:
            expression = expression.apply_mapping(self.equivalence_mapping)
        for record in self.steps[:step]:
            expression = expression.apply_mapping(record.step_mapping)
        return expression

    def summary_groups(self) -> Dict[str, Tuple[str, ...]]:
        """Final summary annotation → the base annotations it stands for."""
        groups: Dict[str, Tuple[str, ...]] = {}
        for current in self.mapping.current_names():
            annotation = self.universe[current]
            if annotation.is_summary:
                groups[current] = tuple(sorted(annotation.base_members()))
        return groups


class Summarizer:
    """Runs Algorithm 1 on a :class:`SummarizationProblem`."""

    def __init__(
        self,
        problem: SummarizationProblem,
        config: SummarizationConfig,
        repair_from: Optional[SummaryRepairState] = None,
        flipped: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        """``repair_from`` seeds this run from a previous run's state
        (the problem must be the previous one extended by an
        append-only delta); ``flipped`` maps a valuation label to the
        annotations whose truth that delta flipped (valuation
        extensions).  Both are ignored when ``config.repair`` is off.
        """
        self.problem = problem
        self.config = config
        self.repair_from = repair_from
        self.flipped = dict(flipped) if flipped else {}
        self._rng = random.Random(config.seed)

    def run(self) -> SummarizationResult:
        span = _tracing.span("summarize")
        with span:
            result = self._run(span)
        slo = self.config.slo_seconds
        breached = slo is not None and result.total_seconds > slo
        if breached:
            _slo.record_breach("summarize_run")
            if span is not _tracing.NULL_SPAN:
                span.set("slo_seconds", slo)
                span.set("slo_breached", True)
        if _metrics.ENABLED:
            _SUMMARIZE_RUNS.inc(algorithm="prov-approx")
            _SUMMARIZE_STEPS.inc(result.n_steps)
            _SUMMARIZE_SECONDS.observe(result.total_seconds)
        return result

    def _run(self, run_span) -> SummarizationResult:
        problem, config = self.problem, self.config
        started = time.perf_counter()
        original = problem.expression
        mapping = MappingState(sorted(original.annotation_names()))
        interner = problem.resolve_interner()
        computer = DistanceComputer(
            original,
            problem.valuations,
            problem.val_func,
            problem.combiners,
            problem.universe,
            max_enumerate=config.max_enumerate,
            n_samples=config.distance_samples,
            epsilon=config.epsilon,
            delta=config.delta,
            rng=self._rng,
            interner=interner,
            sample_block=config.sample_block,
        )
        engine = ScoringEngine(problem, config, computer)
        # Cross-step candidate pool: after a merge {a, b} → c only the
        # candidates mentioning a/b/c change, so the pool maintains
        # the list in place of a fresh O(n²) re-enumeration.  The
        # maintained list (and its RNG consumption under candidate_cap)
        # is identical to enumerate_candidates' -- see core.pool.
        pool: Optional[CandidatePool] = (
            CandidatePool(
                problem.universe,
                problem.constraint,
                arity=config.merge_arity,
                cap=config.candidate_cap,
                rng=self._rng,
                interner=interner,
            )
            if config.carry is not False
            else None
        )

        # Streaming repair: a state captured by a previous run over the
        # pre-delta problem lets this run repair -- partition, pool and
        # step-0 measurements are delta-updated instead of recomputed.
        # Every repaired artifact is bit-identical to its from-scratch
        # counterpart (differential-tested), so the rest of the run is
        # oblivious to how step 0 came to be.
        repair_on = config.repair is not False
        state = self.repair_from if repair_on else None
        flipped = self.flipped

        current = original
        equivalence_merges = 0
        equivalence_mapping: Dict[str, str] = {}
        partition: Optional[EquivalencePartition] = None
        if config.group_equivalent_first:
            if repair_on:
                names = sorted(original.annotation_names())
                if state is not None and state.partition is not None:
                    partition = state.partition.repair(
                        names, problem.valuations, flipped
                    )
                else:
                    partition = compute_partition(names, problem.valuations)
            current, equivalence_mapping, equivalence_merges = group_equivalent(
                original,
                problem.universe,
                problem.valuations,
                problem.constraint,
                partition=partition,
            )
            if equivalence_mapping:
                mapping = mapping.compose(equivalence_mapping)

        repaired = state is not None
        repair_invalidated = 0
        if state is not None and state.expression is not None:
            if pool is not None and state.pool_raw is not None:
                pool.seed(state.pool_raw, state.expression)
                repair_invalidated = pool.ingest(current)
                if _metrics.ENABLED and repair_invalidated:
                    _REPAIR_INVALIDATED.inc(repair_invalidated)
            if state.checkpoint is not None:
                old_names = frozenset(state.expression.annotation_names())
                new_names = frozenset(current.annotation_names())
                engine.seed_repair(
                    state.checkpoint,
                    flipped_labels=tuple(flipped),
                    affected_names=tuple(old_names ^ new_names),
                )

        new_state: Optional[SummaryRepairState] = None
        steps: List[StepRecord] = []
        previous: Optional[Tuple[object, MappingState]] = None
        last_distance: Optional[DistanceEstimate] = None
        stop_reason = "exhausted"
        while True:
            # The distance bound is checked before the size bound: the
            # final lines of Algorithm 1 revert to the previous
            # expression whenever the bound is exceeded, even if the
            # same step also reached TARGET-SIZE.
            if config.target_dist < 1.0:
                distance = (
                    last_distance
                    if last_distance is not None
                    else computer.distance(current, mapping)
                )
                if distance.normalized >= config.target_dist:
                    if previous is not None:
                        current, mapping = previous
                        steps.pop()
                    stop_reason = "target_dist"
                    break
            if current.size() <= config.target_size:
                stop_reason = "target_size"
                break
            if config.max_steps is not None and len(steps) >= config.max_steps:
                stop_reason = "max_steps"
                break

            step_span = _tracing.span("step[%d]", len(steps) + 1)
            with step_span:
                step_started = time.perf_counter()
                if pool is not None:
                    candidates = pool.candidates(current)
                else:
                    candidates = enumerate_candidates(
                        current,
                        problem.universe,
                        problem.constraint,
                        arity=config.merge_arity,
                        cap=config.candidate_cap,
                        rng=self._rng,
                        interner=interner,
                    )
                if repair_on and new_state is None:
                    # Step-0 capture (pool half): the raw candidate
                    # list a future repaired run seeds its pool from.
                    new_state = SummaryRepairState(
                        partition=partition,
                        expression=current,
                        pool_raw=(
                            pool.raw_snapshot(current)
                            if pool is not None
                            else None
                        ),
                    )
                if not candidates:
                    stop_reason = "exhausted"
                    break

                if engine.lazy:
                    best, scoring_seconds = engine.measure_lazy(
                        candidates,
                        current,
                        mapping,
                        config.w_dist,
                        config.w_size,
                        original.size(),
                    )
                    candidate_seconds = scoring_seconds / len(candidates)
                else:
                    measured, scoring_seconds = engine.measure(
                        candidates, current, mapping
                    )
                    candidate_seconds = scoring_seconds / len(candidates)
                    scored = score_candidates(
                        measured,
                        w_dist=config.w_dist,
                        w_size=config.w_size,
                        original_size=original.size(),
                        strategy=config.scoring,
                    )
                    # Winner confirmation: any delta-carried entry that
                    # could contend with the head is re-scored exactly,
                    # then the step re-ranks -- the recorded winner is
                    # bit-identical to a carry-off run.
                    while engine.refresh_near(scored):
                        scored = score_candidates(
                            measured,
                            w_dist=config.w_dist,
                            w_size=config.w_size,
                            original_size=original.size(),
                            strategy=config.scoring,
                        )
                    best = scored[0]

                if (
                    new_state is not None
                    and not steps
                    and new_state.checkpoint is None
                ):
                    # Step-0 capture (engine half): the measurement
                    # store, after winner confirmation made every
                    # near-head entry exact.
                    new_state.checkpoint = engine.capture_repair_checkpoint()

                summary_parts = [problem.universe[name] for name in best.candidate.parts]
                summary = problem.universe.new_summary(
                    summary_parts,
                    label=best.candidate.proposal.label,
                    concept=best.candidate.proposal.concept,
                )
                step_mapping = {name: summary.name for name in best.candidate.parts}
                previous = (current, mapping)
                current = current.apply_mapping(step_mapping)
                mapping = mapping.compose(step_mapping)
                engine.advance(best.candidate.parts, summary.name, current, mapping)
                if pool is not None:
                    pool.advance(best.candidate.parts, summary.name, current)
                last_distance = best.distance
                steps.append(
                    StepRecord(
                        step=len(steps) + 1,
                        merged=best.candidate.parts,
                        new_annotation=summary.name,
                        label=best.candidate.proposal.label,
                        size_after=current.size(),
                        distance_after=best.distance,
                        n_candidates=len(candidates),
                        candidate_seconds=candidate_seconds,
                        step_seconds=time.perf_counter() - step_started,
                        scoring_path=engine.last_path,
                        n_rescored=engine.last_rescored,
                    )
                )
                step_span.set("step", len(steps))
                step_span.set("merged", best.candidate.parts)
                step_span.set("new_annotation", summary.name)
                step_span.set("size_after", steps[-1].size_after)
                step_span.set("n_candidates", len(candidates))
                step_span.set("scoring_path", engine.last_path)

        if repair_on and new_state is None:
            # The greedy loop never ran (bound already met / nothing to
            # merge): carry the partition so later deltas still repair
            # the equivalence grouping.
            new_state = SummaryRepairState(partition=partition, expression=current)

        final_distance = computer.distance(current, mapping)
        if run_span is not _tracing.NULL_SPAN:
            run_span.set("steps", len(steps))
            run_span.set("stop_reason", stop_reason)
            run_span.set("final_size", current.size())
            run_span.set("final_distance", final_distance.normalized)
            run_span.set("equivalence_merges", equivalence_merges)
            run_span.set("scoring_path_counts", dict(engine.path_counts))
            run_span.set("scoring_fallbacks", engine.fallback_count)
            run_span.set("distance_stats", computer.stats.as_dict())
            run_span.set("epsilon", config.epsilon)
            run_span.set("delta", config.delta)
            if repaired:
                run_span.set("repaired", True)
                run_span.set("repair_invalidated", repair_invalidated)
                run_span.set("repair_seeded", engine.last_repair_seeded)
        return SummarizationResult(
            original_expression=original,
            summary_expression=current,
            mapping=mapping,
            universe=problem.universe,
            steps=steps,
            stop_reason=stop_reason,
            final_size=current.size(),
            final_distance=final_distance,
            equivalence_merges=equivalence_merges,
            total_seconds=time.perf_counter() - started,
            config=config,
            equivalence_mapping=equivalence_mapping,
            repaired=repaired,
            repair_invalidated=repair_invalidated,
            repair_seeded=engine.last_repair_seeded,
            repair_state=new_state,
        )


def summarize(
    problem: SummarizationProblem, config: Optional[SummarizationConfig] = None
) -> SummarizationResult:
    """Convenience wrapper: run Algorithm 1 with the given (or default) config."""
    return Summarizer(problem, config or SummarizationConfig()).run()
