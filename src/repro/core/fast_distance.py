"""Batch candidate scoring for one Algorithm-1 step (optimized path).

Scoring a step naively costs
``O(#candidates × #valuations × #terms)`` -- the dominant cost of the
whole algorithm (and what Fig. 6.5 measures).  This module exploits
three structural facts to collapse that product:

1. The valuation class is fixed across the step, so each current
   annotation's lifted truth values can be packed once into a *bitmask
   word row* -- a little-endian ``array('Q')`` vector, bit ``v`` set ⇔
   the annotation is false under valuation ``v`` -- scattered for all
   annotations at once into one contiguous
   :class:`~repro.core.kernels.masktable.MaskTable` by the active
   kernel backend.  A term is dead exactly when any of its
   annotations' bits are set, so per-term aliveness across *all*
   valuations is a couple of word-wise ORs.
2. A candidate merge ``{a, b} → c`` changes aliveness only for terms
   containing ``a`` or ``b`` (with the OR combiner,
   ``mask(c) = mask(a) AND mask(b)``); every other group's aggregate is
   shared with the step's baseline and computed once.
3. Per-group aggregates across all valuations need not iterate
   valuations: for MAX, walking the group's terms in descending value
   order assigns each valuation its maximum the first time an alive
   term covers it; for SUM, only each term's (typically few) dead bits
   are subtracted from the full-sum.

The scorer mirrors :class:`~repro.core.distance.DistanceComputer`
semantics exactly -- the equivalence is asserted by
``tests/core/test_fast_distance.py`` over randomized instances.

Applicability (checked by :func:`FastStepScorer.applicable`): the
expression is a :class:`~repro.provenance.tensor_sum.TensorSum` with
non-negative values, the VAL-FUNC is a
:class:`~repro.core.val_funcs.VectorValFunc` whose monoid is MAX, SUM
or COUNT, every domain lifts with the OR combiner, and the valuation
class is small enough to enumerate.  Everything else falls back to the
reference path.

:class:`IncrementalStepScorer` extends the step scorer across steps:
after a merge ``{a, b} → c`` is applied, :meth:`~IncrementalStepScorer
.advance` invalidates only the state touching ``a``, ``b`` or ``c``
(annotation masks, term dead-masks, group baselines, aligned original
vectors and per-valuation metric contributions) and carries everything
else.  For decomposable VAL-FUNCs it also scores candidates sparsely:
per valuation it sums only the *nonzero* metric contributions (keys
touched by past merges) plus the candidate's recomputed neighborhood,
instead of walking every group.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from array import array

from ..provenance.annotations import AnnotationUniverse
from ..provenance.monoids import CountMonoid, MaxMonoid, SumMonoid
from ..provenance.tensor_sum import Guard, TensorSum, Term
from ..provenance.valuation_classes import ValuationClass
from . import kernels
from .kernels.masktable import WordRow
from .kernels.protocol import MaskedValue
from .combiners import DomainCombiners, OrCombiner
from .distance import DistanceComputer, DistanceEstimate
from .mapping import MappingState
from .val_funcs import VectorValFunc


def _identity(name: str) -> str:
    return name


#: Annotation-key-space stand-in for the candidate's merged annotation
#: when keys are interned ids (no valid id is negative).
_ID_MARKER = -1

_COMPARE = {
    ">": lambda left, threshold: left > threshold,
    ">=": lambda left, threshold: left >= threshold,
    "<": lambda left, threshold: left < threshold,
    "<=": lambda left, threshold: left <= threshold,
    "==": lambda left, threshold: left == threshold,
    "!=": lambda left, threshold: left != threshold,
}


class FastStepScorer:
    """Scores every candidate of one step against all valuations."""

    @staticmethod
    def applicable(expression, val_func, combiners: DomainCombiners,
                   valuations: ValuationClass, universe: AnnotationUniverse,
                   max_enumerate: int) -> bool:
        """Whether the optimized path reproduces the reference result."""
        if not isinstance(expression, TensorSum):
            return False
        if not isinstance(val_func, VectorValFunc):
            return False
        if not isinstance(val_func.monoid, (MaxMonoid, SumMonoid, CountMonoid)):
            return False
        if len(valuations) > max_enumerate:
            return False
        domains = {universe[name].domain for name in expression.annotation_names()}
        if any(not isinstance(combiners.for_domain(d), OrCombiner) for d in domains):
            return False
        return all(term.value >= 0 for term in expression.terms)

    def __init__(
        self,
        computer: DistanceComputer,
        current: TensorSum,
        mapping: MappingState,
        universe: AnnotationUniverse,
    ):
        self.computer = computer
        self.current = current
        self.mapping = mapping
        self.universe = universe
        # Annotation-key space: with an interner (IR mode) all
        # per-annotation state -- valuation bitmasks and term indexes --
        # is keyed on dense interned ids; without one (REPRO_IR=legacy)
        # it is keyed on the name strings, the seed behavior.  The mask
        # arithmetic is identical either way, so both key spaces yield
        # bit-identical scores (asserted by the differential suite).
        self._interner = getattr(computer, "interner", None)
        if self._interner is not None:
            self._key = self._interner.intern
            self._ann_marker: object = _ID_MARKER
        else:
            self._key = _identity
            self._ann_marker = self._MARKER
        self.val_func: VectorValFunc = computer.val_func
        self.monoid = self.val_func.monoid
        self._is_max = isinstance(self.monoid, MaxMonoid)
        self.valuations = self._step_valuations()
        self.n_vals = len(self.valuations)
        # The backend is captured once per scorer: a mid-step
        # ``kernels.set_backend`` never mixes backends within one
        # scorer's folds (results are bit-identical either way; this
        # just keeps the ``kernel=`` span attribute truthful).
        self._kernel = kernels.get_backend()
        # Shared all-ones / all-zeros word rows (read-only by
        # convention; never handed out for mutation).
        self._full_row = kernels.full_row(self.n_vals)
        self._zero_row = kernels.zero_row(self.n_vals)

        self._build_masks()
        self._build_terms()
        terms = self._terms
        dead_of = self._term_dead
        self._baseline = self._kernel.baseline_scatter(
            [
                (group, [(terms[i].value, dead_of[i]) for i in indexes])
                for group, indexes in self._group_order.items()
            ],
            self.n_vals,
            self._is_max,
        )
        self._orig_aligned = self._align_originals()

    # -- precomputation ---------------------------------------------------------

    def _step_valuations(self) -> List:
        """The valuations this step scores against.

        The enumerating scorers walk the whole class; the sampled
        subclass overrides this with its Monte-Carlo batch.
        """
        return list(self.computer.valuations)

    def _original_result(self, index: int, valuation):
        """Original's evaluation under ``self.valuations[index]``.

        Enumerating scorers share the computer's index-keyed cache; the
        sampled subclass redirects to the false-set-keyed sample cache
        (batch positions are not stable enumeration indexes).
        """
        return self.computer._original_result(index, valuation)

    def _mask_rows(self) -> Dict[object, int]:
        """Table-row index per annotation key, in expression order."""
        key = self._key
        row_of: Dict[object, int] = {}
        for name in self.current.annotation_names():
            mask_key = key(name)
            if mask_key not in row_of:
                row_of[mask_key] = len(row_of)
        return row_of

    def _build_masks(self) -> None:
        """Lifted false word row per current annotation (key space).

        The per-valuation false sets are gathered in python (they come
        from the combiners' lifted semantics) and scattered into one
        contiguous :class:`MaskTable` by the kernel backend;
        ``self._mask`` maps each key to a zero-copy view of its row.
        """
        row_of = self._mask_rows()
        combiners = self.computer.combiners
        interner = self._interner
        entries: List[Tuple[List[int], Tuple[int, ...]]] = []
        for index, valuation in enumerate(self.valuations):
            rows: List[int] = []
            for name in combiners.lifted_false_set(
                valuation, self.mapping, self.universe
            ):
                # Non-inserting lookup: lifted sets may mention names
                # outside the expression, which must not grow the
                # interner.
                mask_key = interner.lookup(name) if interner is not None else name
                if mask_key is not None:
                    row = row_of.get(mask_key)
                    if row is not None:
                        rows.append(row)
            if rows:
                entries.append((rows, (index,)))
        table = self._kernel.scatter_false_sets(
            len(row_of), entries, self.n_vals
        )
        self._mask: Dict[object, WordRow] = {
            mask_key: table.row(row) for mask_key, row in row_of.items()
        }

    def _term_mask(
        self,
        index: int,
        mask_of: Mapping[object, WordRow],
        override_of: Optional[Mapping[object, WordRow]] = None,
    ) -> WordRow:
        """Valuations under which term ``index`` contributes nothing.

        ``override_of`` layers a handful of substituted rows over
        ``mask_of`` without copying it (candidate scoring substitutes
        only the merged annotations' rows).  Annotation and guard keys
        come pre-interned from ``_build_terms`` -- re-interning the same
        names for every scored candidate was a measurable slice of the
        seed path.  Single-operand folds return the operand itself:
        callers treat dead rows as read-only, so aliasing is safe.
        """
        rows: List[WordRow] = []
        if override_of is None:
            for mask_key in self._term_ann_keys[index]:
                rows.append(mask_of[mask_key])
        else:
            for mask_key in self._term_ann_keys[index]:
                mask = override_of.get(mask_key)
                rows.append(mask_of[mask_key] if mask is None else mask)
        for guard_token, guard_keys in self._term_guard_keys[index]:
            rows.append(
                self._guard_mask(guard_token, guard_keys, mask_of, override_of)
            )
        if not rows:
            return self._zero_row
        if len(rows) == 1:
            return rows[0]
        return self._kernel.fold_or(rows)

    def _guard_mask(
        self,
        guard_token: Guard,
        guard_keys: Sequence[object],
        mask_of: Mapping[object, WordRow],
        override_of: Optional[Mapping[object, WordRow]] = None,
    ) -> WordRow:
        compare = _COMPARE[guard_token.op]
        sat_alive = compare(guard_token.value, guard_token.threshold)
        sat_dead = compare(0.0, guard_token.threshold)
        if sat_alive and sat_dead:
            return self._zero_row
        if not sat_alive and not sat_dead:
            return self._full_row
        rows: List[WordRow] = []
        for mask_key in guard_keys:
            mask = (
                override_of.get(mask_key) if override_of is not None else None
            )
            if mask is None:
                mask = mask_of.get(mask_key)
            if mask is not None:
                rows.append(mask)
        if not rows:
            union: WordRow = self._zero_row
        elif len(rows) == 1:
            union = rows[0]
        else:
            union = self._kernel.fold_or(rows)
        if sat_alive:
            return union
        return self._kernel.fold_not(union, self.n_vals)

    def _build_terms(self) -> None:
        self._terms: List[Term] = list(self.current.terms)
        key = self._key
        self._term_ann_keys: List[List[object]] = [
            [key(name) for name in term.annotations] for term in self._terms
        ]
        self._term_guard_keys: List[List[Tuple[Guard, List[object]]]] = [
            [
                (guard, [key(name) for name in guard.annotations])
                for guard in term.guards
            ]
            for term in self._terms
        ]
        self._term_dead: List[WordRow] = self._derive_term_dead()
        self._group_terms: Dict[Optional[str], List[int]] = {}
        self._ann_terms: Dict[object, List[int]] = {}
        key = self._key
        for index, term in enumerate(self._terms):
            self._group_terms.setdefault(term.group, []).append(index)
            for name in set(term.all_annotation_names()):
                self._ann_terms.setdefault(key(name), []).append(index)
        # Per-group term indexes in the order the fold consumes them:
        # descending value for MAX, so ``_fold_max`` never re-sorts the
        # same baseline group inside every candidate score; term order
        # for SUM/COUNT, whose subtraction fold must keep the original
        # association order to stay bit-identical.
        if self._is_max:
            terms = self._terms
            self._group_order: Dict[Optional[str], List[int]] = {
                group: sorted(indexes, key=lambda index: -terms[index].value)
                for group, indexes in self._group_terms.items()
            }
        else:
            self._group_order = self._group_terms
        # Per-group ``(value, dead-row)`` operand lists plus each term's
        # position, built lazily by ``_recompute_groups``: candidate
        # scoring then copies the list and patches only the overridden
        # positions instead of rebuilding every tuple per candidate.
        # Terms and dead rows were just replaced, so start fresh.
        self._group_mask_cache: Dict[
            Optional[str], Tuple[List[MaskedValue], Dict[int, int]]
        ] = {}

    def _derive_term_dead(self) -> List[WordRow]:
        """Dead row of every term under the current ``_mask`` table.

        Hook point: the sampled subclass memoizes per-term masks across
        ``advance()`` while its pinned batch survives (the batch fixes
        the bit ↔ draw correspondence, so an unchanged term's mask
        cannot change).
        """
        return [
            self._term_mask(index, self._mask)
            for index in range(len(self._terms))
        ]

    def _group_values(
        self,
        indexes: Sequence[int],
        override: Optional[Mapping[int, WordRow]] = None,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        """Aggregate value of one group under every valuation.

        ``override`` substitutes dead rows for (candidate-affected)
        term indexes.  ``wanted`` restricts the fold to the valuation
        positions set in the word row: each position's value is
        independent of every other position's, so the entries filled in
        are bit-identical to a full fold's -- the rest stay 0.0 (MAX)
        or hold the unfinished group total (SUM) and must not be read.
        """
        dead_of = self._term_dead
        if override is None:
            masks = [(self._terms[i].value, dead_of[i]) for i in indexes]
        else:
            masks = [
                (self._terms[i].value, override.get(i, dead_of[i]))
                for i in indexes
            ]
        if self._is_max:
            return self._fold_max(masks, wanted)
        return self._fold_sum(masks, wanted)

    def _fold_max(
        self,
        masks: List[Tuple[float, WordRow]],
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        """Per-valuation MAX; ``masks`` must arrive in descending value
        order (``_group_order`` keeps every group presorted), so each
        valuation is assigned the first alive value it sees."""
        return self._kernel.fold_max(masks, self.n_vals, wanted)

    def _fold_sum(
        self,
        masks: List[Tuple[float, WordRow]],
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        return self._kernel.fold_sum(masks, self.n_vals, wanted)

    def _group_values_at(
        self,
        indexes: Sequence[int],
        override: Mapping[int, WordRow],
        positions: Sequence[int],
    ) -> List[float]:
        """Group aggregate at the requested positions only.

        Same bits as reading ``_group_values(...)[p]`` for each ``p``:
        every position's fold is independent, MAX takes the first alive
        value in the presorted order and SUM subtracts dead values from
        the same C-summed total in the same index order.  Skipping the
        ``n_vals``-long output allocation per group is what makes the
        streaming-repair tail recomputation cheap.
        """
        dead_of = self._term_dead
        terms = self._terms
        out: List[float] = []
        if self._is_max:
            for position in positions:
                word = position >> 6
                bit = 1 << (position & 63)
                value = 0.0
                for index in indexes:
                    mask = override.get(index)
                    if mask is None:
                        mask = dead_of[index]
                    if not mask[word] & bit:
                        value = terms[index].value
                        break
                out.append(value)
            return out
        total = sum(terms[index].value for index in indexes)
        for position in positions:
            word = position >> 6
            bit = 1 << (position & 63)
            acc = total
            for index in indexes:
                mask = override.get(index)
                if mask is None:
                    mask = dead_of[index]
                if mask[word] & bit:
                    acc -= terms[index].value
            out.append(acc)
        return out

    def _align_originals(self) -> List[Dict[Optional[str], float]]:
        """Original vectors per valuation, in current-group coordinates.

        Sampling with replacement repeats batch members; a repeated
        member's original result is the same cached object, so its
        vector is folded once and dict-copied per extra position (the
        copies stay independent -- ``advance`` refolds them in place).
        """
        aligned: List[Dict[Optional[str], float]] = []
        mapping = self.mapping
        folded: Dict[int, Dict[Optional[str], float]] = {}
        for index, valuation in enumerate(self.valuations):
            cached = folded.get(id(valuation))
            if cached is not None:
                aligned.append(dict(cached))
                continue
            original = self._original_result(index, valuation)
            vector: Dict[Optional[str], float] = {}
            for key, aggregate in original.items():
                image = mapping.get(key, key) if key is not None else None
                value = aggregate.finalized_value()
                if image in vector:
                    vector[image] = self.monoid.combine(vector[image], value)
                else:
                    vector[image] = value
            folded[id(valuation)] = vector
            aligned.append(vector)
        return aligned

    # -- candidate scoring ---------------------------------------------------------

    #: Placeholder key for the candidate's merged annotation / group.
    _MARKER = "\x00merged"

    def _candidate_state(
        self, parts: Sequence[str]
    ) -> Tuple[FrozenSet[str], List[int], Dict[int, WordRow], bool]:
        """Shared per-candidate precomputation: the merge's neighborhood.

        Returns the part set, the indexes of the terms the merge
        touches, their substituted dead rows, and whether any part is
        itself a group key (group-merge case).
        """
        part_set = frozenset(parts)
        key = self._key
        part_keys = [key(name) for name in parts]
        # OR combiner over 0/1 valuations: the merged annotation is
        # false exactly where every part is, i.e. the AND of the rows.
        merged_mask = self._kernel.fold_and(
            [self._mask[part_key] for part_key in part_keys]
        )
        # Overlay instead of copying the whole mask dict: the handful
        # of affected-term lookups below never justify an
        # O(annotations) copy per candidate.
        overrides = {part_key: merged_mask for part_key in part_keys}
        overrides[self._ann_marker] = merged_mask

        affected: List[int] = []
        seen: set = set()
        for part_key in part_keys:
            for index in self._ann_terms.get(part_key, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)

        override = {
            index: self._term_mask(index, self._mask, overrides)
            for index in affected
        }
        group_merge = any(part in self._group_terms for part in parts)
        return part_set, affected, override, group_merge

    def _estimate(self, distance_value: float) -> DistanceEstimate:
        max_error = self.computer.max_error
        normalized = (
            min(1.0, distance_value / max_error) if max_error > 0 else 0.0
        )
        # Hottest allocation of a step: built once per scored candidate.
        # The frozen dataclass ``__init__`` pays object.__setattr__ per
        # field; writing the dict wholesale keeps eq/hash semantics and
        # drops most of that cost.
        estimate = DistanceEstimate.__new__(DistanceEstimate)
        estimate.__dict__.update(
            value=distance_value,
            normalized=normalized,
            n_valuations=self.n_vals,
            exact=True,
        )
        return estimate

    def score(self, parts: Sequence[str]) -> Tuple[int, DistanceEstimate]:
        """Size and distance of the merge ``parts → c``."""
        marker = self._MARKER
        part_set, affected, override, group_merge = self._candidate_state(parts)
        summary = self._candidate_vectors(part_set, marker, override, group_merge)
        orig = self._orig_for(part_set, marker, group_merge)

        total = 0.0
        total_weight = 0.0
        for index, valuation in enumerate(self.valuations):
            orig_vec = orig[index]
            summ_vec = summary[index]
            keys = orig_vec.keys() | summ_vec.keys()
            value = self.val_func.metric(
                {key: orig_vec.get(key, 0.0) for key in keys},
                {key: summ_vec.get(key, 0.0) for key in keys},
            )
            total += valuation.weight * value
            total_weight += valuation.weight
        distance_value = total / total_weight if total_weight else 0.0
        estimate = self._estimate(distance_value)
        return self._candidate_size(part_set, marker, affected), estimate

    def _affected_group_indexes(
        self,
        parts: FrozenSet[str],
        marker: str,
        override: Mapping[int, int],
        group_merge: bool,
    ) -> Dict[Optional[str], Sequence[int]]:
        """Term indexes per group whose aggregate the merge disturbs."""
        affected_groups: Dict[Optional[str], Sequence[int]] = {}
        for index in override:
            group = self._terms[index].group
            image = marker if group in parts else group
            affected_groups.setdefault(image, [])
        if group_merge:
            merged_indexes: List[int] = []
            for part in parts:
                merged_indexes.extend(self._group_terms.get(part, ()))
            if merged_indexes:
                if self._is_max:
                    terms = self._terms
                    merged_indexes.sort(key=lambda index: -terms[index].value)
                affected_groups[marker] = merged_indexes
        for group in list(affected_groups):
            if group == marker:
                continue
            affected_groups[group] = self._group_order[group]
        return affected_groups

    def _recompute_groups(
        self,
        parts: FrozenSet[str],
        marker: str,
        override: Mapping[int, WordRow],
        group_merge: bool,
    ) -> Dict[Optional[str], List[float]]:
        """Disturbed groups' columns in one batched kernel call.

        Equivalent to ``{group: _group_values(indexes, override)}``
        over ``_affected_group_indexes`` -- the batching amortizes the
        per-call kernel dispatch across the candidate's groups.
        """
        affected = self._affected_group_indexes(
            parts, marker, override, group_merge
        )
        if not affected:
            return {}
        dead_of = self._term_dead
        terms = self._terms
        cache = self._group_mask_cache
        group_order = self._group_order
        batched: List[List[MaskedValue]] = []
        for group, indexes in affected.items():
            if indexes is group_order.get(group):
                # Whole-group recompute: copy the cached operand list
                # and patch just the overridden positions.
                entry = cache.get(group)
                if entry is None:
                    pre = [(terms[i].value, dead_of[i]) for i in indexes]
                    pos_of = {i: p for p, i in enumerate(indexes)}
                    cache[group] = entry = (pre, pos_of)
                pre, pos_of = entry
                masks: Optional[List[MaskedValue]] = None
                for i, row in override.items():
                    position = pos_of.get(i)
                    if position is not None:
                        if masks is None:
                            masks = list(pre)
                        masks[position] = (terms[i].value, row)
                batched.append(pre if masks is None else masks)
            else:
                # Marker/merged-group index lists are candidate-shaped.
                batched.append(
                    [
                        (terms[i].value, override.get(i, dead_of[i]))
                        for i in indexes
                    ]
                )
        columns = self._kernel.group_fold(batched, self.n_vals, self._is_max)
        return dict(zip(affected.keys(), columns))

    def _candidate_vectors(
        self,
        parts: FrozenSet[str],
        marker: str,
        override: Mapping[int, int],
        group_merge: bool,
    ) -> List[Dict[Optional[str], float]]:
        recomputed = self._recompute_groups(parts, marker, override, group_merge)
        vectors: List[Dict[Optional[str], float]] = []
        for index in range(self.n_vals):
            vector: Dict[Optional[str], float] = {}
            for group, values in self._baseline.items():
                if group in parts:
                    continue
                if group in recomputed:
                    vector[group] = recomputed[group][index]
                else:
                    vector[group] = values[index]
            if marker in recomputed:
                vector[marker] = recomputed[marker][index]
            vectors.append(vector)
        return vectors

    def _orig_for(
        self, parts: FrozenSet[str], marker: str, group_merge: bool
    ) -> List[Dict[Optional[str], float]]:
        if not group_merge:
            return self._orig_aligned
        adjusted = []
        for vector in self._orig_aligned:
            out: Dict[Optional[str], float] = {}
            for key, value in vector.items():
                image = marker if key in parts else key
                if image in out:
                    out[image] = self.monoid.combine(out[image], value)
                else:
                    out[image] = value
            adjusted.append(out)
        return adjusted

    def _candidate_size(
        self, parts: FrozenSet[str], marker: str, affected: Sequence[int]
    ) -> int:
        """Size after the merge: only terms touching the merge can collide.

        A term is touched when the merge renames one of its (guard)
        annotations *or* its group -- a group-only rename can make two
        terms congruent even though neither mentions the merged
        annotations, so group members must be examined too.
        """
        size = self.current.size()
        touched = list(affected)
        touched_set = set(affected)
        for part in parts:
            for index in self._group_terms.get(part, ()):
                if index not in touched_set:
                    touched_set.add(index)
                    touched.append(index)
        touched.sort()
        seen: Dict[Tuple, int] = {}
        for index in touched:
            term = self._terms[index]
            monomial = tuple(
                sorted(marker if name in parts else name for name in term.annotations)
            )
            guards = tuple(
                (
                    tuple(
                        sorted(
                            marker if name in parts else name
                            for name in guard_token.annotations
                        )
                    ),
                    guard_token.value,
                    guard_token.op,
                    guard_token.threshold,
                )
                for guard_token in term.guards
            )
            group = marker if term.group in parts else term.group
            key = (monomial, guards, group)
            if key in seen:
                size -= term.size()
            else:
                seen[key] = index
        return size


class IncrementalStepScorer(FastStepScorer):
    """A step scorer that carries its state from one step to the next.

    Two independent optimizations over :class:`FastStepScorer`:

    * **Incremental carry** (:meth:`advance`): after the winning merge
      ``{a, b} → c`` is applied, only the state touching ``a``, ``b``
      or ``c`` is recomputed -- the merged annotation's bitmask is
      ``mask(a) AND mask(b)`` (OR combiner over 0/1 valuations), group
      baselines are recomputed only for groups whose terms mention the
      new annotation, and the aligned original vectors refold only the
      keys whose image changed.  Carried entries are bit-identical to a
      fresh scorer's because they would be recomputed from identical
      inputs in identical order.
    * **Sparse scoring**: for decomposable VAL-FUNCs
      (``val_func.decomposable``) a candidate's per-valuation metric is
      assembled from the step's *nonzero* baseline contributions (keys
      already disturbed by past merges -- typically few) plus the
      candidate's recomputed neighborhood, instead of walking every
      group.  Contribution sums may associate differently from the
      dense path, so sparse scores match the reference within ordinary
      float rounding rather than bit-for-bit; the differential suite
      (``tests/core/test_parallel_scoring.py``) bounds the drift.
    """

    def __init__(
        self,
        computer: DistanceComputer,
        current: TensorSum,
        mapping: MappingState,
        universe: AnnotationUniverse,
        sparse: Optional[bool] = None,
    ):
        super().__init__(computer, current, mapping, universe)
        decomposable = bool(getattr(self.val_func, "decomposable", False))
        self._sparse = decomposable if sparse is None else (sparse and decomposable)
        #: Number of advance() carries since construction (telemetry).
        self.steps_carried = 0

        # What the most recent advance() perturbed -- the engine's
        # cross-step candidate carry uses these to decide which
        # candidates must be re-scored (None until the first advance):
        #: Term indexes (new state) whose aliveness the merge changed.
        self.last_affected_terms: Optional[set] = None
        #: Group keys whose aggregate/contribution the merge changed
        #: (``touched_groups`` plus the merged annotation itself).
        self.last_affected_groups: Optional[set] = None
        #: Per-valuation baseline-contribution delta of the merge
        #: (sparse mode only): adding ``last_delta[v]`` to a disjoint
        #: candidate's carried accumulator re-bases it on this step.
        self.last_delta: Optional[List[float]] = None
        #: Expression-size change of the applied merge; a disjoint
        #: candidate's post-merge size is its carried size plus this.
        self.last_size_shift: int = 0
        #: Whether ``last_size_shift`` is accounted for entirely by the
        #: merge's own neighborhood.  ``apply_mapping`` canonicalizes
        #: *every* monomial and merges equal terms globally, so a merge
        #: can collapse duplicate terms that never mention the merged
        #: annotations (possible only when the pre-merge expression was
        #: not already canonical).  Such a collapse is not disjoint from
        #: anything: a carried candidate's own merge would collapse the
        #: same pair, so ``old_size + last_size_shift`` double-counts
        #: it.  False ⇒ the engine must not carry sizes across this step.
        self.last_shift_local: bool = True

        # Original results in evaluation-encounter order, shared across
        # steps: refolds after a merge must walk keys in the same order
        # a fresh _align_originals would.
        self._image: Dict[Optional[str], Optional[str]] = {}
        self._orig_lists: List[List[Tuple[Optional[str], float]]] = []
        # Read-only entry lists: repeated batch members share one list
        # (``advance`` only iterates them, never mutates).
        listed: Dict[int, List[Tuple[Optional[str], float]]] = {}
        for index, valuation in enumerate(self.valuations):
            entries = listed.get(id(valuation))
            if entries is None:
                original = self._original_result(index, valuation)
                entries = []
                for key, aggregate in original.items():
                    entries.append((key, aggregate.finalized_value()))
                    if key not in self._image:
                        self._image[key] = (
                            self.mapping.get(key, key) if key is not None else None
                        )
                listed[id(valuation)] = entries
            self._orig_lists.append(entries)

        self._nonzero: List[Dict[Optional[str], float]] = []
        #: Per-position running sum of ``_nonzero`` values (insertion
        #: order at build, then corrected by each merge's delta).  The
        #: sparse walk starts from this and subtracts the few excluded
        #: keys instead of re-walking the whole dict; the association
        #: dust this introduces is the same class ``refresh_near``
        #: already absorbs before anything is recorded.
        self._nonzero_sum: List[float] = []
        # Position-indexed weights and their running sum, accumulated in
        # the same left-to-right order every scoring walk uses, so a
        # cached ``_weight_sum`` is the bit-identical float a fresh
        # ``total_weight`` accumulation would produce.
        self._weights: List[float] = [
            valuation.weight for valuation in self.valuations
        ]
        weight_sum = 0.0
        for weight in self._weights:
            weight_sum += weight
        self._weight_sum: float = weight_sum
        # Columnar float64 mirrors of the sparse dicts for the kernel
        # ``sparse_scores`` path, built lazily (many candidates per step
        # share them) and dropped by ``advance``/``adopt_shared_weights``.
        # Dense columns encode an absent key as 0.0: subtracting or
        # adding that coordinate is an IEEE identity, so the columnar
        # walk is bit-identical to the dict walk it mirrors.
        self._base_col: Optional[array] = None
        self._weights_col: Optional[object] = None
        self._zero_col: Optional[array] = None
        self._nonzero_cols: Dict[object, array] = {}
        self._orig_cols: Dict[object, array] = {}
        if self._sparse:
            self._build_nonzero()

    # -- sparse state ------------------------------------------------------------

    def _build_nonzero(self) -> None:
        """Per-valuation nonzero metric contributions of the baseline.

        A repeated batch member's baseline and original values are
        position-independent (all its positions carry the same dead
        bits), so its contributions are computed once and dict-copied
        per extra position -- the copies must stay independent because
        ``_refresh_contributions`` mutates them per position.
        """
        contrib = self.val_func.metric_contrib
        self._nonzero = []
        self._nonzero_sum = []
        built: Dict[int, Tuple[Dict[Optional[str], float], float]] = {}
        for index in range(self.n_vals):
            cached = built.get(id(self.valuations[index]))
            if cached is not None:
                self._nonzero.append(dict(cached[0]))
                self._nonzero_sum.append(cached[1])
                continue
            orig_vec = self._orig_aligned[index]
            entries: Dict[Optional[str], float] = {}
            total = 0.0
            for key in orig_vec.keys() | self._baseline.keys():
                values = self._baseline.get(key)
                value = contrib(
                    orig_vec.get(key, 0.0),
                    values[index] if values is not None else 0.0,
                )
                if value != 0.0:
                    entries[key] = value
                    total += value
            built[id(self.valuations[index])] = (entries, total)
            self._nonzero.append(entries)
            self._nonzero_sum.append(total)

    def _refresh_contributions(
        self, part_set: FrozenSet[str], refresh: set
    ) -> List[float]:
        """Re-base the nonzero contributions past a merge.

        Returns the merge's per-valuation contribution delta: what the
        pops (the merged annotations' old group contributions) and
        refreshes (the disturbed groups' new contributions) changed in
        the baseline sum.  A candidate disjoint from the merge's
        neighborhood sums exactly the same keys as before plus this
        delta, so its carried accumulator is corrected in O(1) per
        valuation instead of a full re-walk.
        """
        contrib = self.val_func.metric_contrib
        deltas: List[float] = []
        for index in range(self.n_vals):
            nonzero = self._nonzero[index]
            delta = 0.0
            for part in part_set:
                removed = nonzero.pop(part, None)
                if removed is not None:
                    delta -= removed
            orig_vec = self._orig_aligned[index]
            for key in refresh:
                values = self._baseline.get(key)
                value = contrib(
                    orig_vec.get(key, 0.0),
                    values[index] if values is not None else 0.0,
                )
                delta += value - nonzero.get(key, 0.0)
                if value != 0.0:
                    nonzero[key] = value
                else:
                    nonzero.pop(key, None)
            self._nonzero_sum[index] += delta
            deltas.append(delta)
        return deltas

    # -- sparse column mirrors ---------------------------------------------------

    def _drop_sparse_columns(self) -> None:
        """Invalidate the columnar mirrors (state they mirror changed)."""
        self._base_col = None
        self._nonzero_cols.clear()
        self._orig_cols.clear()

    def _sparse_base_col(self) -> array:
        if self._base_col is None:
            self._base_col = array("d", self._nonzero_sum)
        return self._base_col

    def _sparse_weights_col(self):
        if self._weights_col is None:
            weights = self._weights
            if isinstance(weights, (array, memoryview)):
                self._weights_col = weights
            else:
                self._weights_col = array("d", weights)
        return self._weights_col

    def _sparse_zero_col(self) -> array:
        if self._zero_col is None:
            self._zero_col = array("d", bytes(8 * self.n_vals))
        return self._zero_col

    def _nonzero_col(self, key: object) -> array:
        """Dense column of one key's nonzero contributions (0.0 absent).

        The nonzero dicts never store 0.0 (``value != 0.0`` gates the
        insert), so the dense column and the dict agree exactly on
        which coordinates carry a value.
        """
        col = self._nonzero_cols.get(key)
        if col is None:
            col = array("d", bytes(8 * self.n_vals))
            nonzero_of = self._nonzero
            for index in range(self.n_vals):
                value = nonzero_of[index].get(key)
                if value is not None:
                    col[index] = value
            self._nonzero_cols[key] = col
        return col

    def _orig_col(self, group: Optional[str]) -> array:
        """Dense column of one group's aligned original values."""
        col = self._orig_cols.get(group)
        if col is None:
            aligned = self._orig_aligned
            col = array(
                "d",
                (aligned[index].get(group, 0.0) for index in range(self.n_vals)),
            )
            self._orig_cols[group] = col
        return col

    # -- candidate scoring -------------------------------------------------------

    def score(self, parts: Sequence[str]) -> Tuple[int, DistanceEstimate]:
        if not self._sparse:
            return super().score(parts)
        size, estimate, _, _ = self._score_sparse(parts)
        return size, estimate

    def score_detail(
        self, parts: Sequence[str]
    ) -> Tuple[int, DistanceEstimate, List[float], List[float]]:
        """Sparse score plus the per-valuation carry state.

        Returns ``(size, estimate, accs, wf)`` where ``accs`` are the
        metric accumulators and ``wf`` the weighted finished
        contributions ``weight * finish(acc)`` per position.  The
        engine's cross-step carry stores both: after the winning merge
        is applied, a disjoint candidate re-finishes only the positions
        the merge's delta touches and re-sums ``wf``
        (:meth:`carried_score_fast`) -- no O(n_vals) Python re-walk.
        Only valid in sparse mode (the engine gates on ``_sparse``).
        """
        if not self._sparse:
            raise RuntimeError("score_detail requires sparse (decomposable) mode")
        return self._score_sparse(parts)

    def _score_sparse(
        self, parts: Sequence[str]
    ) -> Tuple[int, DistanceEstimate, List[float], List[float]]:
        marker = self._MARKER
        part_set, affected, override, group_merge = self._candidate_state(parts)
        recomputed = self._recompute_groups(
            part_set, marker, override, group_merge
        )
        excluded = list(part_set)
        excluded.extend(
            group for group in recomputed if group not in part_set
        )
        kind = getattr(self.val_func, "contrib_kind", None)
        if kind is not None:
            # Columnar kernel path: same key walk per position as the
            # dict loop below (excluded subtractions in ``excluded``
            # order, then recomputed contribs in dict order), expressed
            # over dense float64 columns so the backend runs it at C
            # speed.  Absent coordinates are 0.0 -- IEEE identities
            # under the subtraction -- keeping the result bit-identical.
            minus = [self._nonzero_col(key) for key in excluded]
            contribs: List[Tuple[Sequence[float], Sequence[float]]] = []
            for group, values in recomputed.items():
                if group == marker:
                    if group_merge:
                        originals: Sequence[float] = array(
                            "d",
                            (
                                self._fold_orig(index, part_set)
                                for index in range(self.n_vals)
                            ),
                        )
                    else:
                        originals = self._sparse_zero_col()
                else:
                    originals = self._orig_col(group)
                contribs.append((originals, values))
            accs, wf, total = self._kernel.sparse_scores(
                self._sparse_base_col(),
                minus,
                contribs,
                self._sparse_weights_col(),
                kind,
            )
        else:
            # Reference dict walk: VAL-FUNCs without a ``contrib_kind``
            # keep the original sparse loop.
            contrib = self.val_func.metric_contrib
            finish = self.val_func.metric_finish
            weights = self._weights
            nonzero_sum = self._nonzero_sum
            nonzero_of = self._nonzero
            total = 0.0
            accs = []
            wf = []
            for index in range(self.n_vals):
                orig_vec = self._orig_aligned[index]
                nonzero = nonzero_of[index]
                acc = nonzero_sum[index]
                for key in excluded:
                    carried = nonzero.get(key)
                    if carried is not None:
                        acc -= carried
                for group, values in recomputed.items():
                    if group == marker:
                        original = (
                            self._fold_orig(index, part_set)
                            if group_merge
                            else 0.0
                        )
                    else:
                        original = orig_vec.get(group, 0.0)
                    acc += contrib(original, values[index])
                accs.append(acc)
                finished = weights[index] * finish(acc)
                wf.append(finished)
                total += finished
        total_weight = self._weight_sum
        distance_value = total / total_weight if total_weight else 0.0
        estimate = self._estimate(distance_value)
        return self._candidate_size(part_set, marker, affected), estimate, accs, wf

    def carried_score(
        self, accs: Sequence[float], deltas: Sequence[float]
    ) -> Tuple[DistanceEstimate, List[float], List[float]]:
        """Distance from carried accumulators plus the step's delta.

        Exact up to float association: the corrected accumulator sums
        the same contributions a fresh sparse walk would, added in a
        different order.  The loop above the engine re-scores the
        provisional winner freshly, so the dust never reaches the
        recorded output (see ``ScoringEngine.refresh_near``).
        """
        finish = self.val_func.metric_finish
        weights = self._weights
        total = 0.0
        new_accs: List[float] = []
        new_wf: List[float] = []
        for index in range(self.n_vals):
            acc = accs[index] + deltas[index]
            new_accs.append(acc)
            finished = weights[index] * finish(acc)
            new_wf.append(finished)
            total += finished
        total_weight = self._weight_sum
        distance_value = total / total_weight if total_weight else 0.0
        return self._estimate(distance_value), new_accs, new_wf

    def carried_score_fast(
        self,
        accs: List[float],
        wf: List[float],
        deltas: Sequence[float],
        positions: Sequence[int],
        mutate: bool = False,
    ) -> Tuple[DistanceEstimate, List[float], List[float]]:
        """Like :meth:`carried_score`, touching only ``positions``.

        ``positions`` must cover every position where ``deltas`` is
        nonzero (the engine precomputes that set once per step).  Only
        those coordinates are re-accumulated and re-finished; the rest
        keep their stored ``acc``/``wf`` verbatim.  The total is then
        re-summed left-to-right over the full ``wf`` list with the
        C-level ``sum`` -- the identical sequence of IEEE additions a
        fresh Python accumulation performs, so the estimate stays bit
        for bit what :meth:`carried_score` (and, once
        ``refresh_near``'s tolerance logic has run, a fresh
        :meth:`_score_sparse`) would produce.

        ``mutate=True`` updates ``accs``/``wf`` in place instead of
        copying -- only valid when the caller owns the lists (the
        engine's step loop discards the previous store wholesale; the
        repair checkpoint deep-copies before any step mutates).
        """
        finish = self.val_func.metric_finish
        weights = self._weights
        if mutate:
            new_accs = accs
            new_wf = wf
        else:
            new_accs = list(accs)
            new_wf = list(wf)
        for index in positions:
            acc = new_accs[index] + deltas[index]
            new_accs[index] = acc
            new_wf[index] = weights[index] * finish(acc)
        total = sum(new_wf)
        total_weight = self._weight_sum
        distance_value = total / total_weight if total_weight else 0.0
        return self._estimate(distance_value), new_accs, new_wf

    def candidate_size(self, parts: Sequence[str]) -> int:
        """Exact post-merge size of one candidate (no distance walk)."""
        part_set, affected, _, _ = self._candidate_state(parts)
        return self._candidate_size(part_set, self._MARKER, affected)

    def score_positions(
        self, parts: Sequence[str], positions: Sequence[int]
    ) -> Dict[int, float]:
        """Sparse metric accumulators at the given valuation positions only.

        Streaming repair re-bases a carried candidate measurement on the
        post-delta step: positions whose valuation is untouched keep the
        recorded accumulator, while appended and flipped positions are
        recomputed here.  Per requested position the arithmetic is the
        exact inner loop of :meth:`_score_sparse` -- same key order,
        same association -- so a recomputed coordinate is bit-identical
        to what a full fresh walk would produce there.
        """
        if not self._sparse:
            raise RuntimeError("score_positions requires sparse (decomposable) mode")
        marker = self._MARKER
        # Fast path: when no requested position falsifies any merged
        # part, the merged mask (AND of the part masks) is zero at every
        # requested bit, so every overridden term's dead bit -- and with
        # it every affected group's fold -- equals the baseline's there.
        # The expensive per-candidate override construction is skipped
        # and the baseline aggregates are read directly; the arithmetic
        # sequence is unchanged, so the result stays bit-identical.
        key = self._key
        part_keys = [key(name) for name in parts]
        mask_of = self._mask
        falsified = any(
            mask_of[part_key][index >> 6] & (1 << (index & 63))
            for index in positions
            for part_key in part_keys
        )
        if not falsified and not any(
            part in self._group_terms for part in parts
        ):
            return self._score_positions_baseline(parts, part_keys, positions)
        part_set, _, override, group_merge = self._candidate_state(parts)
        recomputed = {
            group: self._group_values_at(indexes, override, positions)
            for group, indexes in self._affected_group_indexes(
                part_set, marker, override, group_merge
            ).items()
        }
        contrib = self.val_func.metric_contrib
        nonzero_sum = self._nonzero_sum
        nonzero_of = self._nonzero
        excluded = list(part_set)
        excluded.extend(
            group for group in recomputed if group not in part_set
        )
        out: Dict[int, float] = {}
        for offset, index in enumerate(positions):
            orig_vec = self._orig_aligned[index]
            nonzero = nonzero_of[index]
            acc = nonzero_sum[index]
            for key in excluded:
                carried = nonzero.get(key)
                if carried is not None:
                    acc -= carried
            for group, values in recomputed.items():
                if group == marker:
                    original = (
                        self._fold_orig(index, part_set) if group_merge else 0.0
                    )
                else:
                    original = orig_vec.get(group, 0.0)
                acc += contrib(original, values[offset])
            out[index] = acc
        return out

    def _score_positions_baseline(
        self,
        parts: Sequence[str],
        part_keys: Sequence[object],
        positions: Sequence[int],
    ) -> Dict[int, float]:
        """:meth:`score_positions` when the merge is invisible there.

        Preconditions (checked by the caller): no merged part is a
        group key, and no requested position falsifies any part.  The
        affected groups and the exclusion list are derived exactly as
        :meth:`_candidate_state` / :meth:`_affected_group_indexes`
        would order them, and each affected group's value at a
        requested position is read from the baseline fold -- the same
        float the overridden fold would produce there -- so every
        addition happens in the generic path's order.
        """
        part_set = frozenset(parts)
        seen: set = set()
        group_seen: set = set()
        groups_order: List[Optional[str]] = []
        terms = self._terms
        for part_key in part_keys:
            for index in self._ann_terms.get(part_key, ()):
                if index not in seen:
                    seen.add(index)
                    group = terms[index].group
                    if group not in group_seen:
                        group_seen.add(group)
                        groups_order.append(group)
        excluded = list(part_set)
        excluded.extend(
            group for group in groups_order if group not in part_set
        )
        contrib = self.val_func.metric_contrib
        nonzero_sum = self._nonzero_sum
        nonzero_of = self._nonzero
        baseline = self._baseline
        out: Dict[int, float] = {}
        for index in positions:
            orig_vec = self._orig_aligned[index]
            nonzero = nonzero_of[index]
            acc = nonzero_sum[index]
            for key in excluded:
                carried = nonzero.get(key)
                if carried is not None:
                    acc -= carried
            for group in groups_order:
                acc += contrib(
                    orig_vec.get(group, 0.0), baseline[group][index]
                )
            out[index] = acc
        return out

    def candidate_intersects(self, parts: Sequence[str]) -> bool:
        """Whether the last applied merge perturbs this candidate's score.

        A candidate's measurement reads (a) the dead masks and values
        of the terms mentioning its parts (or grouped under them) and
        (b) the aggregates/contributions of those terms' groups.  It is
        disturbed exactly when that neighborhood meets the applied
        merge's ``last_affected_terms`` / ``last_affected_groups``;
        everything else is carried with the O(n_vals) delta correction.
        """
        affected_terms = self.last_affected_terms
        affected_groups = self.last_affected_groups
        key = self._key
        terms = self._terms
        for name in parts:
            if name in affected_groups:
                return True
            for index in self._ann_terms.get(key(name), ()):
                if index in affected_terms or terms[index].group in affected_groups:
                    return True
            for index in self._group_terms.get(name, ()):
                if index in affected_terms:
                    return True
        return False

    def _fold_orig(self, index: int, keys: FrozenSet[str]) -> float:
        """Fold the aligned original values of ``keys`` (group merge).

        Mirrors :meth:`FastStepScorer._orig_for`: values combine in the
        aligned vector's iteration order.
        """
        acc: Optional[float] = None
        for key, value in self._orig_aligned[index].items():
            if key in keys:
                acc = value if acc is None else self.monoid.combine(acc, value)
        return 0.0 if acc is None else acc

    # -- step transition ---------------------------------------------------------

    def advance(
        self,
        parts: Sequence[str],
        new_name: str,
        new_expression: TensorSum,
        new_mapping: MappingState,
    ) -> None:
        """Carry the scorer past the applied merge ``parts → new_name``.

        ``new_expression`` / ``new_mapping`` must be the result of
        applying exactly that single-step homomorphism to the scorer's
        current expression and mapping.
        """
        part_set = frozenset(parts)
        key = self._key
        new_key = key(new_name)
        self.last_size_shift = new_expression.size() - self.current.size()
        # Size held by terms the merge cannot rewrite (no part appears in
        # them).  Mapped terms all contain ``new_key`` afterwards and
        # unaffected terms never do, so equal terms collapsed by
        # ``apply_mapping`` pair up strictly within one side; if the
        # unaffected side's total size survives unchanged, every collapse
        # was local to the merge's neighborhood and the carried-size
        # identity ``old + last_size_shift`` is exact.
        old_affected = set()
        for name in parts:
            old_affected.update(self._ann_terms.get(key(name), ()))
        old_unaffected_size = self.current.size() - sum(
            self._terms[index].size() for index in old_affected
        )
        # Fresh ``array('Q')`` (fold_and always copies): the merged row
        # stays valid after the part rows' backing table is dropped.
        merged_mask = self._kernel.fold_and(
            [self._mask[key(name)] for name in parts]
        )
        for name in parts:
            del self._mask[key(name)]
        self._mask[new_key] = merged_mask
        self.current = new_expression
        self.mapping = new_mapping

        # Terms, dead masks and indexes: O(#terms) integer work.
        self._build_terms()

        new_unaffected_size = new_expression.size() - sum(
            self._terms[index].size()
            for index in self._ann_terms.get(new_key, ())
        )
        self.last_shift_local = old_unaffected_size == new_unaffected_size

        # Group baselines: recompute the neighborhood, carry the rest.
        touched_groups = {
            self._terms[index].group
            for index in self._ann_terms.get(new_key, ())
        }
        if new_name in self._group_terms:
            touched_groups.add(new_name)
        baseline: Dict[Optional[str], List[float]] = {}
        for group, indexes in self._group_order.items():
            carried = self._baseline.get(group)
            if carried is None or group in touched_groups:
                baseline[group] = self._group_values(indexes)
            else:
                baseline[group] = carried
        self._baseline = baseline

        # The merge's neighborhood (for the engine's candidate carry).
        affected_terms = set(self._ann_terms.get(new_key, ()))
        affected_terms.update(self._group_terms.get(new_name, ()))
        self.last_affected_terms = affected_terms
        self.last_affected_groups = set(touched_groups)
        self.last_affected_groups.add(new_name)
        self.last_delta = None

        # Aligned originals: refold only the keys whose image changed.
        changed = {
            key for key, image in self._image.items() if image in part_set
        }
        for key in changed:
            self._image[key] = new_name
        if changed:
            for index in range(self.n_vals):
                vector = self._orig_aligned[index]
                for part in part_set:
                    vector.pop(part, None)
                acc: Optional[float] = None
                for key, value in self._orig_lists[index]:
                    if key in changed:
                        acc = value if acc is None else self.monoid.combine(acc, value)
                if acc is not None:
                    vector[new_name] = acc

        if self._sparse:
            refresh = set(touched_groups)
            refresh.add(new_name)
            self.last_delta = self._refresh_contributions(part_set, refresh)
        # The nonzero dicts, their running sums and the aligned
        # originals all moved; the columnar mirrors must follow.
        self._drop_sparse_columns()
        self.steps_carried += 1
