"""Batch candidate scoring for one Algorithm-1 step (optimized path).

Scoring a step naively costs
``O(#candidates × #valuations × #terms)`` -- the dominant cost of the
whole algorithm (and what Fig. 6.5 measures).  This module exploits
three structural facts to collapse that product:

1. The valuation class is fixed across the step, so each current
   annotation's lifted truth values can be packed once into an integer
   *bitmask* (bit ``v`` set ⇔ the annotation is false under valuation
   ``v``).  A term is dead exactly when any of its annotations' bits
   are set, so per-term aliveness across *all* valuations is a couple
   of bitwise ORs.
2. A candidate merge ``{a, b} → c`` changes aliveness only for terms
   containing ``a`` or ``b`` (with the OR combiner,
   ``mask(c) = mask(a) AND mask(b)``); every other group's aggregate is
   shared with the step's baseline and computed once.
3. Per-group aggregates across all valuations need not iterate
   valuations: for MAX, walking the group's terms in descending value
   order assigns each valuation its maximum the first time an alive
   term covers it; for SUM, only each term's (typically few) dead bits
   are subtracted from the full-sum.

The scorer mirrors :class:`~repro.core.distance.DistanceComputer`
semantics exactly -- the equivalence is asserted by
``tests/core/test_fast_distance.py`` over randomized instances.

Applicability (checked by :func:`FastStepScorer.applicable`): the
expression is a :class:`~repro.provenance.tensor_sum.TensorSum` with
non-negative values, the VAL-FUNC is a
:class:`~repro.core.val_funcs.VectorValFunc` whose monoid is MAX or
SUM, every domain lifts with the OR combiner, and the valuation class
is small enough to enumerate.  Everything else falls back to the
reference path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..provenance.annotations import AnnotationUniverse
from ..provenance.monoids import MaxMonoid, SumMonoid
from ..provenance.tensor_sum import Guard, TensorSum, Term
from ..provenance.valuation_classes import ValuationClass
from .combiners import DomainCombiners, OrCombiner
from .distance import DistanceComputer, DistanceEstimate
from .mapping import MappingState
from .val_funcs import VectorValFunc

_COMPARE = {
    ">": lambda left, threshold: left > threshold,
    ">=": lambda left, threshold: left >= threshold,
    "<": lambda left, threshold: left < threshold,
    "<=": lambda left, threshold: left <= threshold,
    "==": lambda left, threshold: left == threshold,
    "!=": lambda left, threshold: left != threshold,
}


class FastStepScorer:
    """Scores every candidate of one step against all valuations."""

    @staticmethod
    def applicable(expression, val_func, combiners: DomainCombiners,
                   valuations: ValuationClass, universe: AnnotationUniverse,
                   max_enumerate: int) -> bool:
        """Whether the optimized path reproduces the reference result."""
        if not isinstance(expression, TensorSum):
            return False
        if not isinstance(val_func, VectorValFunc):
            return False
        if not isinstance(val_func.monoid, (MaxMonoid, SumMonoid)):
            return False
        if len(valuations) > max_enumerate:
            return False
        domains = {universe[name].domain for name in expression.annotation_names()}
        if any(not isinstance(combiners.for_domain(d), OrCombiner) for d in domains):
            return False
        return all(term.value >= 0 for term in expression.terms)

    def __init__(
        self,
        computer: DistanceComputer,
        current: TensorSum,
        mapping: MappingState,
        universe: AnnotationUniverse,
    ):
        self.computer = computer
        self.current = current
        self.mapping = mapping
        self.universe = universe
        self.val_func: VectorValFunc = computer.val_func
        self.monoid = self.val_func.monoid
        self._is_max = isinstance(self.monoid, MaxMonoid)
        self.valuations = list(computer.valuations)
        self.n_vals = len(self.valuations)
        self._full_mask = (1 << self.n_vals) - 1

        self._build_masks()
        self._build_terms()
        self._baseline = {
            group: self._group_values(indexes)
            for group, indexes in self._group_terms.items()
        }
        self._orig_aligned = self._align_originals()

    # -- precomputation ---------------------------------------------------------

    def _build_masks(self) -> None:
        """Lifted false bitmask per current annotation."""
        self._mask: Dict[str, int] = {
            name: 0 for name in self.current.annotation_names()
        }
        combiners = self.computer.combiners
        for index, valuation in enumerate(self.valuations):
            bit = 1 << index
            for name in combiners.lifted_false_set(
                valuation, self.mapping, self.universe
            ):
                if name in self._mask:
                    self._mask[name] |= bit

    def _term_mask(self, term: Term, mask_of: Mapping[str, int]) -> int:
        """Valuations under which ``term`` contributes nothing."""
        dead = 0
        for name in term.annotations:
            dead |= mask_of[name]
        for guard_token in term.guards:
            dead |= self._guard_mask(guard_token, mask_of)
        return dead

    def _guard_mask(self, guard_token: Guard, mask_of: Mapping[str, int]) -> int:
        compare = _COMPARE[guard_token.op]
        sat_alive = compare(guard_token.value, guard_token.threshold)
        sat_dead = compare(0.0, guard_token.threshold)
        union = 0
        for name in guard_token.annotations:
            union |= mask_of.get(name, 0)
        if sat_alive and sat_dead:
            return 0
        if sat_alive and not sat_dead:
            return union
        if not sat_alive and sat_dead:
            return ~union & self._full_mask
        return self._full_mask

    def _build_terms(self) -> None:
        self._terms: List[Term] = list(self.current.terms)
        self._term_dead: List[int] = [
            self._term_mask(term, self._mask) for term in self._terms
        ]
        self._group_terms: Dict[Optional[str], List[int]] = {}
        self._ann_terms: Dict[str, List[int]] = {}
        for index, term in enumerate(self._terms):
            self._group_terms.setdefault(term.group, []).append(index)
            for name in set(term.all_annotation_names()):
                self._ann_terms.setdefault(name, []).append(index)

    def _group_values(
        self,
        indexes: Sequence[int],
        override: Optional[Mapping[int, int]] = None,
    ) -> List[float]:
        """Aggregate value of one group under every valuation.

        ``override`` substitutes dead masks for (candidate-affected)
        term indexes.
        """
        dead_of = self._term_dead
        if override is None:
            masks = [(self._terms[i].value, dead_of[i]) for i in indexes]
        else:
            masks = [
                (self._terms[i].value, override.get(i, dead_of[i]))
                for i in indexes
            ]
        if self._is_max:
            return self._fold_max(masks)
        return self._fold_sum(masks)

    def _fold_max(self, masks: List[Tuple[float, int]]) -> List[float]:
        out = [0.0] * self.n_vals
        remaining = self._full_mask
        for value, dead in sorted(masks, key=lambda pair: -pair[0]):
            alive = ~dead & remaining
            while alive:
                bit = alive & -alive
                out[bit.bit_length() - 1] = value
                alive ^= bit
            remaining &= dead
            if not remaining:
                break
        return out

    def _fold_sum(self, masks: List[Tuple[float, int]]) -> List[float]:
        total = sum(value for value, _ in masks)
        out = [total] * self.n_vals
        for value, dead in masks:
            dead &= self._full_mask
            while dead:
                bit = dead & -dead
                out[bit.bit_length() - 1] -= value
                dead ^= bit
        return out

    def _align_originals(self) -> List[Dict[Optional[str], float]]:
        """Original vectors per valuation, in current-group coordinates."""
        aligned: List[Dict[Optional[str], float]] = []
        mapping = self.mapping
        for index, valuation in enumerate(self.valuations):
            original = self.computer._original_result(index, valuation)
            vector: Dict[Optional[str], float] = {}
            for key, aggregate in original.items():
                image = mapping.get(key, key) if key is not None else None
                value = aggregate.finalized_value()
                if image in vector:
                    vector[image] = self.monoid.combine(vector[image], value)
                else:
                    vector[image] = value
            aligned.append(vector)
        return aligned

    # -- candidate scoring ---------------------------------------------------------

    def score(self, parts: Sequence[str]) -> Tuple[int, DistanceEstimate]:
        """Size and distance of the merge ``parts → c``."""
        part_set = frozenset(parts)
        merged_mask = self._full_mask
        for name in parts:
            merged_mask &= self._mask[name]
        substituted = dict(self._mask)
        marker = "\x00merged"
        for name in parts:
            substituted[name] = merged_mask
        substituted[marker] = merged_mask

        affected: List[int] = []
        seen: set = set()
        for name in parts:
            for index in self._ann_terms.get(name, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)

        override = {
            index: self._term_mask(self._terms[index], substituted)
            for index in affected
        }

        group_merge = any(
            part in self._group_terms for part in parts
        )
        summary = self._candidate_vectors(part_set, marker, override, group_merge)
        orig = self._orig_for(part_set, marker, group_merge)

        total = 0.0
        total_weight = 0.0
        for index, valuation in enumerate(self.valuations):
            orig_vec = orig[index]
            summ_vec = summary[index]
            keys = orig_vec.keys() | summ_vec.keys()
            value = self.val_func.metric(
                {key: orig_vec.get(key, 0.0) for key in keys},
                {key: summ_vec.get(key, 0.0) for key in keys},
            )
            total += valuation.weight * value
            total_weight += valuation.weight
        distance_value = total / total_weight if total_weight else 0.0
        max_error = self.computer.max_error
        normalized = (
            min(1.0, distance_value / max_error) if max_error > 0 else 0.0
        )
        estimate = DistanceEstimate(
            value=distance_value,
            normalized=normalized,
            n_valuations=self.n_vals,
            exact=True,
        )
        return self._candidate_size(part_set, marker, affected), estimate

    def _candidate_vectors(
        self,
        parts: FrozenSet[str],
        marker: str,
        override: Mapping[int, int],
        group_merge: bool,
    ) -> List[Dict[Optional[str], float]]:
        affected_groups: Dict[Optional[str], List[int]] = {}
        for index in override:
            group = self._terms[index].group
            image = marker if group in parts else group
            affected_groups.setdefault(image, [])
        if group_merge:
            merged_indexes: List[int] = []
            for part in parts:
                merged_indexes.extend(self._group_terms.get(part, ()))
            if merged_indexes:
                affected_groups[marker] = merged_indexes
        for group in list(affected_groups):
            if group == marker:
                continue
            affected_groups[group] = self._group_terms[group]

        recomputed = {
            group: self._group_values(indexes, override)
            for group, indexes in affected_groups.items()
        }
        vectors: List[Dict[Optional[str], float]] = []
        for index in range(self.n_vals):
            vector: Dict[Optional[str], float] = {}
            for group, values in self._baseline.items():
                if group in parts:
                    continue
                if group in recomputed:
                    vector[group] = recomputed[group][index]
                else:
                    vector[group] = values[index]
            if marker in recomputed:
                vector[marker] = recomputed[marker][index]
            vectors.append(vector)
        return vectors

    def _orig_for(
        self, parts: FrozenSet[str], marker: str, group_merge: bool
    ) -> List[Dict[Optional[str], float]]:
        if not group_merge:
            return self._orig_aligned
        adjusted = []
        for vector in self._orig_aligned:
            out: Dict[Optional[str], float] = {}
            for key, value in vector.items():
                image = marker if key in parts else key
                if image in out:
                    out[image] = self.monoid.combine(out[image], value)
                else:
                    out[image] = value
            adjusted.append(out)
        return adjusted

    def _candidate_size(
        self, parts: FrozenSet[str], marker: str, affected: Sequence[int]
    ) -> int:
        """Size after the merge: only affected terms can newly collide."""
        size = self.current.size()
        seen: Dict[Tuple, int] = {}
        for index in affected:
            term = self._terms[index]
            monomial = tuple(
                sorted(marker if name in parts else name for name in term.annotations)
            )
            guards = tuple(
                (
                    tuple(
                        sorted(
                            marker if name in parts else name
                            for name in guard_token.annotations
                        )
                    ),
                    guard_token.value,
                    guard_token.op,
                    guard_token.threshold,
                )
                for guard_token in term.guards
            )
            group = marker if term.group in parts else term.group
            key = (monomial, guards, group)
            if key in seen:
                size -= term.size()
            else:
                seen[key] = index
        return size
