"""The kernel protocol: the narrow waist under the bit-packed scorers.

Every hot fold of the scoring tier funnels through one of these ops,
each defined over the same packed representations the scorers already
use -- little-endian ``array('Q')`` word rows (bit ``i`` ⇔
valuation/draw position ``i``, see
:mod:`repro.core.kernels.masktable`) and ann-id-sorted monomial pair
runs:

* :meth:`~KernelBackend.scatter_false_sets` -- mask *construction*:
  scatter lifted false sets into a contiguous :class:`MaskTable`
  (the per-step precomputation of ``_build_masks``).
* :meth:`~KernelBackend.fold_max` / :meth:`~KernelBackend.fold_sum` --
  per-position group aggregates from ``(value, dead-row)`` term lists
  (the inner loop of ``FastStepScorer._group_values``).
* :meth:`~KernelBackend.baseline_scatter` -- the per-group baseline
  fold over every group at once (step precomputation), so a backend
  can share unpacked mask state across groups.
* :meth:`~KernelBackend.sparse_scores` -- the per-position sparse
  candidate accumulation (base − excluded columns + recomputed
  contribs, finished and weight-multiplied) for the decomposable
  VAL-FUNCs tagged with a ``contrib_kind``.
* :meth:`~KernelBackend.weighted_moments` -- the per-64-draw-block
  weighted sum / weight / sum-of-squares reduction behind the sampled
  batch statistics.
* :meth:`~KernelBackend.fold_and` / :meth:`~KernelBackend.fold_or` /
  :meth:`~KernelBackend.fold_not` /
  :meth:`~KernelBackend.popcount_blocks` /
  :meth:`~KernelBackend.popcount` -- packed word-row combinators
  (mask algebra, survivor counting).
* :meth:`~KernelBackend.merge_monomials` -- the sorted-merge monomial
  product of the interned IR arena.

**The contract is bit-identity, not approximation.**  Each op's result
must equal the reference backend's to the last bit: same floats, same
ints, same ordering.  Backends achieve that by preserving the exact
IEEE operation sequence *per output position* (positions are mutually
independent in every fold, so cross-position evaluation order is
free).  Mask rows are tail-clamped (bits ``>= n_vals`` zero) and the
fold operands arrive tail-clamped; scatter outputs must be bit-for-bit
equal as words.  The differential grids in
``tests/core/test_kernels.py``, ``tests/core/test_sampled_scoring.py``
and ``tests/core/test_parallel_scoring.py`` enforce the contract.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from .masktable import MaskTable, WordRow

#: ``(term value, packed dead-mask word row)`` -- one fold operand.
MaskedValue = Tuple[float, WordRow]

#: ``contrib_kind`` tags :meth:`KernelBackend.sparse_scores` accepts.
#: ``sqdiff``  -- contrib ``d*d`` (d = orig − summ), finish
#:               ``sqrt(t) if t > 0 else 0.0``  (EuclideanDistance);
#: ``absdiff`` -- contrib ``abs(d)``, finish ``t if t > 0 else 0.0``
#:               (AbsoluteDifference);
#: ``isclose01`` -- contrib ``0.0 if isclose(o, s) else 1.0`` with
#:               ``math.isclose`` semantics (rel_tol 1e-9, abs_tol 0),
#:               finish ``0.0 if t == 0.0 else 1.0``  (Disagreement).
SPARSE_KINDS = frozenset({"sqdiff", "absdiff", "isclose01"})


class KernelBackend:
    """Abstract kernel backend; concrete backends override every op."""

    #: Stable backend identifier (``"python"`` / ``"numpy"`` /
    #: ``"native"``).
    name: str = "abstract"

    # -- mask construction ---------------------------------------------------

    def scatter_false_sets(
        self,
        n_rows: int,
        entries: Sequence[Tuple[Sequence[int], Sequence[int]]],
        n_vals: int,
    ) -> MaskTable:
        """Scatter false sets into a fresh ``n_rows × n_words`` table.

        Each entry is ``(row_indexes, positions)``: every listed row
        gets every listed position bit set (OR into whatever earlier
        entries wrote).  The enumerating scorer passes one entry per
        valuation (``positions == [index]``); the sampled scorer one
        entry per *distinct* drawn member carrying all its draw
        positions.  The result is tail-clamped by construction.
        """
        raise NotImplementedError

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        """Per-position MAX of the alive values.

        ``masks`` must arrive in descending value order (the scorers
        keep groups presorted): each position takes the first value
        whose dead row leaves it alive, positions nobody covers stay
        0.0.  ``wanted`` restricts the fold to the set positions of the
        word row; other positions keep 0.0 and must not be read.
        """
        raise NotImplementedError

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        """Per-position SUM of the alive values.

        Every position starts from the full left-to-right term total
        and each term's value is subtracted at its dead positions *in
        term order* -- the subtraction sequence per position is part of
        the bit-identity contract.  ``wanted`` as in :meth:`fold_max`
        (unrestricted positions hold the unfinished total).
        """
        raise NotImplementedError

    def baseline_scatter(
        self,
        groups: Sequence[Tuple[object, Sequence[MaskedValue]]],
        n_vals: int,
        is_max: bool,
    ) -> Dict[object, List[float]]:
        """All per-group baseline folds of one step in a single call.

        Semantically ``{group: fold(masks, n_vals)}`` with the fold
        picked by ``is_max``; a backend may share unpacked mask state
        across groups (terms repeat dead rows freely) but each group's
        output must equal its standalone fold bit for bit.
        """
        fold = self.fold_max if is_max else self.fold_sum
        return {group: fold(masks, n_vals) for group, masks in groups}

    def group_fold(
        self,
        groups: Sequence[Sequence[MaskedValue]],
        n_vals: int,
        is_max: bool,
        wanted: Optional[WordRow] = None,
    ) -> List[Sequence[float]]:
        """All of one candidate's group folds in a single call.

        Semantically ``[fold(masks, n_vals, wanted) for masks in
        groups]`` with the fold picked by ``is_max``.  Candidate
        scoring recomputes a handful of disturbed groups per candidate;
        batching them through one kernel call amortizes the per-call
        dispatch cost that dominates at small word counts.  Each
        group's column must equal its standalone fold bit for bit;
        backends may return any indexable float sequence (the native
        backend hands back ``array('d')`` slices).
        """
        fold = self.fold_max if is_max else self.fold_sum
        return [fold(masks, n_vals, wanted) for masks in groups]

    # -- sparse candidate scoring --------------------------------------------

    def sparse_scores(
        self,
        base: Sequence[float],
        minus: Sequence[Sequence[float]],
        contribs: Sequence[Tuple[Sequence[float], Sequence[float]]],
        weights: Sequence[float],
        kind: str,
    ) -> Tuple[List[float], List[float], float]:
        """Per-position sparse accumulation → ``(accs, wf, total)``.

        Position ``i`` computes, in this exact IEEE order::

            acc  = base[i] − minus[0][i] − minus[1][i] − …
                 + contrib(orig[0][i], vals[0][i]) + …
            wf_i = weights[i] * finish(acc)

        with ``contrib``/``finish`` the closed forms named by ``kind``
        (one of :data:`SPARSE_KINDS`); ``total`` is the left-to-right
        sum of ``wf``.  The dense columns encode absence as 0.0 --
        subtracting or adding an absent coordinate is an IEEE identity,
        which is what makes the columnar form bit-identical to the
        sparse dict walk it replaces.
        """
        raise NotImplementedError

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        """``(Σ w·v, Σ w, Σ w·v·v)`` folded in 64-element blocks.

        Element ``i`` contributes ``w*v``, ``w`` and ``w*v*v`` (left
        associated) to its block's local accumulators; block sums then
        combine left to right -- exactly the blocked accumulation of
        ``SampledStepScorer._compute_batch_stats``.
        """
        raise NotImplementedError

    # -- packed word-row algebra ---------------------------------------------

    def fold_and(self, vectors: Sequence[WordRow]) -> array:
        """Bitwise AND across equal-length word rows."""
        raise NotImplementedError

    def fold_or(self, vectors: Sequence[WordRow]) -> array:
        """Bitwise OR across equal-length word rows."""
        raise NotImplementedError

    def fold_not(self, words: WordRow, n_vals: int) -> array:
        """Bitwise complement of one row, tail-clamped to ``n_vals``."""
        raise NotImplementedError

    def popcount_blocks(self, words: WordRow) -> List[int]:
        """Set-bit count of each 64-bit word."""
        raise NotImplementedError

    def popcount(self, words: WordRow) -> int:
        """Total set bits across the word row."""
        raise NotImplementedError

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        """Merge two ann-id-sorted ``(id, exponent)`` runs, summing
        shared exponents; returns the flat interleaved key tuple."""
        raise NotImplementedError
