"""The kernel protocol: the narrow waist under the bit-packed scorers.

Every hot fold of the scoring tier funnels through one of these ops,
each defined over the same packed representations the scorers already
use -- unbounded-int dead masks (bit ``i`` ⇔ valuation/draw position
``i``), little-endian ``array('Q')`` word vectors, and ann-id-sorted
monomial pair runs:

* :meth:`~KernelBackend.fold_max` / :meth:`~KernelBackend.fold_sum` --
  per-position group aggregates from ``(value, dead-mask)`` term lists
  (the inner loop of ``FastStepScorer._group_values``).
* :meth:`~KernelBackend.baseline_scatter` -- the per-group baseline
  fold over every group at once (step precomputation), so a backend
  can share unpacked mask state across groups.
* :meth:`~KernelBackend.weighted_moments` -- the per-64-draw-block
  weighted sum / weight / sum-of-squares reduction behind the sampled
  batch statistics.
* :meth:`~KernelBackend.fold_and` / :meth:`~KernelBackend.fold_or` /
  :meth:`~KernelBackend.popcount_blocks` /
  :meth:`~KernelBackend.popcount` -- packed word-vector combinators
  over ``array('Q')`` blocks (mask algebra, survivor counting).
* :meth:`~KernelBackend.merge_monomials` -- the sorted-merge monomial
  product of the interned IR arena.

**The contract is bit-identity, not approximation.**  Each op's result
must equal the reference backend's to the last bit: same floats, same
ints, same ordering.  Backends achieve that by preserving the exact
IEEE operation sequence *per output position* (positions are mutually
independent in every fold, so cross-position evaluation order is
free).  The differential grids in ``tests/core/test_kernels.py``,
``tests/core/test_sampled_scoring.py`` and
``tests/core/test_parallel_scoring.py`` enforce the contract.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

#: ``(term value, packed dead mask)`` -- one fold operand.
MaskedValue = Tuple[float, int]


class KernelBackend:
    """Abstract kernel backend; concrete backends override every op."""

    #: Stable backend identifier (``"python"`` / ``"numpy"``).
    name: str = "abstract"

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
    ) -> List[float]:
        """Per-position MAX of the alive values.

        ``masks`` must arrive in descending value order (the scorers
        keep groups presorted): each position takes the first value
        whose mask leaves it alive, positions nobody covers stay 0.0.
        ``wanted`` restricts the fold to the set positions of the
        bitmask; other positions keep 0.0 and must not be read.
        """
        raise NotImplementedError

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
    ) -> List[float]:
        """Per-position SUM of the alive values.

        Every position starts from the full left-to-right term total
        and each term's value is subtracted at its dead positions *in
        term order* -- the subtraction sequence per position is part of
        the bit-identity contract.  ``wanted`` as in :meth:`fold_max`
        (unrestricted positions hold the unfinished total).
        """
        raise NotImplementedError

    def baseline_scatter(
        self,
        groups: Sequence[Tuple[object, Sequence[MaskedValue]]],
        n_vals: int,
        is_max: bool,
    ) -> Dict[object, List[float]]:
        """All per-group baseline folds of one step in a single call.

        Semantically ``{group: fold(masks, n_vals)}`` with the fold
        picked by ``is_max``; a backend may share unpacked mask state
        across groups (terms repeat dead masks freely) but each group's
        output must equal its standalone fold bit for bit.
        """
        fold = self.fold_max if is_max else self.fold_sum
        return {group: fold(masks, n_vals) for group, masks in groups}

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        """``(Σ w·v, Σ w, Σ w·v·v)`` folded in 64-element blocks.

        Element ``i`` contributes ``w*v``, ``w`` and ``w*v*v`` (left
        associated) to its block's local accumulators; block sums then
        combine left to right -- exactly the blocked accumulation of
        ``SampledStepScorer._compute_batch_stats``.
        """
        raise NotImplementedError

    # -- packed word-vector algebra ------------------------------------------

    def fold_and(self, vectors: Sequence[Sequence[int]]) -> array:
        """Bitwise AND across equal-length ``array('Q')`` word vectors."""
        raise NotImplementedError

    def fold_or(self, vectors: Sequence[Sequence[int]]) -> array:
        """Bitwise OR across equal-length ``array('Q')`` word vectors."""
        raise NotImplementedError

    def popcount_blocks(self, words: Sequence[int]) -> List[int]:
        """Set-bit count of each 64-bit word."""
        raise NotImplementedError

    def popcount(self, words: Sequence[int]) -> int:
        """Total set bits across the word vector."""
        raise NotImplementedError

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        """Merge two ann-id-sorted ``(id, exponent)`` runs, summing
        shared exponents; returns the flat interleaved key tuple."""
        raise NotImplementedError
