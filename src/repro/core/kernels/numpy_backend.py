"""The numpy backend: word-vector folds, bit-identical to the loops.

Importing this module requires numpy; :mod:`repro.core.kernels` probes
the import and degrades to the python reference when it fails.

Bit-identity is engineered, not assumed:

* Dead masks unpack to boolean position vectors
  (``np.unpackbits(..., bitorder="little")`` over the mask's
  little-endian bytes -- the same position ↔ bit correspondence as the
  int tricks).  MAX *assigns* values through boolean indexing (no
  accumulation, trivially exact) and SUM applies each term's
  subtraction through boolean indexing *in term order*, so every
  position sees the identical IEEE operation sequence the reference
  loop performs there.
* The blocked moments use ``np.cumsum`` along the 64-wide block axis
  -- a strictly sequential scan, unlike ``np.sum``'s pairwise
  reduction, which would associate differently -- and combine block
  sums left to right in python floats.  The ragged tail block is
  folded in python to sidestep padding artifacts.
* Outputs convert back through ``.tolist()`` so downstream consumers
  receive ordinary python floats/ints, indistinguishable from the
  reference backend's.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as _np

from .protocol import KernelBackend, MaskedValue

#: ``np.bitwise_count`` landed in numpy 2.0; older numpys fall back to
#: an unpack-based count.
_BITWISE_COUNT = getattr(_np, "bitwise_count", None)


class NumpyKernel(KernelBackend):
    """Vectorized folds over zero-copy views of the packed layouts."""

    name = "numpy"

    # -- mask unpacking ------------------------------------------------------

    @staticmethod
    def _dead_vector(mask: int, n_vals: int, cache: Optional[dict] = None):
        """Boolean position vector of one packed dead mask."""
        if cache is not None:
            hit = cache.get(mask)
            if hit is not None:
                return hit
        if mask:
            clipped = mask & ((1 << n_vals) - 1)
            raw = clipped.to_bytes((n_vals + 7) // 8, "little")
            bits = _np.unpackbits(
                _np.frombuffer(raw, dtype=_np.uint8),
                count=n_vals,
                bitorder="little",
            ).view(_np.bool_)
        else:
            bits = _np.zeros(n_vals, dtype=_np.bool_)
        if cache is not None:
            cache[mask] = bits
        return bits

    @staticmethod
    def _word_vector(words: Sequence[int]):
        """Zero-copy uint64 view of an ``array('Q')`` (copy otherwise)."""
        if isinstance(words, (array, bytes, bytearray, memoryview)):
            return _np.frombuffer(words, dtype=_np.uint64)
        return _np.asarray(words, dtype=_np.uint64)

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
        _cache: Optional[dict] = None,
    ) -> List[float]:
        out = _np.zeros(n_vals, dtype=_np.float64)
        if wanted is None:
            remaining = _np.ones(n_vals, dtype=_np.bool_)
        else:
            remaining = self._dead_vector(wanted, n_vals).copy()
        for value, dead in masks:
            dead_vec = self._dead_vector(dead, n_vals, _cache)
            out[remaining & ~dead_vec] = value
            remaining &= dead_vec
            if not remaining.any():
                break
        return out.tolist()

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
        _cache: Optional[dict] = None,
    ) -> List[float]:
        # The left-to-right term total in python floats, exactly as the
        # reference's C-level sum() accumulates it.
        total = 0.0
        for value, _ in masks:
            total += value
        out = _np.full(n_vals, total, dtype=_np.float64)
        limit = (
            None if wanted is None else self._dead_vector(wanted, n_vals)
        )
        for value, dead in masks:
            dead_vec = self._dead_vector(dead, n_vals, _cache)
            if limit is not None:
                dead_vec = dead_vec & limit
            out[dead_vec] -= value
        return out.tolist()

    def baseline_scatter(
        self,
        groups: Sequence[Tuple[object, Sequence[MaskedValue]]],
        n_vals: int,
        is_max: bool,
    ) -> Dict[object, List[float]]:
        # One unpack memo across every group of the step: distinct dead
        # masks repeat heavily (terms share annotations), so the
        # expensive int → vector conversion amortizes.
        cache: dict = {}
        if is_max:
            return {
                group: self.fold_max(masks, n_vals, _cache=cache)
                for group, masks in groups
            }
        return {
            group: self.fold_sum(masks, n_vals, _cache=cache)
            for group, masks in groups
        }

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        v = _np.asarray(values, dtype=_np.float64)
        w = _np.asarray(weights, dtype=_np.float64)
        wv = w * v
        wvv = wv * v
        n = len(v)
        full = n - (n % 64)
        succ = 0.0
        weight_sum = 0.0
        sumsq = 0.0
        if full:
            # cumsum is a sequential scan: its last column equals the
            # left-to-right in-block sum bit for bit (np.sum would not).
            block_succ = _np.cumsum(wv[:full].reshape(-1, 64), axis=1)[:, -1]
            block_weight = _np.cumsum(w[:full].reshape(-1, 64), axis=1)[:, -1]
            block_sumsq = _np.cumsum(wvv[:full].reshape(-1, 64), axis=1)[:, -1]
            for index in range(len(block_succ)):
                succ += float(block_succ[index])
                weight_sum += float(block_weight[index])
                sumsq += float(block_sumsq[index])
        if full < n:
            block_s = 0.0
            block_w = 0.0
            block_q = 0.0
            tail_wv = wv[full:].tolist()
            tail_w = w[full:].tolist()
            tail_wvv = wvv[full:].tolist()
            for index in range(n - full):
                block_s += tail_wv[index]
                block_w += tail_w[index]
                block_q += tail_wvv[index]
            succ += block_s
            weight_sum += block_w
            sumsq += block_q
        return succ, weight_sum, sumsq

    # -- packed word-vector algebra ------------------------------------------

    def fold_and(self, vectors: Sequence[Sequence[int]]) -> array:
        if not vectors:
            raise ValueError("fold_and requires at least one vector")
        acc = self._word_vector(vectors[0]).copy()
        for words in vectors[1:]:
            acc &= self._word_vector(words)
        return array("Q", acc.tobytes())

    def fold_or(self, vectors: Sequence[Sequence[int]]) -> array:
        if not vectors:
            raise ValueError("fold_or requires at least one vector")
        acc = self._word_vector(vectors[0]).copy()
        for words in vectors[1:]:
            acc |= self._word_vector(words)
        return array("Q", acc.tobytes())

    def popcount_blocks(self, words: Sequence[int]) -> List[int]:
        vec = self._word_vector(words)
        if _BITWISE_COUNT is not None:
            return [int(count) for count in _BITWISE_COUNT(vec)]
        unpacked = _np.unpackbits(vec.view(_np.uint8)).reshape(-1, 64)
        return [int(count) for count in unpacked.sum(axis=1)]

    def popcount(self, words: Sequence[int]) -> int:
        vec = self._word_vector(words)
        if _BITWISE_COUNT is not None:
            return int(_BITWISE_COUNT(vec).sum())
        return int(_np.unpackbits(vec.view(_np.uint8)).sum())

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        if not first:
            pairs = second
        elif not second:
            pairs = first
        else:
            pairs = None
        if pairs is not None:
            flat: List[int] = []
            for ann_id, exponent in pairs:
                flat.append(ann_id)
                flat.append(exponent)
            return tuple(flat)
        stacked = _np.array(
            list(first) + list(second), dtype=_np.int64
        ).reshape(-1, 2)
        ids, inverse = _np.unique(stacked[:, 0], return_inverse=True)
        exponents = _np.zeros(len(ids), dtype=_np.int64)
        _np.add.at(exponents, inverse, stacked[:, 1])
        out = _np.empty(2 * len(ids), dtype=_np.int64)
        out[0::2] = ids
        out[1::2] = exponents
        return tuple(out.tolist())
