"""The numpy backend: word-row folds, bit-identical to the loops.

Importing this module requires numpy; :mod:`repro.core.kernels` probes
the import and degrades to the python reference when it fails.

Bit-identity is engineered, not assumed:

* Dead-mask word rows unpack to boolean position vectors
  (``np.unpackbits(..., bitorder="little")`` over the row's raw
  little-endian bytes -- the same position ↔ bit correspondence as the
  word tricks).  MAX *assigns* values through boolean indexing (no
  accumulation, trivially exact) and SUM applies each term's
  subtraction through boolean indexing *in term order*, so every
  position sees the identical IEEE operation sequence the reference
  loop performs there.
* ``scatter_false_sets`` scatters into a boolean matrix and packs with
  ``np.packbits(axis=1, bitorder="little")`` -- the same words the
  reference's ``|=`` loop produces, built in bulk.
* ``sparse_scores`` chains the per-position subtractions/additions as
  separate elementwise ops in operand order, finishes through
  IEEE-exact primitives only (multiply, abs, sqrt, compares -- never
  libm ``pow``), and totals via ``np.cumsum`` (a strictly sequential
  scan whose last element equals the left-to-right sum bit for bit;
  ``np.sum``'s pairwise reduction would associate differently).
* The blocked moments use the same cumsum trick along the 64-wide
  block axis and combine block sums left to right in python floats.
  The ragged tail block is folded in python to sidestep padding
  artifacts.
* Outputs convert back through ``.tolist()`` so downstream consumers
  receive ordinary python floats/ints, indistinguishable from the
  reference backend's.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as _np

from .masktable import MaskTable, full_row, words_for
from .protocol import KernelBackend, MaskedValue, WordRow
from .reference import PythonKernel as _Reference

#: Below this many words the plain word loop beats the per-call numpy
#: dispatch for the bitwise combinators (measured crossover ~8-16
#: words); bitwise integer ops are exact, so the result is identical.
_SMALL_WORDS = 8

#: ``np.bitwise_count`` landed in numpy 2.0; older numpys fall back to
#: a word-wise bit-twiddling popcount (still exact integers).
_BITWISE_COUNT = getattr(_np, "bitwise_count", None)

_U64 = _np.uint64
_POP_M1 = _U64(0x5555555555555555)
_POP_M2 = _U64(0x3333333333333333)
_POP_M4 = _U64(0x0F0F0F0F0F0F0F0F)
_POP_H01 = _U64(0x0101010101010101)


def _popcount_words(vec):
    """Per-word popcount via the classic SWAR bit-twiddle.

    All arithmetic is exact modulo 2^64 (uint64 wraps silently), so
    the byte-sum collapse ``(v * 0x0101...) >> 56`` yields the exact
    set-bit count of each word.
    """
    v = vec.astype(_np.uint64, copy=True)
    v -= (v >> _U64(1)) & _POP_M1
    v = (v & _POP_M2) + ((v >> _U64(2)) & _POP_M2)
    v = (v + (v >> _U64(4))) & _POP_M4
    return (v * _POP_H01) >> _U64(56)


class NumpyKernel(KernelBackend):
    """Vectorized folds over zero-copy views of the packed layouts."""

    name = "numpy"

    #: Entries kept in the cross-call unpack memo before it is dropped
    #: wholesale; one step touches a few hundred distinct dead rows.
    _MEMO_CAP = 4096

    def __init__(self):
        # words → bool-vector unpack memo shared across calls.  Keyed
        # by row *content* (bytes), so override rows with equal bits
        # simply hit the same entry; cached vectors are treated as
        # immutable by every consumer.
        self._unpack_memo: dict = {}

    def _shared_memo(self) -> dict:
        memo = self._unpack_memo
        if len(memo) >= self._MEMO_CAP:
            memo.clear()
        return memo

    # -- row views -----------------------------------------------------------

    @staticmethod
    def _row_key(row: WordRow, n_vals: int):
        """Hashable identity of a row's bits (unpack-memo key).

        ``n_vals`` is part of the key: the memo outlives a single
        scorer, and rows with identical bytes under different
        valuation counts unpack to different-length vectors.
        """
        if isinstance(row, (array, memoryview)):
            return n_vals, row.tobytes()
        if isinstance(row, (bytes, bytearray)):
            return n_vals, bytes(row)
        return n_vals, tuple(row)

    @staticmethod
    def _dead_vector(row: WordRow, n_vals: int, cache: Optional[dict] = None):
        """Boolean position vector of one packed dead-mask row."""
        if cache is not None:
            key = NumpyKernel._row_key(row, n_vals)
            hit = cache.get(key)
            if hit is not None:
                return hit
        if isinstance(row, (array, memoryview, bytes, bytearray)):
            raw = _np.frombuffer(row, dtype=_np.uint8)
        else:
            raw = _np.frombuffer(array("Q", row), dtype=_np.uint8)
        bits = _np.unpackbits(
            raw, count=n_vals, bitorder="little"
        ).view(_np.bool_)
        if cache is not None:
            cache[key] = bits
        return bits

    @staticmethod
    def _word_vector(words: WordRow):
        """Zero-copy uint64 view of an ``array('Q')`` (copy otherwise)."""
        if isinstance(words, (array, bytes, bytearray, memoryview)):
            return _np.frombuffer(words, dtype=_np.uint64)
        return _np.asarray(words, dtype=_np.uint64)

    @staticmethod
    def _float_vector(values: Sequence[float]):
        """Zero-copy float64 view of an ``array('d')`` (copy otherwise)."""
        if isinstance(values, (array, memoryview, bytes, bytearray)):
            return _np.frombuffer(values, dtype=_np.float64)
        return _np.asarray(values, dtype=_np.float64)

    # -- mask construction ---------------------------------------------------

    def scatter_false_sets(
        self,
        n_rows: int,
        entries: Sequence[Tuple[Sequence[int], Sequence[int]]],
        n_vals: int,
    ) -> MaskTable:
        n_words = words_for(n_vals)
        # Width n_words*64 (not n_vals) so packbits emits exactly the
        # table's words; positions < n_vals keep the tail clamped.
        bits = _np.zeros((n_rows, n_words * 64), dtype=_np.uint8)
        row_list: List[int] = []
        pos_list: List[int] = []
        for rows, positions in entries:
            if not rows or not positions:
                continue
            if len(positions) == 1:
                position = positions[0]
                row_list.extend(rows)
                pos_list.extend([position] * len(rows))
            elif len(rows) == 1:
                row = rows[0]
                row_list.extend([row] * len(positions))
                pos_list.extend(positions)
            else:
                for row in rows:
                    row_list.extend([row] * len(positions))
                    pos_list.extend(positions)
        if row_list:
            bits[row_list, pos_list] = 1
        packed = _np.packbits(bits, axis=1, bitorder="little")
        return MaskTable(n_rows, n_vals, array("Q", packed.tobytes()))

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
        _cache: Optional[dict] = None,
    ) -> List[float]:
        out = _np.zeros(n_vals, dtype=_np.float64)
        if wanted is None:
            remaining = _np.ones(n_vals, dtype=_np.bool_)
        else:
            remaining = self._dead_vector(wanted, n_vals).copy()
        for value, dead in masks:
            dead_vec = self._dead_vector(dead, n_vals, _cache)
            out[remaining & ~dead_vec] = value
            remaining &= dead_vec
            if not remaining.any():
                break
        return out.tolist()

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
        _cache: Optional[dict] = None,
    ) -> List[float]:
        # The left-to-right term total in python floats, exactly as the
        # reference's C-level sum() accumulates it.
        total = 0.0
        for value, _ in masks:
            total += value
        out = _np.full(n_vals, total, dtype=_np.float64)
        limit = (
            None if wanted is None else self._dead_vector(wanted, n_vals)
        )
        for value, dead in masks:
            dead_vec = self._dead_vector(dead, n_vals, _cache)
            if limit is not None:
                dead_vec = dead_vec & limit
            out[dead_vec] -= value
        return out.tolist()

    def baseline_scatter(
        self,
        groups: Sequence[Tuple[object, Sequence[MaskedValue]]],
        n_vals: int,
        is_max: bool,
    ) -> Dict[object, List[float]]:
        # One unpack memo across every group of the step: distinct dead
        # rows repeat heavily (terms share annotations), so the
        # expensive words → vector conversion amortizes.
        cache: dict = {}
        if is_max:
            return {
                group: self.fold_max(masks, n_vals, _cache=cache)
                for group, masks in groups
            }
        return {
            group: self.fold_sum(masks, n_vals, _cache=cache)
            for group, masks in groups
        }

    def group_fold(
        self,
        groups: Sequence[Sequence[MaskedValue]],
        n_vals: int,
        is_max: bool,
        wanted: Optional[WordRow] = None,
    ) -> List[List[float]]:
        # The cross-call memo pays off here: candidate scoring passes
        # the same step-stable dead rows hundreds of times (only the
        # handful of override rows are fresh each candidate).
        cache = self._shared_memo()
        if is_max:
            return [
                self.fold_max(masks, n_vals, wanted, _cache=cache)
                for masks in groups
            ]
        return [
            self.fold_sum(masks, n_vals, wanted, _cache=cache)
            for masks in groups
        ]

    # -- sparse candidate scoring --------------------------------------------

    def sparse_scores(
        self,
        base: Sequence[float],
        minus: Sequence[Sequence[float]],
        contribs: Sequence[Tuple[Sequence[float], Sequence[float]]],
        weights: Sequence[float],
        kind: str,
    ) -> Tuple[List[float], List[float], float]:
        acc = self._float_vector(base).astype(_np.float64, copy=True)
        for column in minus:
            acc -= self._float_vector(column)
        for originals, values in contribs:
            origs = self._float_vector(originals)
            vals = self._float_vector(values)
            if kind == "sqdiff":
                delta = origs - vals
                acc += delta * delta
            elif kind == "absdiff":
                acc += _np.abs(origs - vals)
            elif kind == "isclose01":
                # inf/nan operands legitimately produce nan/inf diffs
                # here; the mask logic handles them (equality first,
                # infinite diffs excluded), so the IEEE flags are noise.
                with _np.errstate(invalid="ignore", over="ignore"):
                    diff = _np.abs(origs - vals)
                    bound = 1e-9 * _np.maximum(
                        _np.abs(origs), _np.abs(vals)
                    )
                    close = (origs == vals) | (
                        (diff <= bound) & _np.isfinite(diff)
                    )
                acc += _np.where(close, 0.0, 1.0)
            else:
                raise KeyError(kind)
        if kind == "sqdiff":
            positive = acc > 0.0
            finished = _np.where(
                positive, _np.sqrt(_np.where(positive, acc, 0.0)), 0.0
            )
        elif kind == "absdiff":
            finished = _np.where(acc > 0.0, acc, 0.0)
        else:
            finished = _np.where(acc == 0.0, 0.0, 1.0)
        wf = self._float_vector(weights) * finished
        total = float(wf.cumsum()[-1]) if len(wf) else 0.0
        return acc.tolist(), wf.tolist(), total

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        v = _np.asarray(values, dtype=_np.float64)
        w = _np.asarray(weights, dtype=_np.float64)
        wv = w * v
        wvv = wv * v
        n = len(v)
        full = n - (n % 64)
        succ = 0.0
        weight_sum = 0.0
        sumsq = 0.0
        if full:
            # cumsum is a sequential scan: its last column equals the
            # left-to-right in-block sum bit for bit (np.sum would not).
            block_succ = _np.cumsum(wv[:full].reshape(-1, 64), axis=1)[:, -1]
            block_weight = _np.cumsum(w[:full].reshape(-1, 64), axis=1)[:, -1]
            block_sumsq = _np.cumsum(wvv[:full].reshape(-1, 64), axis=1)[:, -1]
            for index in range(len(block_succ)):
                succ += float(block_succ[index])
                weight_sum += float(block_weight[index])
                sumsq += float(block_sumsq[index])
        if full < n:
            block_s = 0.0
            block_w = 0.0
            block_q = 0.0
            tail_wv = wv[full:].tolist()
            tail_w = w[full:].tolist()
            tail_wvv = wvv[full:].tolist()
            for index in range(n - full):
                block_s += tail_wv[index]
                block_w += tail_w[index]
                block_q += tail_wvv[index]
            succ += block_s
            weight_sum += block_w
            sumsq += block_q
        return succ, weight_sum, sumsq

    # -- packed word-row algebra ---------------------------------------------

    def fold_and(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_and requires at least one vector")
        if len(vectors[0]) < _SMALL_WORDS:
            return _Reference.fold_and(self, vectors)
        acc = self._word_vector(vectors[0]).copy()
        for words in vectors[1:]:
            acc &= self._word_vector(words)
        return array("Q", acc.tobytes())

    def fold_or(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_or requires at least one vector")
        if len(vectors[0]) < _SMALL_WORDS:
            return _Reference.fold_or(self, vectors)
        acc = self._word_vector(vectors[0]).copy()
        for words in vectors[1:]:
            acc |= self._word_vector(words)
        return array("Q", acc.tobytes())

    def fold_not(self, words: WordRow, n_vals: int) -> array:
        vec = _np.bitwise_not(self._word_vector(words))
        vec &= self._word_vector(full_row(n_vals))
        return array("Q", vec.tobytes())

    def popcount_blocks(self, words: WordRow) -> List[int]:
        vec = self._word_vector(words)
        if _BITWISE_COUNT is not None:
            return [int(count) for count in _BITWISE_COUNT(vec)]
        return [int(count) for count in _popcount_words(vec)]

    def popcount(self, words: WordRow) -> int:
        vec = self._word_vector(words)
        if _BITWISE_COUNT is not None:
            return int(_BITWISE_COUNT(vec).sum())
        return int(_popcount_words(vec).sum())

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        if not first:
            pairs = second
        elif not second:
            pairs = first
        else:
            pairs = None
        if pairs is not None:
            flat: List[int] = []
            for ann_id, exponent in pairs:
                flat.append(ann_id)
                flat.append(exponent)
            return tuple(flat)
        stacked = _np.array(
            list(first) + list(second), dtype=_np.int64
        ).reshape(-1, 2)
        ids, inverse = _np.unique(stacked[:, 0], return_inverse=True)
        exponents = _np.zeros(len(ids), dtype=_np.int64)
        _np.add.at(exponents, inverse, stacked[:, 1])
        out = _np.empty(2 * len(ids), dtype=_np.int64)
        out[0::2] = ids
        out[1::2] = exponents
        return tuple(out.tolist())
