"""The pure-python reference backend.

These are the exact loops the scorers ran inline before the kernel
tier existed (PR 1's enumerating folds, PR 5's blocked batch
statistics, PR 3's sorted-merge monomial product), extracted verbatim
and re-expressed over packed word rows: the reference backend
*defines* the bit-identity contract every other backend is tested
against, so nothing here may be "improved" in a way that changes a
single output bit.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from .masktable import MaskTable, WORD_MASK, clamp_row, full_row, words_for
from .protocol import KernelBackend, MaskedValue, WordRow


def _contrib_sqdiff(original: float, summary: float) -> float:
    delta = original - summary
    return delta * delta


def _finish_sqdiff(total: float) -> float:
    return math.sqrt(total) if total > 0.0 else 0.0


def _contrib_absdiff(original: float, summary: float) -> float:
    return abs(original - summary)


def _finish_absdiff(total: float) -> float:
    return total if total > 0.0 else 0.0


def _contrib_isclose01(original: float, summary: float) -> float:
    return 0.0 if math.isclose(original, summary) else 1.0


def _finish_isclose01(total: float) -> float:
    return 0.0 if total == 0.0 else 1.0


#: The closed contrib/finish forms behind each ``contrib_kind`` tag.
#: These must stay character-for-character equivalent to the
#: ``metric_contrib``/``metric_finish`` pairs of the decomposable
#: VAL-FUNCs (``tests/core/test_kernels.py`` pins the equivalence).
SPARSE_FORMS = {
    "sqdiff": (_contrib_sqdiff, _finish_sqdiff),
    "absdiff": (_contrib_absdiff, _finish_absdiff),
    "isclose01": (_contrib_isclose01, _finish_isclose01),
}


class PythonKernel(KernelBackend):
    """Word-row bit tricks and C-level ``sum``/``array`` loops."""

    name = "python"

    # -- mask construction ---------------------------------------------------

    def scatter_false_sets(
        self,
        n_rows: int,
        entries: Sequence[Tuple[Sequence[int], Sequence[int]]],
        n_vals: int,
    ) -> MaskTable:
        table = MaskTable(n_rows, n_vals)
        words = table.words
        n_words = table.n_words
        for rows, positions in entries:
            for position in positions:
                bit = 1 << (position & 63)
                offset = position >> 6
                for row in rows:
                    words[row * n_words + offset] |= bit
        return table

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        out = [0.0] * n_vals
        n_words = words_for(n_vals)
        remaining = (
            full_row(n_vals)
            if wanted is None
            else clamp_row(array("Q", wanted), n_vals)
        )
        alive_words = sum(1 for word in remaining if word)
        for value, dead in masks:
            if not alive_words:
                break
            for index in range(n_words):
                rem = remaining[index]
                if not rem:
                    continue
                alive = rem & ~dead[index]
                base = index << 6
                while alive:
                    bit = alive & -alive
                    out[base + bit.bit_length() - 1] = value
                    alive ^= bit
                rem &= dead[index]
                remaining[index] = rem
                if not rem:
                    alive_words -= 1
        return out

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        total = sum(value for value, _ in masks)
        out = [total] * n_vals
        n_words = words_for(n_vals)
        limit = (
            full_row(n_vals)
            if wanted is None
            else clamp_row(array("Q", wanted), n_vals)
        )
        for value, dead in masks:
            for index in range(n_words):
                bits = dead[index] & limit[index]
                base = index << 6
                while bits:
                    bit = bits & -bits
                    out[base + bit.bit_length() - 1] -= value
                    bits ^= bit
        return out

    # -- sparse candidate scoring --------------------------------------------

    def sparse_scores(
        self,
        base: Sequence[float],
        minus: Sequence[Sequence[float]],
        contribs: Sequence[Tuple[Sequence[float], Sequence[float]]],
        weights: Sequence[float],
        kind: str,
    ) -> Tuple[List[float], List[float], float]:
        contrib, finish = SPARSE_FORMS[kind]
        n_vals = len(base)
        accs = [0.0] * n_vals
        wf = [0.0] * n_vals
        total = 0.0
        for index in range(n_vals):
            acc = base[index]
            for column in minus:
                acc -= column[index]
            for originals, values in contribs:
                acc += contrib(originals[index], values[index])
            accs[index] = acc
            weighted = weights[index] * finish(acc)
            wf[index] = weighted
            total += weighted
        return accs, wf, total

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        succ = 0.0
        weight_sum = 0.0
        sumsq = 0.0
        n = len(values)
        for start in range(0, n, 64):
            block_succ = 0.0
            block_weight = 0.0
            block_sumsq = 0.0
            for index in range(start, min(start + 64, n)):
                value = values[index]
                weight = weights[index]
                block_succ += weight * value
                block_weight += weight
                block_sumsq += weight * value * value
            succ += block_succ
            weight_sum += block_weight
            sumsq += block_sumsq
        return succ, weight_sum, sumsq

    # -- packed word-row algebra ---------------------------------------------

    def fold_and(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_and requires at least one vector")
        acc = array("Q", vectors[0])
        for words in vectors[1:]:
            for index, word in enumerate(words):
                acc[index] &= word
        return acc

    def fold_or(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_or requires at least one vector")
        acc = array("Q", vectors[0])
        for words in vectors[1:]:
            for index, word in enumerate(words):
                acc[index] |= word
        return acc

    def fold_not(self, words: WordRow, n_vals: int) -> array:
        clamp = full_row(n_vals)
        out = array("Q", words)
        for index, word in enumerate(out):
            out[index] = (word ^ WORD_MASK) & clamp[index]
        return out

    def popcount_blocks(self, words: WordRow) -> List[int]:
        return [int(word).bit_count() for word in words]

    def popcount(self, words: WordRow) -> int:
        total = 0
        for word in words:
            total += int(word).bit_count()
        return total

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        flat: List[int] = []
        i = j = 0
        n_first, n_second = len(first), len(second)
        while i < n_first and j < n_second:
            ann_a, exp_a = first[i]
            ann_b, exp_b = second[j]
            if ann_a == ann_b:
                flat.append(ann_a)
                flat.append(exp_a + exp_b)
                i += 1
                j += 1
            elif ann_a < ann_b:
                flat.append(ann_a)
                flat.append(exp_a)
                i += 1
            else:
                flat.append(ann_b)
                flat.append(exp_b)
                j += 1
        for ann_id, exponent in first[i:]:
            flat.append(ann_id)
            flat.append(exponent)
        for ann_id, exponent in second[j:]:
            flat.append(ann_id)
            flat.append(exponent)
        return tuple(flat)
