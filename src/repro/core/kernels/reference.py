"""The pure-python reference backend.

These are the exact loops the scorers ran inline before the kernel
tier existed (PR 1's enumerating folds, PR 5's blocked batch
statistics, PR 3's sorted-merge monomial product), extracted verbatim:
the reference backend *defines* the bit-identity contract every other
backend is tested against, so nothing here may be "improved" in a way
that changes a single output bit.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple

from .protocol import KernelBackend, MaskedValue


class PythonKernel(KernelBackend):
    """Unbounded-int bit tricks and C-level ``sum``/``array`` loops."""

    name = "python"

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
    ) -> List[float]:
        out = [0.0] * n_vals
        full_mask = (1 << n_vals) - 1
        remaining = full_mask if wanted is None else wanted & full_mask
        for value, dead in masks:
            alive = ~dead & remaining
            while alive:
                bit = alive & -alive
                out[bit.bit_length() - 1] = value
                alive ^= bit
            remaining &= dead
            if not remaining:
                break
        return out

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[int] = None,
    ) -> List[float]:
        total = sum(value for value, _ in masks)
        out = [total] * n_vals
        full_mask = (1 << n_vals) - 1
        limit = full_mask if wanted is None else wanted & full_mask
        for value, dead in masks:
            dead &= limit
            while dead:
                bit = dead & -dead
                out[bit.bit_length() - 1] -= value
                dead ^= bit
        return out

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        succ = 0.0
        weight_sum = 0.0
        sumsq = 0.0
        n = len(values)
        for start in range(0, n, 64):
            block_succ = 0.0
            block_weight = 0.0
            block_sumsq = 0.0
            for index in range(start, min(start + 64, n)):
                value = values[index]
                weight = weights[index]
                block_succ += weight * value
                block_weight += weight
                block_sumsq += weight * value * value
            succ += block_succ
            weight_sum += block_weight
            sumsq += block_sumsq
        return succ, weight_sum, sumsq

    # -- packed word-vector algebra ------------------------------------------

    def fold_and(self, vectors: Sequence[Sequence[int]]) -> array:
        if not vectors:
            raise ValueError("fold_and requires at least one vector")
        acc = array("Q", vectors[0])
        for words in vectors[1:]:
            for index, word in enumerate(words):
                acc[index] &= word
        return acc

    def fold_or(self, vectors: Sequence[Sequence[int]]) -> array:
        if not vectors:
            raise ValueError("fold_or requires at least one vector")
        acc = array("Q", vectors[0])
        for words in vectors[1:]:
            for index, word in enumerate(words):
                acc[index] |= word
        return acc

    def popcount_blocks(self, words: Sequence[int]) -> List[int]:
        return [int(word).bit_count() for word in words]

    def popcount(self, words: Sequence[int]) -> int:
        total = 0
        for word in words:
            total += int(word).bit_count()
        return total

    # -- interned-arena monomial product -------------------------------------

    def merge_monomials(
        self,
        first: Sequence[Tuple[int, int]],
        second: Sequence[Tuple[int, int]],
    ) -> Tuple[int, ...]:
        flat: List[int] = []
        i = j = 0
        n_first, n_second = len(first), len(second)
        while i < n_first and j < n_second:
            ann_a, exp_a = first[i]
            ann_b, exp_b = second[j]
            if ann_a == ann_b:
                flat.append(ann_a)
                flat.append(exp_a + exp_b)
                i += 1
                j += 1
            elif ann_a < ann_b:
                flat.append(ann_a)
                flat.append(exp_a)
                i += 1
            else:
                flat.append(ann_b)
                flat.append(exp_b)
                j += 1
        for ann_id, exponent in first[i:]:
            flat.append(ann_id)
            flat.append(exponent)
        for ann_id, exponent in second[j:]:
            flat.append(ann_id)
            flat.append(exponent)
        return tuple(flat)
