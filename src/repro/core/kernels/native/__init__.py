"""Native kernel package: C source, build glue, ctypes loader.

``load_library()`` returns the configured :class:`ctypes.CDLL`
(compiling on demand via :mod:`.build`); it raises
:class:`NativeBuildError` when the library cannot be produced or
loaded, which the kernel resolution layer reports as a structured
``kernel_fallback`` and degrades past.
"""

from __future__ import annotations

import ctypes
from typing import Optional

from .build import NativeBuildError, ensure_built, find_compiler

__all__ = ["NativeBuildError", "ensure_built", "find_compiler", "load_library"]

_LIB: Optional[ctypes.CDLL] = None

_i64 = ctypes.c_int64
_u64 = ctypes.c_uint64
_f64 = ctypes.c_double
#: Every pointer parameter is declared void* so callers can pass raw
#: buffer addresses (``array.buffer_info()[0]``) and ctypes arrays
#: interchangeably without per-call casts.
_ptr = ctypes.c_void_p

_SIGNATURES = {
    "prox_scatter": (None, [_ptr, _i64, _ptr, _ptr, _ptr, _ptr, _i64]),
    "prox_fold_and": (None, [_ptr, _ptr, _i64, _i64]),
    "prox_fold_or": (None, [_ptr, _ptr, _i64, _i64]),
    "prox_fold_not": (None, [_ptr, _ptr, _i64, _u64]),
    "prox_popcount": (_i64, [_ptr, _i64]),
    "prox_popcount_blocks": (None, [_ptr, _i64, _ptr]),
    "prox_fold_max": (
        None,
        [_ptr, _ptr, _ptr, _i64, _i64, _u64, _ptr, _ptr],
    ),
    "prox_fold_sum": (None, [_ptr, _ptr, _ptr, _i64, _i64, _i64, _ptr]),
    "prox_fold_max_groups": (
        None,
        [_ptr, _ptr, _ptr, _ptr, _i64, _i64, _i64, _u64, _ptr, _ptr],
    ),
    "prox_fold_sum_groups": (
        None,
        [_ptr, _ptr, _ptr, _ptr, _i64, _i64, _i64, _ptr],
    ),
    "prox_sparse_scores": (
        _f64,
        [_ptr, _ptr, _i64, _ptr, _ptr, _i64, _ptr, _i64, _i64, _ptr, _ptr],
    ),
    "prox_weighted_moments": (None, [_ptr, _ptr, _i64, _ptr]),
}


def load_library() -> ctypes.CDLL:
    """The process-wide native library, built and loaded on demand."""
    global _LIB
    if _LIB is not None:
        return _LIB
    path = ensure_built()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise NativeBuildError(f"dlopen failed for {path}: {exc}") from exc
    for name, (restype, argtypes) in _SIGNATURES.items():
        try:
            fn = getattr(lib, name)
        except AttributeError as exc:
            raise NativeBuildError(
                f"{path} lacks symbol {name}; stale build?"
            ) from exc
        fn.restype = restype
        fn.argtypes = argtypes
    _LIB = lib
    return lib
