/* Native kernel ops over packed little-endian 64-bit mask words.
 *
 * Compiled as a plain C shared library (no Python.h) and driven via
 * ctypes: every function works on raw buffers the caller owns --
 * array('Q') mask rows, array('d') float columns -- so the library
 * has no allocation or lifetime logic of its own (callers pass
 * scratch where an op needs it).
 *
 * The contract is bit-identity with the pure-python reference
 * backend: identical IEEE operation sequence per output position,
 * identical words.  Only IEEE-exact primitives are used (+, -, *,
 * fabs, sqrt, compares -- never libm pow, which is not correctly
 * rounded everywhere), and x86-64/AArch64 both evaluate double
 * arithmetic in 64-bit registers, so the C sequence reproduces the
 * CPython sequence exactly.
 */

#include <math.h>
#include <stdint.h>

#define API __attribute__((visibility("default")))

/* -- mask construction ------------------------------------------------- */

/* OR position bits into table rows.  Entries arrive flattened:
 * entry e owns rows rows_flat[row_off[e] .. row_off[e+1]) and
 * positions pos_flat[pos_off[e] .. pos_off[e+1]). */
API void prox_scatter(
    uint64_t *table, int64_t n_words,
    const int64_t *rows_flat, const int64_t *row_off,
    const int64_t *pos_flat, const int64_t *pos_off,
    int64_t n_entries)
{
    for (int64_t e = 0; e < n_entries; e++) {
        for (int64_t pi = pos_off[e]; pi < pos_off[e + 1]; pi++) {
            int64_t position = pos_flat[pi];
            uint64_t bit = 1ULL << (position & 63);
            int64_t offset = position >> 6;
            for (int64_t ri = row_off[e]; ri < row_off[e + 1]; ri++)
                table[rows_flat[ri] * n_words + offset] |= bit;
        }
    }
}

/* -- packed word-row algebra ------------------------------------------- */

API void prox_fold_and(
    uint64_t *acc, const uint64_t *const *rows,
    int64_t n_rows, int64_t n_words)
{
    for (int64_t r = 1; r < n_rows; r++) {
        const uint64_t *row = rows[r];
        int64_t w = 0;
        for (; w + 4 <= n_words; w += 4) {
            acc[w] &= row[w];
            acc[w + 1] &= row[w + 1];
            acc[w + 2] &= row[w + 2];
            acc[w + 3] &= row[w + 3];
        }
        for (; w < n_words; w++)
            acc[w] &= row[w];
    }
}

API void prox_fold_or(
    uint64_t *acc, const uint64_t *const *rows,
    int64_t n_rows, int64_t n_words)
{
    for (int64_t r = 1; r < n_rows; r++) {
        const uint64_t *row = rows[r];
        int64_t w = 0;
        for (; w + 4 <= n_words; w += 4) {
            acc[w] |= row[w];
            acc[w + 1] |= row[w + 1];
            acc[w + 2] |= row[w + 2];
            acc[w + 3] |= row[w + 3];
        }
        for (; w < n_words; w++)
            acc[w] |= row[w];
    }
}

/* Complement with the final word clamped by tail_mask (all-ones when
 * n_vals is a multiple of 64). */
API void prox_fold_not(
    uint64_t *out, const uint64_t *words,
    int64_t n_words, uint64_t tail_mask)
{
    for (int64_t w = 0; w < n_words; w++)
        out[w] = ~words[w];
    if (n_words)
        out[n_words - 1] &= tail_mask;
}

API int64_t prox_popcount(const uint64_t *words, int64_t n_words)
{
    int64_t total = 0;
    int64_t w = 0;
    for (; w + 4 <= n_words; w += 4)
        total += __builtin_popcountll(words[w])
               + __builtin_popcountll(words[w + 1])
               + __builtin_popcountll(words[w + 2])
               + __builtin_popcountll(words[w + 3]);
    for (; w < n_words; w++)
        total += __builtin_popcountll(words[w]);
    return total;
}

API void prox_popcount_blocks(
    const uint64_t *words, int64_t n_words, int64_t *out)
{
    for (int64_t w = 0; w < n_words; w++)
        out[w] = __builtin_popcountll(words[w]);
}

/* -- dead-mask folds ---------------------------------------------------- */

/* Per-position MAX.  out must arrive zeroed; remaining is caller
 * scratch of n_words words, overwritten.  wanted may be NULL (fold
 * everything); tail_mask clamps the initial remaining row. */
API void prox_fold_max(
    double *out, const double *values, const uint64_t *const *dead,
    int64_t n_terms, int64_t n_words, uint64_t tail_mask,
    const uint64_t *wanted, uint64_t *remaining)
{
    int64_t alive_words = 0;
    for (int64_t w = 0; w < n_words; w++) {
        uint64_t word = wanted ? wanted[w] : ~0ULL;
        if (w == n_words - 1)
            word &= tail_mask;
        remaining[w] = word;
        if (word)
            alive_words++;
    }
    for (int64_t t = 0; t < n_terms && alive_words; t++) {
        double value = values[t];
        const uint64_t *row = dead[t];
        for (int64_t w = 0; w < n_words; w++) {
            uint64_t rem = remaining[w];
            if (!rem)
                continue;
            uint64_t alive = rem & ~row[w];
            int64_t base = w << 6;
            while (alive) {
                out[base + __builtin_ctzll(alive)] = value;
                alive &= alive - 1;
            }
            rem &= row[w];
            remaining[w] = rem;
            if (!rem)
                alive_words--;
        }
    }
}

/* Per-position SUM: every position starts from the left-to-right term
 * total; each term subtracts at its dead positions in term order.
 * limit is the wanted row (or the full row), already tail-clamped. */
API void prox_fold_sum(
    double *out, const double *values, const uint64_t *const *dead,
    int64_t n_terms, int64_t n_words, int64_t n_vals,
    const uint64_t *limit)
{
    double total = 0.0;
    for (int64_t t = 0; t < n_terms; t++)
        total += values[t];
    for (int64_t i = 0; i < n_vals; i++)
        out[i] = total;
    for (int64_t t = 0; t < n_terms; t++) {
        double value = values[t];
        const uint64_t *row = dead[t];
        for (int64_t w = 0; w < n_words; w++) {
            uint64_t bits = row[w] & limit[w];
            int64_t base = w << 6;
            while (bits) {
                out[base + __builtin_ctzll(bits)] -= value;
                bits &= bits - 1;
            }
        }
    }
}

/* -- grouped folds ------------------------------------------------------ */

/* All of one candidate's group folds in a single call.  Group g owns
 * operands [group_off[g], group_off[g+1]) of the flattened values /
 * dead-pointer arrays and writes out[g * n_vals ..); each group's
 * output is bit-identical to its standalone prox_fold_max.  out must
 * arrive zeroed; remaining is n_words of caller scratch. */
API void prox_fold_max_groups(
    double *out, const double *values_flat,
    const uint64_t *const *dead_flat, const int64_t *group_off,
    int64_t n_groups, int64_t n_vals, int64_t n_words,
    uint64_t tail_mask, const uint64_t *wanted, uint64_t *remaining)
{
    for (int64_t g = 0; g < n_groups; g++) {
        int64_t start = group_off[g];
        prox_fold_max(out + g * n_vals, values_flat + start,
                      dead_flat + start, group_off[g + 1] - start,
                      n_words, tail_mask, wanted, remaining);
    }
}

API void prox_fold_sum_groups(
    double *out, const double *values_flat,
    const uint64_t *const *dead_flat, const int64_t *group_off,
    int64_t n_groups, int64_t n_vals, int64_t n_words,
    const uint64_t *limit)
{
    for (int64_t g = 0; g < n_groups; g++) {
        int64_t start = group_off[g];
        prox_fold_sum(out + g * n_vals, values_flat + start,
                      dead_flat + start, group_off[g + 1] - start,
                      n_words, n_vals, limit);
    }
}

/* -- sparse candidate scoring ------------------------------------------- */

#define KIND_SQDIFF 0
#define KIND_ABSDIFF 1
#define KIND_ISCLOSE01 2

/* math.isclose(o, s, rel_tol=1e-9, abs_tol=0.0), branch-compatible
 * with CPython: equality first (covers inf == inf), infinite diffs
 * excluded, then the relative bound. */
static inline double contrib_isclose01(double o, double s)
{
    if (o == s)
        return 0.0;
    double diff = fabs(o - s);
    double ao = fabs(o);
    double as = fabs(s);
    double m = ao > as ? ao : as;
    if (isfinite(diff) && diff <= 1e-9 * m)
        return 0.0;
    return 1.0;
}

API double prox_sparse_scores(
    const double *base,
    const double *const *minus, int64_t n_minus,
    const double *const *origs, const double *const *vals,
    int64_t n_contrib,
    const double *weights, int64_t n_vals, int64_t kind,
    double *accs, double *wf)
{
    double total = 0.0;
    for (int64_t i = 0; i < n_vals; i++) {
        double acc = base[i];
        for (int64_t k = 0; k < n_minus; k++)
            acc -= minus[k][i];
        if (kind == KIND_SQDIFF) {
            for (int64_t k = 0; k < n_contrib; k++) {
                double delta = origs[k][i] - vals[k][i];
                acc += delta * delta;
            }
        } else if (kind == KIND_ABSDIFF) {
            for (int64_t k = 0; k < n_contrib; k++)
                acc += fabs(origs[k][i] - vals[k][i]);
        } else {
            for (int64_t k = 0; k < n_contrib; k++)
                acc += contrib_isclose01(origs[k][i], vals[k][i]);
        }
        accs[i] = acc;
        double finished;
        if (kind == KIND_SQDIFF)
            finished = acc > 0.0 ? sqrt(acc) : 0.0;
        else if (kind == KIND_ABSDIFF)
            finished = acc > 0.0 ? acc : 0.0;
        else
            finished = acc == 0.0 ? 0.0 : 1.0;
        double weighted = weights[i] * finished;
        wf[i] = weighted;
        total += weighted;
    }
    return total;
}

/* -- sampled batch statistics ------------------------------------------- */

/* (Σ w·v, Σ w, Σ w·v·v) accumulated in 64-element blocks, block sums
 * combined left to right -- the exact reference association. */
API void prox_weighted_moments(
    const double *values, const double *weights, int64_t n,
    double *out3)
{
    double succ = 0.0, weight_sum = 0.0, sumsq = 0.0;
    for (int64_t start = 0; start < n; start += 64) {
        int64_t stop = start + 64 < n ? start + 64 : n;
        double block_succ = 0.0, block_weight = 0.0, block_sumsq = 0.0;
        for (int64_t i = start; i < stop; i++) {
            double value = values[i];
            double weight = weights[i];
            block_succ += weight * value;
            block_weight += weight;
            block_sumsq += weight * value * value;
        }
        succ += block_succ;
        weight_sum += block_weight;
        sumsq += block_sumsq;
    }
    out3[0] = succ;
    out3[1] = weight_sum;
    out3[2] = sumsq;
}
