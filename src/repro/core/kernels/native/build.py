"""Compile-on-demand glue for the native kernel library.

The native backend is a plain C shared object (no Python.h) loaded
through ctypes, so "building" it is one compiler invocation.  The
probe path is: reuse a fresh build if one exists next to the source
(or in the per-user cache when the package directory is read-only),
otherwise find a C compiler and compile.  Every failure raises
:class:`NativeBuildError` with the real reason -- the resolution layer
in :mod:`repro.core.kernels` turns that into a structured
``kernel_fallback`` warning and degrades to numpy → python.

``-ffp-contract=off`` is load-bearing: without it GCC/Clang may fuse
``acc += delta * delta`` into an FMA, which rounds once instead of
twice and silently breaks the bit-identity contract.
"""

from __future__ import annotations

import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

SOURCE = Path(__file__).with_name("_prox_native.c")

#: Flags that must accompany every build; see module docstring.
CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]


class NativeBuildError(RuntimeError):
    """The native library cannot be produced on this machine."""


def _object_name() -> str:
    tag = f"{sys.platform}-{platform.machine()}"
    return f"_prox_native-{tag}.so"


def shared_object_path() -> Path:
    """Preferred location: next to the C source, arch-tagged."""
    return SOURCE.with_name(_object_name())


def cache_object_path() -> Path:
    """Fallback when the package directory is not writable."""
    root = Path(
        os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")
    )
    return root / "repro-native" / _object_name()


def find_compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _is_fresh(target: Path) -> bool:
    try:
        return (
            target.exists()
            and target.stat().st_mtime >= SOURCE.stat().st_mtime
        )
    except OSError:
        return False


def _compile_into(compiler: str, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    # Build to a temp file in the target directory, then atomically
    # replace: concurrent builders race harmlessly.
    handle, temp_name = tempfile.mkstemp(
        suffix=".so", prefix=".prox-build-", dir=str(target.parent)
    )
    os.close(handle)
    cmd: List[str] = [compiler, *CFLAGS, "-o", temp_name, str(SOURCE), "-lm"]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()[-500:]
            raise NativeBuildError(
                f"{compiler} failed (exit {proc.returncode}): {detail}"
            )
        os.replace(temp_name, target)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compile failed: {exc}") from exc
    finally:
        try:
            os.unlink(temp_name)
        except OSError:
            pass


def ensure_built(force: bool = False) -> Path:
    """Return a fresh shared object, compiling if needed."""
    if not SOURCE.exists():
        raise NativeBuildError(f"source missing: {SOURCE}")
    primary = shared_object_path()
    fallback = cache_object_path()
    if not force:
        for target in (primary, fallback):
            if _is_fresh(target):
                return target
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler on PATH (tried $CC, cc, gcc, clang)"
        )
    if os.access(primary.parent, os.W_OK):
        _compile_into(compiler, primary)
        return primary
    _compile_into(compiler, fallback)
    return fallback
