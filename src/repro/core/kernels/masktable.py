"""Contiguous packed mask storage shared by the scorers and kernels.

A :class:`MaskTable` is an ``n_rows × n_words`` block of little-endian
64-bit words backed by one flat ``array('Q')``: row ``r`` holds the
packed bitset of key ``r``, bit ``i`` (word ``i >> 6``, bit
``i & 63``) ⇔ valuation/draw position ``i``.  Rows are handed out as
zero-copy ``memoryview`` slices, so ``packed_masks()`` /
``packed_term_dead()`` and the shared-memory batch snapshot read the
same buffer the kernel wrote -- no per-call ``to_bytes`` conversion.

Invariant: every row is *tail-clamped* -- bits at positions
``>= n_vals`` are zero.  Kernel ops may rely on it for popcounts and
complements; :func:`full_row` and the scatter constructors maintain it.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Union

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1

#: One packed mask row: ``array('Q')`` or a ``memoryview`` of one.
WordRow = Union[array, memoryview, Sequence[int]]


def words_for(n_vals: int) -> int:
    """Words needed to hold ``n_vals`` bits."""
    return (n_vals + WORD_BITS - 1) >> 6


def zero_row(n_vals: int) -> array:
    """An all-zeros row sized for ``n_vals`` bits."""
    return array("Q", bytes(8 * words_for(n_vals)))


def full_row(n_vals: int) -> array:
    """An all-ones row, tail-clamped to ``n_vals`` bits."""
    n_words = words_for(n_vals)
    row = array("Q", [WORD_MASK] * n_words)
    tail = n_vals & (WORD_BITS - 1)
    if n_words and tail:
        row[-1] = (1 << tail) - 1
    return row


def clamp_row(row: array, n_vals: int) -> array:
    """Zero any bits at positions ``>= n_vals``, in place."""
    tail = n_vals & (WORD_BITS - 1)
    if len(row) and tail:
        row[-1] &= (1 << tail) - 1
    return row


def row_int(row: WordRow) -> int:
    """The row as an unbounded little-endian int (tests/debugging)."""
    if isinstance(row, (array, memoryview)):
        return int.from_bytes(row.tobytes(), "little")
    value = 0
    for index, word in enumerate(row):
        value |= int(word) << (index * WORD_BITS)
    return value


def int_to_row(mask: int, n_vals: int) -> array:
    """Pack an unbounded-int mask into a tail-clamped word row."""
    n_words = words_for(n_vals)
    return array("Q", mask.to_bytes(n_words * 8, "little"))


class MaskTable:
    """``n_rows × n_words`` contiguous packed mask rows."""

    __slots__ = ("n_rows", "n_vals", "n_words", "words")

    def __init__(self, n_rows: int, n_vals: int, words: array = None):
        self.n_rows = n_rows
        self.n_vals = n_vals
        self.n_words = words_for(n_vals)
        if words is None:
            words = array("Q", bytes(8 * n_rows * self.n_words))
        if len(words) != n_rows * self.n_words:
            raise ValueError(
                f"MaskTable needs {n_rows * self.n_words} words, "
                f"got {len(words)}"
            )
        self.words = words

    def row(self, index: int) -> memoryview:
        """Zero-copy view of one row."""
        base = index * self.n_words
        return memoryview(self.words)[base : base + self.n_words]

    def rows(self) -> List[memoryview]:
        """Zero-copy views of every row, in row order."""
        return [self.row(index) for index in range(self.n_rows)]

    def set_bit(self, row: int, position: int) -> None:
        self.words[row * self.n_words + (position >> 6)] |= 1 << (
            position & (WORD_BITS - 1)
        )

    def row_ints(self) -> List[int]:
        """Every row as an unbounded int (tests/debugging)."""
        return [row_int(self.row(index)) for index in range(self.n_rows)]
