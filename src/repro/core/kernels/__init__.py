"""Pluggable scoring kernel backends (``REPRO_KERNEL=python|numpy|native``).

The bit-packed scorers funnel their hot folds through one active
:class:`~repro.core.kernels.protocol.KernelBackend`:

* ``python`` -- the reference backend: the exact loops the scorers ran
  inline before this tier existed, re-expressed over packed word rows.
* ``numpy`` -- vectorized folds over zero-copy views of the packed
  layouts; engineered to be bit-identical to the reference (see
  :mod:`repro.core.kernels.numpy_backend`).
* ``native`` -- a small C shared library (hardware popcount, unrolled
  AND/OR folds) over the same ``array('Q')`` buffers, compiled on
  demand and driven via ctypes (see
  :mod:`repro.core.kernels.native_backend`).

Resolution mirrors ``REPRO_IR``: the env knob is read once at import,
``auto`` (the default) picks numpy when importable and falls back to
python otherwise -- ``native`` is *opt-in only* (an implicit compile
on first import would surprise operators; request it explicitly).  An
explicit ``REPRO_KERNEL=native`` probes the toolchain and *degrades*
native → numpy → python with a structured ``kernel_fallback`` warning
instead of crashing; ``REPRO_KERNEL=numpy`` without numpy degrades to
python the same way.  :func:`set_backend` / :func:`backend` switch
process-wide at runtime (scorers capture the active backend at
construction, so a mid-step switch never mixes backends within one
scorer).

The active backend is observable: the ``repro_kernel_backend``
info-style gauge (1 for the active backend, 0 for the others --
``native`` included), the ``kernel=`` attribute on scoring spans, and
the ``kernel`` field of ``/healthz``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ...observability import log as _log
from ...observability import metrics as _metrics
from .masktable import MaskTable, full_row, row_int, words_for, zero_row
from .protocol import KernelBackend, MaskedValue, SPARSE_KINDS
from .reference import PythonKernel

__all__ = [
    "KernelBackend",
    "MaskedValue",
    "MaskTable",
    "PythonKernel",
    "SPARSE_KINDS",
    "MODE_PYTHON",
    "MODE_NUMPY",
    "MODE_NATIVE",
    "active_backend",
    "get_backend",
    "set_backend",
    "backend",
    "full_row",
    "row_int",
    "words_for",
    "zero_row",
    "numpy_available",
    "numpy_unavailable_reason",
    "native_available",
    "native_unavailable_reason",
    "publish_backend_metric",
]

MODE_PYTHON = "python"
MODE_NUMPY = "numpy"
MODE_NATIVE = "native"

_AUTO_WORDS = frozenset({"", "auto", "default"})
_PYTHON_WORDS = frozenset(
    {
        "python",
        "py",
        "reference",
        "ref",
        "legacy",
        "off",
        "0",
        "false",
        "no",
        "disabled",
    }
)
_NUMPY_WORDS = frozenset({"numpy", "np", "fast", "vector", "on", "1", "true", "yes"})
_NATIVE_WORDS = frozenset({"native", "c", "simd", "cffi", "ctypes"})

_KERNEL_BACKEND = _metrics.gauge(
    "repro_kernel_backend",
    "Active scoring kernel backend (info-style: 1 for the active backend).",
    labelnames=("backend",),
)

_LOGGER_NAME = "core.kernels"

_REFERENCE = PythonKernel()

#: Lazily probed backends; ``False`` = probe failed, ``None`` = not
#: probed yet.
_NUMPY_BACKEND: object = None
_NUMPY_ERROR: Optional[str] = None
_NATIVE_BACKEND: object = None
_NATIVE_ERROR: Optional[str] = None


def _numpy_backend() -> Optional[KernelBackend]:
    """The numpy backend instance, or ``None`` when numpy is absent."""
    global _NUMPY_BACKEND, _NUMPY_ERROR
    if _NUMPY_BACKEND is None:
        try:
            from .numpy_backend import NumpyKernel

            _NUMPY_BACKEND = NumpyKernel()
        except Exception as exc:  # ImportError, broken install, ...
            _NUMPY_BACKEND = False
            _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"
    return _NUMPY_BACKEND if _NUMPY_BACKEND is not False else None


def _native_backend() -> Optional[KernelBackend]:
    """The native backend instance, or ``None`` when it can't build."""
    global _NATIVE_BACKEND, _NATIVE_ERROR
    if _NATIVE_BACKEND is None:
        try:
            from .native_backend import NativeKernel

            _NATIVE_BACKEND = NativeKernel()
        except Exception as exc:  # no compiler, dlopen failure, ...
            _NATIVE_BACKEND = False
            _NATIVE_ERROR = f"{type(exc).__name__}: {exc}"
    return _NATIVE_BACKEND if _NATIVE_BACKEND is not False else None


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed in this process."""
    return _numpy_backend() is not None


def numpy_unavailable_reason() -> Optional[str]:
    """Why the numpy probe failed (``None`` when it succeeded)."""
    _numpy_backend()
    return _NUMPY_ERROR


def native_available() -> bool:
    """Whether the native backend can be built/loaded in this process."""
    return _native_backend() is not None


def native_unavailable_reason() -> Optional[str]:
    """Why the native probe failed (``None`` when it succeeded)."""
    _native_backend()
    return _NATIVE_ERROR


def _degrade(requested: str, reason: Optional[str]) -> str:
    """Pick the best available backend below ``requested``, loudly."""
    active = MODE_NUMPY if numpy_available() else MODE_PYTHON
    _log.get_logger(_LOGGER_NAME).warning(
        "kernel_fallback requested=%s active=%s reason=%s",
        requested,
        active,
        _log.quote(reason or f"{requested} unavailable"),
    )
    return active


def _resolve_name(raw: str) -> str:
    """Map one ``REPRO_KERNEL`` token to an available backend name."""
    token = raw.strip().lower()
    if token in _PYTHON_WORDS:
        return MODE_PYTHON
    if token in _NUMPY_WORDS:
        if numpy_available():
            return MODE_NUMPY
        _log.get_logger(_LOGGER_NAME).warning(
            "kernel_fallback requested=numpy active=python reason=%s",
            _log.quote(numpy_unavailable_reason() or "numpy unavailable"),
        )
        return MODE_PYTHON
    if token in _NATIVE_WORDS:
        if native_available():
            return MODE_NATIVE
        return _degrade(MODE_NATIVE, native_unavailable_reason())
    if token not in _AUTO_WORDS:
        _log.get_logger(_LOGGER_NAME).warning(
            "kernel_unknown requested=%s resolution=auto", _log.quote(raw)
        )
    return MODE_NUMPY if numpy_available() else MODE_PYTHON


def publish_backend_metric() -> None:
    """(Re-)export the ``repro_kernel_backend`` info gauge."""
    active = _BACKEND_NAME
    for name in (MODE_PYTHON, MODE_NUMPY, MODE_NATIVE):
        _KERNEL_BACKEND.set(1.0 if name == active else 0.0, backend=name)


def active_backend() -> str:
    """Name of the backend currently in effect."""
    return _BACKEND_NAME


def get_backend() -> KernelBackend:
    """The active backend object (scorers capture it at construction)."""
    if _BACKEND_NAME == MODE_NATIVE:
        resolved = _native_backend()
        if resolved is not None:
            return resolved
    if _BACKEND_NAME in (MODE_NUMPY, MODE_NATIVE):
        resolved = _numpy_backend()
        if resolved is not None:
            return resolved
    return _REFERENCE


def set_backend(name: str) -> str:
    """Switch kernel backends process-wide; returns the resolved name.

    Accepts the same tokens as ``REPRO_KERNEL`` and degrades the same
    way (native requested but unbuildable → numpy → python, with a
    warning), so callers can thread raw config values straight
    through.
    """
    global _BACKEND_NAME
    _BACKEND_NAME = _resolve_name(str(name))
    publish_backend_metric()
    return _BACKEND_NAME


@contextmanager
def backend(temporary: str) -> Iterator[str]:
    """Temporarily switch backends (tests and differentials)."""
    previous = active_backend()
    resolved = set_backend(temporary)
    try:
        yield resolved
    finally:
        set_backend(previous)


_BACKEND_NAME: str = _resolve_name(os.environ.get("REPRO_KERNEL", "auto"))
publish_backend_metric()
