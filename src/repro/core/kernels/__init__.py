"""Pluggable scoring kernel backends (``REPRO_KERNEL=python|numpy``).

The bit-packed scorers funnel their hot folds through one active
:class:`~repro.core.kernels.protocol.KernelBackend`:

* ``python`` -- the reference backend: the exact unbounded-int loops
  the scorers ran inline before this tier existed.
* ``numpy`` -- word-vector folds over zero-copy views of the packed
  layouts; engineered to be bit-identical to the reference (see
  :mod:`repro.core.kernels.numpy_backend`).

Resolution mirrors ``REPRO_IR``: the env knob is read once at import,
``auto`` (the default) picks numpy when importable and falls back to
python otherwise, and an explicit ``REPRO_KERNEL=numpy`` without numpy
*degrades* to python with a structured-log warning instead of
crashing.  :func:`set_backend` / :func:`backend` switch process-wide
at runtime (scorers capture the active backend at construction, so a
mid-step switch never mixes backends within one scorer).

The active backend is observable: the ``repro_kernel_backend``
info-style gauge (1 for the active backend, 0 for the others), the
``kernel=`` attribute on scoring spans, and the ``kernel`` field of
``/healthz``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ...observability import log as _log
from ...observability import metrics as _metrics
from .protocol import KernelBackend, MaskedValue
from .reference import PythonKernel

__all__ = [
    "KernelBackend",
    "MaskedValue",
    "PythonKernel",
    "MODE_PYTHON",
    "MODE_NUMPY",
    "active_backend",
    "get_backend",
    "set_backend",
    "backend",
    "numpy_available",
    "numpy_unavailable_reason",
    "publish_backend_metric",
]

MODE_PYTHON = "python"
MODE_NUMPY = "numpy"

_AUTO_WORDS = frozenset({"", "auto", "default"})
_PYTHON_WORDS = frozenset(
    {
        "python",
        "py",
        "reference",
        "ref",
        "legacy",
        "off",
        "0",
        "false",
        "no",
        "disabled",
    }
)
_NUMPY_WORDS = frozenset({"numpy", "np", "fast", "vector", "on", "1", "true", "yes"})

_KERNEL_BACKEND = _metrics.gauge(
    "repro_kernel_backend",
    "Active scoring kernel backend (info-style: 1 for the active backend).",
    labelnames=("backend",),
)

_LOGGER_NAME = "core.kernels"

_REFERENCE = PythonKernel()

#: Lazily probed numpy backend; ``False`` = probe failed, ``None`` =
#: not probed yet.
_NUMPY_BACKEND: object = None
_NUMPY_ERROR: Optional[str] = None


def _numpy_backend() -> Optional[KernelBackend]:
    """The numpy backend instance, or ``None`` when numpy is absent."""
    global _NUMPY_BACKEND, _NUMPY_ERROR
    if _NUMPY_BACKEND is None:
        try:
            from .numpy_backend import NumpyKernel

            _NUMPY_BACKEND = NumpyKernel()
        except Exception as exc:  # ImportError, broken install, ...
            _NUMPY_BACKEND = False
            _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"
    return _NUMPY_BACKEND if _NUMPY_BACKEND is not False else None


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed in this process."""
    return _numpy_backend() is not None


def numpy_unavailable_reason() -> Optional[str]:
    """Why the numpy probe failed (``None`` when it succeeded)."""
    _numpy_backend()
    return _NUMPY_ERROR


def _resolve_name(raw: str) -> str:
    """Map one ``REPRO_KERNEL`` token to an available backend name."""
    token = raw.strip().lower()
    if token in _PYTHON_WORDS:
        return MODE_PYTHON
    if token in _NUMPY_WORDS:
        if numpy_available():
            return MODE_NUMPY
        _log.get_logger(_LOGGER_NAME).warning(
            "kernel_fallback requested=numpy active=python reason=%s",
            _log.quote(numpy_unavailable_reason() or "numpy unavailable"),
        )
        return MODE_PYTHON
    if token not in _AUTO_WORDS:
        _log.get_logger(_LOGGER_NAME).warning(
            "kernel_unknown requested=%s resolution=auto", _log.quote(raw)
        )
    return MODE_NUMPY if numpy_available() else MODE_PYTHON


def publish_backend_metric() -> None:
    """(Re-)export the ``repro_kernel_backend`` info gauge."""
    active = _BACKEND_NAME
    for name in (MODE_PYTHON, MODE_NUMPY):
        _KERNEL_BACKEND.set(1.0 if name == active else 0.0, backend=name)


def active_backend() -> str:
    """Name of the backend currently in effect."""
    return _BACKEND_NAME


def get_backend() -> KernelBackend:
    """The active backend object (scorers capture it at construction)."""
    if _BACKEND_NAME == MODE_NUMPY:
        resolved = _numpy_backend()
        if resolved is not None:
            return resolved
    return _REFERENCE


def set_backend(name: str) -> str:
    """Switch kernel backends process-wide; returns the resolved name.

    Accepts the same tokens as ``REPRO_KERNEL`` and degrades the same
    way (numpy requested but unavailable → python, with a warning), so
    callers can thread raw config values straight through.
    """
    global _BACKEND_NAME
    _BACKEND_NAME = _resolve_name(str(name))
    publish_backend_metric()
    return _BACKEND_NAME


@contextmanager
def backend(temporary: str) -> Iterator[str]:
    """Temporarily switch backends (tests and differentials)."""
    previous = active_backend()
    resolved = set_backend(temporary)
    try:
        yield resolved
    finally:
        set_backend(previous)


_BACKEND_NAME: str = _resolve_name(os.environ.get("REPRO_KERNEL", "auto"))
publish_backend_metric()
