"""The native backend: ctypes over the C kernel library.

Importing this module does *not* compile anything; constructing
:class:`NativeKernel` loads (building on demand) the shared object via
:mod:`repro.core.kernels.native` and raises ``NativeBuildError`` when
the toolchain is absent -- the resolution layer catches that and
degrades numpy → python with a structured ``kernel_fallback``.

The class subclasses the python reference and overrides only the ops
the C library accelerates; everything else (``merge_monomials``, the
default ``baseline_scatter`` loop) inherits the reference behavior,
which keeps the bit-identity argument local to the overridden ops.
All double arithmetic in the library is straight IEEE (compiled with
``-ffp-contract=off``), so the C operation sequence per output
position is the reference's.
"""

from __future__ import annotations

import ctypes
from array import array
from typing import List, Optional, Sequence, Tuple

from .masktable import MaskTable, WORD_MASK, clamp_row, full_row, words_for
from .native import load_library
from .protocol import MaskedValue, WordRow
from .reference import PythonKernel

_KIND_CODES = {"sqdiff": 0, "absdiff": 1, "isclose01": 2}

#: Below this many words the pure-python word loop beats the ctypes
#: dispatch glue for the bitwise combinators (measured crossover ~8
#: words); bitwise integer ops are exact, so the result is identical
#: either way.
_SMALL_WORDS = 8


def _tail_mask(n_vals: int) -> int:
    tail = n_vals & 63
    return (1 << tail) - 1 if tail else WORD_MASK


class NativeKernel(PythonKernel):
    """Hardware popcount and unrolled word folds over ``array('Q')``."""

    name = "native"

    #: Entries kept in the operand-address memo before it is dropped
    #: wholesale; a step touches a few hundred distinct operand rows,
    #: so the cap only trips after many steps' worth of churn.
    _MEMO_CAP = 8192

    def __init__(self, lib: Optional[ctypes.CDLL] = None):
        self._lib = lib if lib is not None else load_library()
        # id(obj) → (obj, pin, address).  Safe to key by id because the
        # memo holds a strong reference to every cached operand: a live
        # entry's id cannot be recycled, and the pinned address always
        # points into the operand's live buffer (never a copy), so
        # in-place mutation stays visible.  Callers must not resize
        # cached operands (array reallocation would move the buffer) --
        # the scorers never do.
        self._addr_memo: dict = {}

    # -- buffer plumbing -----------------------------------------------------

    @staticmethod
    def _addr(buf, keep: list, typecode: str) -> int:
        """Raw address of a buffer's payload.

        ``keep`` pins whatever owns the memory for the duration of the
        C call; read-only or non-buffer sequences are copied into a
        fresh ``array`` first.
        """
        if isinstance(buf, array):
            return buf.buffer_info()[0]
        if isinstance(buf, memoryview):
            # Small views are cheaper to copy than to pin via
            # ``from_buffer`` (which pays ~1µs of ctypes type work
            # regardless of size); the kernels never write through
            # operand rows, so the copy is safe.
            if not buf.readonly and buf.nbytes > 256:
                raw = (ctypes.c_ubyte * buf.nbytes).from_buffer(buf)
                keep.append(raw)
                return ctypes.addressof(raw)
            buf = array(typecode, buf)
        else:
            buf = array(typecode, buf)
        keep.append(buf)
        return buf.buffer_info()[0]

    @classmethod
    def _ptr_array(cls, buffers, keep: list, typecode: str):
        ptrs = (ctypes.c_void_p * max(1, len(buffers)))()
        for index, buf in enumerate(buffers):
            ptrs[index] = cls._addr(buf, keep, typecode)
        return ptrs

    def _addr_memoized(self, buf, keep: list, typecode: str) -> int:
        """Address of a step-stable operand, pinned across calls.

        Candidate scoring passes the same dead rows and cached columns
        hundreds of times per step; memoizing their addresses (with the
        owner strongly held) turns the per-call buffer glue into a dict
        hit.  Only used for operands the scorers reuse -- per-candidate
        scratch goes through :meth:`_addr` so the memo stays bounded.
        Sources that would need a copy (read-only views, plain lists)
        cannot stay coherent under mutation and take the uncached path.
        """
        memo = self._addr_memo
        entry = memo.get(id(buf))
        if entry is not None:
            return entry[2]
        if isinstance(buf, array):
            pin: object = None
            address = buf.buffer_info()[0]
        elif isinstance(buf, memoryview) and not buf.readonly:
            pin = (ctypes.c_ubyte * buf.nbytes).from_buffer(buf)
            address = ctypes.addressof(pin)
        else:
            return self._addr(buf, keep, typecode)
        if len(memo) >= self._MEMO_CAP:
            # Addresses handed out earlier in this same call must
            # outlive the eviction: park the evicted pins on the
            # caller's keep list before dropping them from the memo.
            keep.append(list(memo.values()))
            memo.clear()
        memo[id(buf)] = (buf, pin, address)
        return address

    def _ptr_array_memoized(self, buffers, keep: list, typecode: str):
        ptrs = (ctypes.c_void_p * max(1, len(buffers)))()
        addr = self._addr_memoized
        for index, buf in enumerate(buffers):
            ptrs[index] = addr(buf, keep, typecode)
        return ptrs

    # -- mask construction ---------------------------------------------------

    def scatter_false_sets(
        self,
        n_rows: int,
        entries: Sequence[Tuple[Sequence[int], Sequence[int]]],
        n_vals: int,
    ) -> MaskTable:
        table = MaskTable(n_rows, n_vals)
        if not entries or not table.n_words:
            return table
        # Accumulate in plain lists and convert once: list.extend plus
        # a single array() construction beats per-entry array growth by
        # ~2x on entry-heavy tables (one entry per valuation).
        rows_list: List[int] = []
        row_off_list: List[int] = [0]
        pos_list: List[int] = []
        pos_off_list: List[int] = [0]
        for rows, positions in entries:
            rows_list.extend(rows)
            row_off_list.append(len(rows_list))
            pos_list.extend(positions)
            pos_off_list.append(len(pos_list))
        rows_flat = array("q", rows_list)
        row_off = array("q", row_off_list)
        pos_flat = array("q", pos_list)
        pos_off = array("q", pos_off_list)
        self._lib.prox_scatter(
            table.words.buffer_info()[0],
            table.n_words,
            rows_flat.buffer_info()[0],
            row_off.buffer_info()[0],
            pos_flat.buffer_info()[0],
            pos_off.buffer_info()[0],
            len(entries),
        )
        return table

    # -- dead-mask folds -----------------------------------------------------

    def fold_max(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        if not n_vals:
            return []
        n_words = words_for(n_vals)
        out = array("d", bytes(8 * n_vals))
        keep: list = []
        values = array("d", (value for value, _ in masks))
        dead = self._ptr_array([row for _, row in masks], keep, "Q")
        scratch = array("Q", bytes(8 * n_words))
        self._lib.prox_fold_max(
            out.buffer_info()[0],
            values.buffer_info()[0],
            dead,
            len(masks),
            n_words,
            _tail_mask(n_vals),
            None if wanted is None else self._addr(wanted, keep, "Q"),
            scratch.buffer_info()[0],
        )
        return out.tolist()

    def fold_sum(
        self,
        masks: Sequence[MaskedValue],
        n_vals: int,
        wanted: Optional[WordRow] = None,
    ) -> List[float]:
        if not n_vals:
            return []
        n_words = words_for(n_vals)
        out = array("d", bytes(8 * n_vals))
        keep: list = []
        values = array("d", (value for value, _ in masks))
        dead = self._ptr_array([row for _, row in masks], keep, "Q")
        limit = (
            full_row(n_vals)
            if wanted is None
            else clamp_row(array("Q", wanted), n_vals)
        )
        self._lib.prox_fold_sum(
            out.buffer_info()[0],
            values.buffer_info()[0],
            dead,
            len(masks),
            n_words,
            n_vals,
            limit.buffer_info()[0],
        )
        return out.tolist()

    def group_fold(
        self,
        groups: Sequence[Sequence[MaskedValue]],
        n_vals: int,
        is_max: bool,
        wanted: Optional[WordRow] = None,
    ) -> List[List[float]]:
        """All of a candidate's group folds in one library call.

        The flattened operands cross the ctypes boundary once instead
        of once per group -- at small word counts the dispatch glue
        dominates the fold itself, so this is the hot scoring path.
        """
        if not groups:
            return []
        if not n_vals:
            return [[] for _ in groups]
        n_groups = len(groups)
        n_words = words_for(n_vals)
        values = array("d")
        rows: List[WordRow] = []
        group_off = array("q", bytes(8 * (n_groups + 1)))
        for index, masks in enumerate(groups):
            for value, row in masks:
                values.append(value)
                rows.append(row)
            group_off[index + 1] = len(rows)
        out = array("d", bytes(8 * n_groups * n_vals))
        keep: list = []
        # Dead rows are step-stable scorer state (override rows excepted,
        # which the uncached fallback inside the memo handles): memoize.
        dead = self._ptr_array_memoized(rows, keep, "Q")
        if is_max:
            scratch = array("Q", bytes(8 * n_words))
            self._lib.prox_fold_max_groups(
                out.buffer_info()[0],
                values.buffer_info()[0],
                dead,
                group_off.buffer_info()[0],
                n_groups,
                n_vals,
                n_words,
                _tail_mask(n_vals),
                None if wanted is None else self._addr(wanted, keep, "Q"),
                scratch.buffer_info()[0],
            )
        else:
            limit = (
                full_row(n_vals)
                if wanted is None
                else clamp_row(array("Q", wanted), n_vals)
            )
            self._lib.prox_fold_sum_groups(
                out.buffer_info()[0],
                values.buffer_info()[0],
                dead,
                group_off.buffer_info()[0],
                n_groups,
                n_vals,
                n_words,
                limit.buffer_info()[0],
            )
        # array('d') slices, not lists: the columns feed straight back
        # into sparse_scores, whose _addr takes the buffer_info fast
        # path for arrays (a list would be copied element-wise there).
        return [
            out[index * n_vals : (index + 1) * n_vals]
            for index in range(n_groups)
        ]

    # -- sparse candidate scoring --------------------------------------------

    def sparse_scores(
        self,
        base: Sequence[float],
        minus: Sequence[Sequence[float]],
        contribs: Sequence[Tuple[Sequence[float], Sequence[float]]],
        weights: Sequence[float],
        kind: str,
    ) -> Tuple[List[float], List[float], float]:
        kind_code = _KIND_CODES[kind]
        n_vals = len(base)
        accs = array("d", bytes(8 * n_vals))
        wf = array("d", bytes(8 * n_vals))
        if not n_vals:
            return [], [], 0.0
        keep: list = []
        # base / minus / originals / weights are the scorer's cached
        # step-stable columns; the recomputed values are per-candidate
        # scratch and stay on the uncached path.
        minus_ptrs = self._ptr_array_memoized(minus, keep, "d")
        orig_ptrs = self._ptr_array_memoized(
            [originals for originals, _ in contribs], keep, "d"
        )
        vals_ptrs = self._ptr_array(
            [values for _, values in contribs], keep, "d"
        )
        total = self._lib.prox_sparse_scores(
            self._addr_memoized(base, keep, "d"),
            minus_ptrs,
            len(minus),
            orig_ptrs,
            vals_ptrs,
            len(contribs),
            self._addr_memoized(weights, keep, "d"),
            n_vals,
            kind_code,
            accs.buffer_info()[0],
            wf.buffer_info()[0],
        )
        return accs.tolist(), wf.tolist(), float(total)

    # -- sampled batch statistics --------------------------------------------

    def weighted_moments(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> Tuple[float, float, float]:
        n = len(values)
        out3 = array("d", bytes(24))
        keep: list = []
        self._lib.prox_weighted_moments(
            self._addr(values, keep, "d"),
            self._addr(weights, keep, "d"),
            n,
            out3.buffer_info()[0],
        )
        return out3[0], out3[1], out3[2]

    # -- packed word-row algebra ---------------------------------------------

    def fold_and(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_and requires at least one vector")
        if len(vectors[0]) < _SMALL_WORDS:
            return super().fold_and(vectors)
        acc = array("Q", vectors[0])
        if len(vectors) > 1 and len(acc):
            keep: list = []
            ptrs = self._ptr_array(vectors, keep, "Q")
            self._lib.prox_fold_and(
                acc.buffer_info()[0], ptrs, len(vectors), len(acc)
            )
        return acc

    def fold_or(self, vectors: Sequence[WordRow]) -> array:
        if not vectors:
            raise ValueError("fold_or requires at least one vector")
        if len(vectors[0]) < _SMALL_WORDS:
            return super().fold_or(vectors)
        acc = array("Q", vectors[0])
        if len(vectors) > 1 and len(acc):
            keep: list = []
            ptrs = self._ptr_array(vectors, keep, "Q")
            self._lib.prox_fold_or(
                acc.buffer_info()[0], ptrs, len(vectors), len(acc)
            )
        return acc

    def fold_not(self, words: WordRow, n_vals: int) -> array:
        n_words = words_for(n_vals)
        out = array("Q", bytes(8 * n_words))
        if n_words:
            keep: list = []
            self._lib.prox_fold_not(
                out.buffer_info()[0],
                self._addr(words, keep, "Q"),
                n_words,
                _tail_mask(n_vals),
            )
        return out

    def popcount_blocks(self, words: WordRow) -> List[int]:
        n_words = len(words)
        if not n_words:
            return []
        keep: list = []
        out = array("q", bytes(8 * n_words))
        self._lib.prox_popcount_blocks(
            self._addr(words, keep, "Q"), n_words, out.buffer_info()[0]
        )
        return out.tolist()

    def popcount(self, words: WordRow) -> int:
        n_words = len(words)
        if not n_words:
            return 0
        keep: list = []
        return int(
            self._lib.prox_popcount(self._addr(words, keep, "Q"), n_words)
        )
