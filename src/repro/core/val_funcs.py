"""VAL-FUNC implementations (Definition 3.2.2, §3.2, Table 5.1).

A VAL-FUNC measures how much one valuation's result differs between
the original provenance and its summary.  The thesis names four:

* **Expected error** ``|v(p) - v'(p')|`` --
  :class:`AbsoluteDifference` (L1 over the aligned aggregation
  vectors; collapses to the scalar absolute difference for a single
  group).
* **Weighted fraction of disagreeing valuations** --
  :class:`Disagreement` (0 when the aligned vectors agree, 1
  otherwise; the weight ``w(v)`` is applied by the distance
  computation).
* **Euclidean distance** between aggregation vectors --
  :class:`EuclideanDistance`, the VAL-FUNC of the MovieLens and
  Wikipedia experiments.
* **DDP cost difference** (Example 5.2.2) -- :class:`DDPCostDifference`:
  the absolute cost difference when both sides are feasible, 0 when
  both are infeasible, and the maximum possible cost (max cost per
  transition × transitions per execution) when feasibility disagrees.

Vector alignment.  A summary may merge *group* annotations (Wikipedia
pages → WordNet concepts), so ``v(p)`` and ``v'(p')`` are vectors of
different dimensions.  Per §5.2 the original vector is first
transformed into the summary's coordinates by pushing each original
group key through the cumulative mapping and folding collisions with
the aggregation monoid; only then is the metric applied.

Every VAL-FUNC also exposes ``max_error`` -- the normalization bound
used in §6.3 ("we divide by the maximum possible error in order to
normalize to [0, 1]").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from ..provenance.ddp_expression import DDPExpression, DDPResult
from ..provenance.monoids import AggregationMonoid, CountedAggregate
from ..provenance.tensor_sum import GroupVector, TensorSum


def align_vector(
    original: GroupVector,
    alignment: Mapping[str, str],
    monoid: AggregationMonoid,
) -> GroupVector:
    """Transform an original-coordinates vector into summary coordinates.

    Each original group key is replaced by its image under the
    cumulative mapping; keys that collide (their groups were merged)
    are folded through the aggregation monoid, mirroring how the
    summary itself aggregates the merged group.
    """
    out: Dict[Optional[str], CountedAggregate] = {}
    for key, aggregate in original.items():
        image = alignment.get(key, key) if key is not None else None
        existing = out.get(image)
        out[image] = (
            aggregate if existing is None else existing.combine(aggregate, monoid)
        )
    return out


class VectorValFunc(ABC):
    """A VAL-FUNC over per-group aggregation vectors."""

    #: Table 5.1 name.
    name: str = "VAL-FUNC"

    #: Whether :meth:`metric` decomposes coordinate-wise as
    #: ``metric_finish(Σ_k metric_contrib(orig[k], summ[k]))``.  The
    #: incremental step scorer exploits decomposability to rescore only
    #: a candidate's neighborhood; non-decomposable VAL-FUNCs fall back
    #: to the dense per-candidate metric.
    decomposable: bool = False

    #: Kernel tag for the decomposed contrib/finish pair, or ``None``.
    #: A non-``None`` tag promises that ``metric_contrib`` /
    #: ``metric_finish`` are *exactly* the closed forms the kernel
    #: backends implement for that tag (IEEE-reproducible primitives
    #: only: +, -, *, abs, sqrt, comparisons -- never libm ``pow``),
    #: so vectorized scoring stays bit-identical to the python loop.
    contrib_kind: Optional[str] = None

    def __init__(self, monoid: AggregationMonoid):
        self.monoid = monoid

    def __call__(
        self,
        original: GroupVector,
        summary: GroupVector,
        alignment: Mapping[str, str],
    ) -> float:
        aligned = align_vector(original, alignment, self.monoid)
        keys = set(aligned) | set(summary)
        return self.metric(
            {key: _fin(aligned.get(key)) for key in keys},
            {key: _fin(summary.get(key)) for key in keys},
        )

    @abstractmethod
    def metric(
        self, original: Mapping[Optional[str], float], summary: Mapping[Optional[str], float]
    ) -> float:
        """Distance between two same-keyed real vectors."""

    def metric_contrib(self, original: float, summary: float) -> float:
        """One coordinate's contribution to the decomposed metric.

        Must satisfy ``metric_contrib(x, x) == 0.0`` exactly and
        ``metric_contrib(o, s) >= 0`` so absent coordinates (both sides
        0) contribute nothing.
        """
        raise NotImplementedError(f"{self.name} is not decomposable")

    def metric_finish(self, total: float) -> float:
        """Map the summed contributions back to the metric's value."""
        raise NotImplementedError(f"{self.name} is not decomposable")

    def max_error(self, expression: TensorSum) -> float:
        """Normalization bound computed from the *original* expression.

        Coordinates range between 0 (everything cancelled) and the
        full uncancelled aggregate, so the all-cancelled valuation
        bounds the per-coordinate error; the bound combines the
        coordinates the same way the metric does.
        """
        full = {
            key: _fin(aggregate)
            for key, aggregate in expression.full_vector().items()
        }
        return self.metric(full, {key: 0.0 for key in full})


class EuclideanDistance(VectorValFunc):
    """Euclidean distance between aggregation vectors (§3.2 item 3)."""

    name = "Euclidean Distance"
    decomposable = True
    contrib_kind = "sqdiff"

    # Squares are spelled ``delta * delta`` rather than ``delta ** 2``:
    # CPython routes ``**`` through libm ``pow``, which is not
    # correctly rounded on every platform, while IEEE multiplication is
    # exact everywhere -- the only form python, numpy and C agree on
    # bit-for-bit.

    def metric(self, original, summary) -> float:
        total = 0.0
        for key in original:
            delta = original[key] - summary[key]
            total += delta * delta
        return math.sqrt(total)

    def metric_contrib(self, original: float, summary: float) -> float:
        delta = original - summary
        return delta * delta

    def metric_finish(self, total: float) -> float:
        return math.sqrt(total) if total > 0.0 else 0.0


class AbsoluteDifference(VectorValFunc):
    """Expected-error VAL-FUNC ``|v(p) - v'(p')|`` (§3.2 item 1).

    Over vectors this is the L1 distance, which equals the scalar
    absolute difference when the provenance has a single group.
    """

    name = "Absolute Difference"
    decomposable = True
    contrib_kind = "absdiff"

    def metric(self, original, summary) -> float:
        return sum(abs(original[key] - summary[key]) for key in original)

    def metric_contrib(self, original: float, summary: float) -> float:
        return abs(original - summary)

    def metric_finish(self, total: float) -> float:
        return total if total > 0.0 else 0.0


class Disagreement(VectorValFunc):
    """Fraction-of-disagreeing-valuations VAL-FUNC (§3.2 item 2).

    Returns 1 when the aligned vectors differ at any coordinate and 0
    otherwise; the per-valuation weight ``w(v)`` is applied by the
    distance computation.
    """

    name = "Disagreement"
    decomposable = True
    contrib_kind = "isclose01"

    def metric(self, original, summary) -> float:
        return 0.0 if all(
            math.isclose(original[key], summary[key]) for key in original
        ) else 1.0

    def metric_contrib(self, original: float, summary: float) -> float:
        return 0.0 if math.isclose(original, summary) else 1.0

    def metric_finish(self, total: float) -> float:
        return 0.0 if total == 0.0 else 1.0

    def max_error(self, expression: TensorSum) -> float:
        return 1.0


class DDPCostDifference:
    """The DDP difference VAL-FUNC of Example 5.2.2.

    * both feasible → ``|C_p - C_p'|``;
    * both infeasible → 0;
    * feasibility differs → the maximum possible cost difference,
      i.e. ``max_cost_per_transition * transitions_per_execution``
      (10 × 5 in the thesis).
    """

    name = "Absolute Difference (DDP)"

    def __init__(self, max_cost_per_transition: float = 10.0, max_transitions: int = 5):
        self.max_cost_per_transition = max_cost_per_transition
        self.max_transitions = max_transitions

    @property
    def _penalty(self) -> float:
        return self.max_cost_per_transition * self.max_transitions

    def __call__(
        self,
        original: DDPResult,
        summary: DDPResult,
        alignment: Mapping[str, str],
    ) -> float:
        if original.feasible and summary.feasible:
            return abs(original.cost - summary.cost)
        if not original.feasible and not summary.feasible:
            return 0.0
        return self._penalty

    def max_error(self, expression: DDPExpression) -> float:
        return self._penalty


def _fin(aggregate: Optional[CountedAggregate]) -> float:
    return aggregate.finalized_value() if aggregate is not None else 0.0
