"""Problem and configuration objects for the summarization algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..provenance.annotations import AnnotationUniverse
from ..provenance.ir import AnnotationInterner, ir_enabled
from ..provenance.valuation_classes import ValuationClass
from ..taxonomy.dag import Taxonomy
from .combiners import DomainCombiners
from .constraints import MergeConstraint
from .scoring import SCORING_STRATEGIES


@dataclass
class SummarizationProblem:
    """Everything Algorithm 1 needs besides its tuning knobs.

    Mirrors one row of Table 5.1: the provenance expression and its
    annotation universe, the valuation class ``V_Ann``, the VAL-FUNC,
    the per-domain combiners ``φ``, the semantic merge constraints and
    (optionally) the taxonomy used for tie-breaking.
    """

    expression: object
    universe: AnnotationUniverse
    valuations: ValuationClass
    val_func: object
    combiners: DomainCombiners
    constraint: MergeConstraint
    taxonomy: Optional[Taxonomy] = None
    description: str = ""
    #: Annotation interner shared across runs on this problem (one per
    #: PROX session); ``None`` allocates a fresh one per run in IR mode.
    interner: Optional[AnnotationInterner] = None

    def resolve_interner(self) -> Optional[AnnotationInterner]:
        """The interner runs on this problem should key scoring state on.

        Returns the session-provided interner when set, a fresh one in
        IR mode, and ``None`` under ``REPRO_IR=legacy`` (string-keyed
        scoring state, the seed behavior).
        """
        if self.interner is not None:
            return self.interner
        if ir_enabled():
            self.interner = AnnotationInterner()
            return self.interner
        return None

    def describe(self) -> str:
        """One-paragraph Table 5.1-style description."""
        lines = [
            self.description or "summarization problem",
            f"  expression size: {self.expression.size()}",
            f"  annotations: {len(self.expression.annotation_names())}",
            f"  valuation class: {self.valuations.name} ({len(self.valuations)})",
            f"  VAL-FUNC: {getattr(self.val_func, 'name', type(self.val_func).__name__)}",
            f"  φ combiners: {self.combiners.describe()}",
            f"  constraints: {self.constraint.describe()}",
        ]
        return "\n".join(lines)


@dataclass
class SummarizationConfig:
    """Tuning knobs of Algorithm 1 (§3.2 "Computational problems").

    The three problem flavors map onto the knobs as the thesis
    prescribes:

    1. *weights*: choose ``w_dist`` (``w_size`` defaults to its
       complement), keep ``target_size=1`` / ``target_dist=1.0`` and
       bound ``max_steps``;
    2. *TARGET-SIZE*: set ``w_dist=1``, ``target_dist=1.0``, and the
       desired ``target_size``;
    3. *TARGET-DIST*: set ``w_dist=0``, ``target_size=1``, and the
       desired ``target_dist``.

    Scoring-engine knobs (see :mod:`repro.core.engine`):

    * ``parallelism`` -- worker processes for candidate scoring.
      ``None``/``"auto"`` engages ``os.cpu_count()`` workers on
      multi-core machines once a step has at least
      ``parallel_threshold`` candidates; ``0``/``1``/``"off"`` keeps
      scoring serial (the seed behavior); any larger int forces that
      worker count.
    * ``incremental`` -- carry scoring state across greedy steps,
      invalidating only the merged neighborhood.  ``None``/``"auto"``
      and ``True``/``"on"`` enable the carry whenever the fast path
      applies; ``False``/``"off"`` rebuilds from scratch every step
      (the seed behavior).
    * ``parallel_threshold`` -- minimum candidates per step before the
      auto heuristic considers forking workers worthwhile.
    * ``carry`` -- cross-step candidate carry (see :mod:`repro.core
      .pool` and the engine's delta re-scoring).  ``None``/``"auto"``
      and ``True``/``"on"`` maintain the candidate pool incrementally
      across steps and re-score only the candidates the applied merge
      affects; ``False``/``"off"`` re-enumerates and re-scores
      everything every step (the seed behavior).  Output is identical
      either way.
    * ``lazy`` -- lazy-greedy candidate selection (``"on"``/``True``):
      candidates sit in a priority queue of possibly-stale scores;
      only entries popped from the head are re-scored (sound because
      stale scores are lower bounds, Prop 4.2.2).  Requires
      ``scoring="normalized"`` and ``carry`` not ``"off"``.
    * ``sample_sharing`` -- bit-packed sampled scoring for valuation
      classes too large to enumerate (see :mod:`repro.core
      .sampled_scoring`).  ``None``/``"auto"`` and ``True``/``"on"``
      score every candidate of a step against one shared Monte-Carlo
      batch (common random numbers) through the bitmask kernel;
      ``False``/``"off"`` restores the reference per-candidate sampler
      (``DistanceComputer.sampled``).
    * ``sample_block`` -- Chebyshev-derived sampling budgets are
      rounded up to a multiple of this (default 64), so the packed
      kernel's 64-bit words are fully populated; explicit
      ``distance_samples`` is always used verbatim.
    * ``slo_seconds`` -- declared latency SLO for one whole run.  A run
      whose wall-clock ``total_seconds`` exceeds the target counts one
      ``prox_slo_breaches_total{scope="summarize_run"}`` breach (and
      marks the run span) -- observation only, never an abort.  ``None``
      declares no target.
    * ``repair`` -- streaming summary repair (see :mod:`repro.core
      .streaming`).  ``None``/``"auto"`` and ``True``/``"on"`` make
      every run capture a repair state (equivalence partition,
      candidate pool, step-0 measurement checkpoint) and consume one
      passed via ``Summarizer(..., repair_from=...)``, so a re-run
      after an append-only provenance delta repairs the previous
      summary instead of recomputing it; ``False``/``"off"`` disables
      both.  Repaired output is bit-identical to a from-scratch run
      (asserted by ``tests/core/test_streaming_repair.py``).
    """

    _PARALLELISM_WORDS = {"auto": None, "off": 0}
    _INCREMENTAL_WORDS = {"auto": None, "on": True, "true": True, "off": False, "false": False}
    _LAZY_WORDS = {"on": True, "true": True, "off": False, "false": False}

    w_dist: float = 0.5
    w_size: Optional[float] = None
    target_size: int = 1
    target_dist: float = 1.0
    max_steps: Optional[int] = None
    merge_arity: int = 2
    scoring: str = "normalized"
    group_equivalent_first: bool = True
    max_enumerate: int = 512
    distance_samples: Optional[int] = None
    epsilon: float = 0.05
    delta: float = 0.9
    candidate_cap: Optional[int] = None
    seed: int = 0
    parallelism: Union[int, str, None] = None
    incremental: Union[bool, str, None] = None
    parallel_threshold: int = 64
    carry: Union[bool, str, None] = None
    lazy: Union[bool, str] = False
    sample_sharing: Union[bool, str, None] = None
    sample_block: int = 64
    repair: Union[bool, str, None] = None
    slo_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.parallelism, str):
            word = self.parallelism.strip().lower()
            if word in self._PARALLELISM_WORDS:
                self.parallelism = self._PARALLELISM_WORDS[word]
            else:
                try:
                    self.parallelism = int(word)
                except ValueError:
                    raise ValueError(
                        "parallelism must be 'auto', 'off' or an integer, "
                        f"got {self.parallelism!r}"
                    ) from None
        if self.parallelism is not None and self.parallelism < 0:
            raise ValueError("parallelism must be non-negative")
        if isinstance(self.incremental, str):
            word = self.incremental.strip().lower()
            if word not in self._INCREMENTAL_WORDS:
                raise ValueError(
                    "incremental must be 'auto', 'on' or 'off', "
                    f"got {self.incremental!r}"
                )
            self.incremental = self._INCREMENTAL_WORDS[word]
        if isinstance(self.carry, str):
            word = self.carry.strip().lower()
            if word not in self._INCREMENTAL_WORDS:
                raise ValueError(
                    f"carry must be 'auto', 'on' or 'off', got {self.carry!r}"
                )
            self.carry = self._INCREMENTAL_WORDS[word]
        if isinstance(self.lazy, str):
            word = self.lazy.strip().lower()
            if word not in self._LAZY_WORDS:
                raise ValueError(
                    f"lazy must be 'on' or 'off', got {self.lazy!r}"
                )
            self.lazy = self._LAZY_WORDS[word]
        if isinstance(self.sample_sharing, str):
            word = self.sample_sharing.strip().lower()
            if word not in self._INCREMENTAL_WORDS:
                raise ValueError(
                    "sample_sharing must be 'auto', 'on' or 'off', "
                    f"got {self.sample_sharing!r}"
                )
            self.sample_sharing = self._INCREMENTAL_WORDS[word]
        if isinstance(self.repair, str):
            word = self.repair.strip().lower()
            if word not in self._INCREMENTAL_WORDS:
                raise ValueError(
                    f"repair must be 'auto', 'on' or 'off', got {self.repair!r}"
                )
            self.repair = self._INCREMENTAL_WORDS[word]
        if self.slo_seconds is not None:
            self.slo_seconds = float(self.slo_seconds)
            if self.slo_seconds <= 0:
                raise ValueError("slo_seconds must be positive")
        if self.sample_block < 1:
            raise ValueError("sample_block must be at least 1")
        if self.parallel_threshold < 1:
            raise ValueError("parallel_threshold must be at least 1")
        if not 0.0 <= self.w_dist <= 1.0:
            raise ValueError("w_dist must be in [0, 1]")
        if self.w_size is None:
            self.w_size = 1.0 - self.w_dist
        if abs(self.w_dist + self.w_size - 1.0) > 1e-9:
            raise ValueError("w_dist + w_size must equal 1 (Definition 3.2.4)")
        if self.target_size < 1:
            raise ValueError("target_size must be at least 1")
        if not 0.0 <= self.target_dist <= 1.0:
            raise ValueError("target_dist is a normalized distance in [0, 1]")
        if self.max_steps is not None and self.max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if self.merge_arity < 2:
            raise ValueError("merge_arity must be at least 2")
        if self.scoring not in SCORING_STRATEGIES:
            raise ValueError(
                f"scoring must be one of {SCORING_STRATEGIES}, got {self.scoring!r}"
            )
        if self.lazy:
            if self.scoring != "normalized":
                raise ValueError(
                    "lazy candidate selection requires the 'normalized' "
                    "scoring strategy (stale lower bounds only order "
                    "absolute scores, not per-step ordinal ranks)"
                )
            if self.carry is False:
                raise ValueError(
                    "lazy candidate selection requires carry; pass "
                    "carry='auto'/'on' or drop lazy='on'"
                )
