"""Combiner functions ``φ`` lifting valuations to summary annotations (§3.2).

When annotations ``a1, ..., ak`` are mapped to a summary annotation
``a'``, a valuation on the original annotations must be transformed
into one on the summaries.  The combiner ``φ`` decides how: with the
disjunction combiner an annotation summary is cancelled only when *all*
of its members are cancelled; DDP cost variables instead take the MAX
of their members' 0/1 multipliers (Table 5.1).

:class:`DomainCombiners` assigns a combiner per annotation domain
(MovieLens/Wikipedia: OR everywhere; DDP: OR for DB variables and MAX
for cost variables) and performs the actual lift
``v ↦ v^{h,φ}`` given the cumulative mapping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

from ..provenance.annotations import AnnotationUniverse
from ..provenance.valuation import Valuation
from .mapping import MappingState


class Combiner(ABC):
    """Reduce the members' valuation values to the summary's value."""

    #: Table 5.1 name of the combiner.
    name: str = "combiner"

    @abstractmethod
    def lift(self, member_values: Sequence[float]) -> float:
        """Value of the summary annotation given its members' values."""


class OrCombiner(Combiner):
    """Logical OR: the summary is cancelled only if all members are."""

    name = "Logical OR"

    def lift(self, member_values: Sequence[float]) -> float:
        return 1.0 if any(value != 0 for value in member_values) else 0.0


class AndCombiner(Combiner):
    """Logical AND: the summary is cancelled if any member is."""

    name = "Logical AND"

    def lift(self, member_values: Sequence[float]) -> float:
        return 1.0 if all(value != 0 for value in member_values) else 0.0


class MaxCombiner(Combiner):
    """MAX of member values -- used for DDP cost variables."""

    name = "MAX"

    def lift(self, member_values: Sequence[float]) -> float:
        return max(member_values) if member_values else 1.0


class MinCombiner(Combiner):
    """MIN of member values."""

    name = "MIN"

    def lift(self, member_values: Sequence[float]) -> float:
        return min(member_values) if member_values else 1.0


#: Shared stateless instances.
OR = OrCombiner()
AND = AndCombiner()
MAXC = MaxCombiner()
MINC = MinCombiner()


class DomainCombiners:
    """Per-domain combiner assignment plus the lift itself."""

    def __init__(
        self,
        default: Combiner = OR,
        per_domain: Optional[Mapping[str, Combiner]] = None,
    ):
        self._default = default
        self._per_domain: Dict[str, Combiner] = dict(per_domain or {})

    def for_domain(self, domain: str) -> Combiner:
        return self._per_domain.get(domain, self._default)

    def describe(self) -> str:
        """Human-readable description (Table 5.1 reporting)."""
        if not self._per_domain:
            return self._default.name
        parts = [
            f"{domain}: {combiner.name}"
            for domain, combiner in sorted(self._per_domain.items())
        ]
        return ", ".join(parts) + f", otherwise {self._default.name}"

    def lifted_false_set(
        self,
        valuation: Valuation,
        mapping: MappingState,
        universe: AnnotationUniverse,
    ) -> FrozenSet[str]:
        """Current annotations made false by the lifted valuation ``v^{h,φ}``.

        Only annotations whose members include a base the valuation
        deviates on can deviate themselves, so the lift is
        ``O(|v.assignment|)`` rather than ``O(|Ann'|)`` -- the hot path
        of candidate scoring.

        The thesis's valuations are 0/1, so the false set fully
        determines the lifted valuation; fractional multipliers would
        need :meth:`lift_valuation` instead.
        """
        touched: Dict[str, None] = {}
        for base in valuation.assignment:
            current = mapping.get(base)
            if current is not None:
                touched.setdefault(current)
        false: set = set()
        for current in touched:
            annotation = universe[current]
            members = annotation.base_members()
            combiner = self.for_domain(annotation.domain)
            value = combiner.lift([valuation.value(member) for member in members])
            if value == 0:
                false.add(current)
        return frozenset(false)

    def lift_valuation(
        self,
        valuation: Valuation,
        mapping: MappingState,
        universe: AnnotationUniverse,
    ) -> Valuation:
        """The full lifted valuation ``v^{h,φ}`` over current annotations."""
        touched: Dict[str, None] = {}
        for base in valuation.assignment:
            current = mapping.get(base)
            if current is not None:
                touched.setdefault(current)
        assignment: Dict[str, float] = {}
        for current in touched:
            annotation = universe[current]
            members = annotation.base_members()
            combiner = self.for_domain(annotation.domain)
            value = combiner.lift([valuation.value(member) for member in members])
            if value != valuation.default:
                assignment[current] = value
        return Valuation(
            assignment,
            default=valuation.default,
            weight=valuation.weight,
            label=f"{valuation.label or valuation}^h",
        )
