"""Valuation-equivalence grouping (``GroupEquivalent``, Prop. 4.2.1).

Two annotations are *equivalent* with respect to ``V_Ann`` when every
valuation in the class assigns them the same truth value.  Merging
equivalent annotations can never change any valuation's result, so the
distance stays exactly 0 while the size shrinks -- which is why
Algorithm 1 performs this grouping before its greedy loop, and why
finding a minimal distance-0 summary is in PTIME.

Following the proof of Proposition 4.2.1, classes are computed by
iterative refinement: start from the partition induced by the first
valuation's (true-set, false-set) and intersect with each further
valuation's partition.  Equivalently (and how we implement it), group
annotations by their truth *signature* across the class.

We additionally respect the semantic constraints while merging inside
an equivalence class: the thesis never merges annotations that share
no attribute, so each class is greedily split into
constraint-compatible groups first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.ir import ir_enabled
from ..provenance.valuation_classes import ValuationClass
from .candidates import virtual_summary
from .constraints import MergeConstraint, MergeProposal


def equivalence_classes(
    names: Sequence[str], valuations: ValuationClass
) -> List[Tuple[str, ...]]:
    """Partition ``names`` into ``V_Ann``-equivalence classes.

    Each annotation's signature is its truth value under every
    valuation of the class; equal signatures mean no valuation can
    ever tell the annotations apart.  In IR mode the signature is
    packed into one integer (bit ``v`` set ⇔ true under valuation
    ``v``) -- same partition, same first-occurrence class order, one
    hashable int instead of a bool tuple per annotation.
    """
    valuation_list = list(valuations)
    if ir_enabled():
        packed: Dict[int, List[str]] = {}
        for name in names:
            signature = 0
            for index, valuation in enumerate(valuation_list):
                if valuation.truth(name):
                    signature |= 1 << index
            packed.setdefault(signature, []).append(name)
        return [tuple(group) for group in packed.values()]
    signatures: Dict[Tuple[bool, ...], List[str]] = {}
    for name in names:
        signature = tuple(valuation.truth(name) for valuation in valuation_list)
        signatures.setdefault(signature, []).append(name)
    return [tuple(group) for group in signatures.values()]


def constrained_groups(
    annotations: Sequence[Annotation],
    constraint: MergeConstraint,
) -> List[Tuple[List[Annotation], MergeProposal]]:
    """Split a set of equivalent annotations into mergeable groups.

    Greedy: each annotation joins the first existing group whose
    (virtual) summary the constraint accepts it against; otherwise it
    seeds a new group.  Returned groups have at least two members.
    """
    groups: List[List[Annotation]] = []
    proposals: List[Optional[MergeProposal]] = []
    representatives: List[Annotation] = []
    for annotation in annotations:
        placed = False
        for index, representative in enumerate(representatives):
            proposal = constraint.propose(representative, annotation)
            if proposal is not None:
                groups[index].append(annotation)
                proposals[index] = proposal
                representatives[index] = virtual_summary(groups[index], proposal)
                placed = True
                break
        if not placed:
            groups.append([annotation])
            proposals.append(None)
            representatives.append(annotation)
    return [
        (group, proposal)
        for group, proposal in zip(groups, proposals)
        if len(group) >= 2 and proposal is not None
    ]


def minimal_zero_distance_summary(expression, valuations: ValuationClass):
    """The minimal summary at distance exactly 0 (Proposition 4.2.1).

    Merges every full ``V_Ann``-equivalence class, ignoring semantic
    constraints -- this is the PTIME construction of the proposition's
    proof, where the minimal ``p'`` with ``distance(p, p') = 0`` is
    obtained by mapping each equivalence class to one representative.

    Returns ``(summary_expression, mapping)`` where ``mapping`` sends
    each annotation to its class representative (the lexicographically
    first member, as the proof's "arbitrary order").
    """
    step: Dict[str, str] = {}
    names = sorted(expression.annotation_names())
    for class_names in equivalence_classes(names, valuations):
        if len(class_names) < 2:
            continue
        representative = min(class_names)
        for name in class_names:
            if name != representative:
                step[name] = representative
    if not step:
        return expression, step
    return expression.apply_mapping(step), step


def group_equivalent(
    expression,
    universe: AnnotationUniverse,
    valuations: ValuationClass,
    constraint: MergeConstraint,
):
    """The ``GroupEquivalent`` step of Algorithm 1 (line 1).

    Returns ``(new_expression, step_mapping, merge_count)`` where
    ``step_mapping`` maps every merged current annotation to its new
    summary annotation (registered in ``universe``).
    """
    step: Dict[str, str] = {}
    merges = 0
    names = sorted(expression.annotation_names())
    for class_names in equivalence_classes(names, valuations):
        if len(class_names) < 2:
            continue
        by_domain: Dict[str, List[Annotation]] = {}
        for name in class_names:
            annotation = universe[name]
            by_domain.setdefault(annotation.domain, []).append(annotation)
        for domain_annotations in by_domain.values():
            for group, proposal in constrained_groups(domain_annotations, constraint):
                summary = universe.new_summary(
                    group, label=proposal.label, concept=proposal.concept
                )
                for annotation in group:
                    step[annotation.name] = summary.name
                merges += len(group) - 1
    if not step:
        return expression, step, 0
    return expression.apply_mapping(step), step, merges
