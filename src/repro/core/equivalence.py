"""Valuation-equivalence grouping (``GroupEquivalent``, Prop. 4.2.1).

Two annotations are *equivalent* with respect to ``V_Ann`` when every
valuation in the class assigns them the same truth value.  Merging
equivalent annotations can never change any valuation's result, so the
distance stays exactly 0 while the size shrinks -- which is why
Algorithm 1 performs this grouping before its greedy loop, and why
finding a minimal distance-0 summary is in PTIME.

Following the proof of Proposition 4.2.1, classes are computed by
iterative refinement: start from the partition induced by the first
valuation's (true-set, false-set) and intersect with each further
valuation's partition.  Equivalently (and how we implement it), group
annotations by their truth *signature* across the class.

We additionally respect the semantic constraints while merging inside
an equivalence class: the thesis never merges annotations that share
no attribute, so each class is greedily split into
constraint-compatible groups first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, List, Mapping, Optional, Sequence, Tuple

from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.ir import ir_enabled
from ..provenance.valuation_classes import ValuationClass
from .candidates import virtual_summary
from .constraints import MergeConstraint, MergeProposal


@dataclass
class EquivalencePartition:
    """Per-annotation truth signatures, repairable under deltas.

    The partition of Prop. 4.2.1 is fully determined by each
    annotation's *signature* -- its truth value under every valuation,
    packed into one integer (bit ``v`` set ⇔ true under valuation
    ``v``).  Signatures are per-annotation and per-valuation-coordinate,
    so a provenance delta only perturbs the coordinates it touches:

    * a **new annotation** needs one fresh signature (full scan);
    * a **new valuation** appends one bit to every signature;
    * an **extended valuation** (its false set grew) flips exactly the
      bits of the annotations whose truth changed.

    Everything else is carried verbatim -- that locality is what makes
    delta class-repair sound (see docs/ALGORITHM.md).  Valuations are
    addressed by label: repair requires the old labels to be a unique
    prefix of the new ones and otherwise falls back to a full rebuild,
    so a reordered or relabeled valuation class degrades to the exact
    from-scratch computation instead of a wrong partition.
    """

    valuation_labels: Tuple[str, ...]
    signatures: Dict[str, int]

    @classmethod
    def build(
        cls, names: Sequence[str], valuations: ValuationClass
    ) -> "EquivalencePartition":
        """Full signature scan (the non-incremental baseline)."""
        valuation_list = list(valuations)
        labels = tuple(str(valuation) for valuation in valuation_list)
        signatures: Dict[str, int] = {}
        for name in names:
            signature = 0
            for index, valuation in enumerate(valuation_list):
                if valuation.truth(name):
                    signature |= 1 << index
            signatures[name] = signature
        return cls(labels, signatures)

    def repair(
        self,
        names: Sequence[str],
        valuations: ValuationClass,
        flipped: Optional[Mapping[str, Collection[str]]] = None,
    ) -> "EquivalencePartition":
        """Delta-update: carry old signatures, recompute only the delta.

        ``names`` / ``valuations`` describe the *post-delta* state;
        ``flipped`` maps a valuation label to the annotations whose
        truth under it changed (e.g. the names an extension added to
        its false set).  Falls back to :meth:`build` when the old
        valuation labels are not a unique prefix of the new ones.
        """
        valuation_list = list(valuations)
        labels = tuple(str(valuation) for valuation in valuation_list)
        n_old = len(self.valuation_labels)
        if (
            labels[:n_old] != self.valuation_labels
            or len(set(labels)) != len(labels)
        ):
            return EquivalencePartition.build(names, valuation_list)
        appended = valuation_list[n_old:]
        signatures: Dict[str, int] = {}
        for name in names:
            carried = self.signatures.get(name)
            if carried is None:
                signature = 0
                for index, valuation in enumerate(valuation_list):
                    if valuation.truth(name):
                        signature |= 1 << index
            else:
                signature = carried
                for offset, valuation in enumerate(appended):
                    if valuation.truth(name):
                        signature |= 1 << (n_old + offset)
            signatures[name] = signature
        if flipped:
            index_of = {label: index for index, label in enumerate(labels)}
            for label, touched in flipped.items():
                index = index_of.get(label)
                if index is None:
                    continue
                valuation = valuation_list[index]
                bit = 1 << index
                for name in touched:
                    if name not in signatures:
                        continue
                    if valuation.truth(name):
                        signatures[name] |= bit
                    else:
                        signatures[name] &= ~bit
        return EquivalencePartition(labels, signatures)

    def classes(self, names: Sequence[str]) -> List[Tuple[str, ...]]:
        """Bucket ``names`` (in the given order) by equal signature."""
        buckets: Dict[int, List[str]] = {}
        signatures = self.signatures
        for name in names:
            buckets.setdefault(signatures[name], []).append(name)
        return [tuple(group) for group in buckets.values()]


def compute_partition(
    names: Sequence[str], valuations: ValuationClass
) -> EquivalencePartition:
    """Build the repairable signature partition for ``names``."""
    return EquivalencePartition.build(names, valuations)


def equivalence_classes(
    names: Sequence[str],
    valuations: ValuationClass,
    previous: Optional[EquivalencePartition] = None,
    flipped: Optional[Mapping[str, Collection[str]]] = None,
) -> List[Tuple[str, ...]]:
    """Partition ``names`` into ``V_Ann``-equivalence classes.

    Each annotation's signature is its truth value under every
    valuation of the class; equal signatures mean no valuation can
    ever tell the annotations apart.  In IR mode the signature is
    packed into one integer (bit ``v`` set ⇔ true under valuation
    ``v``) -- same partition, same first-occurrence class order, one
    hashable int instead of a bool tuple per annotation.

    Delta-update mode: passing ``previous`` (the partition of the
    pre-delta state) repairs signatures locally via
    :meth:`EquivalencePartition.repair` instead of rescanning every
    (annotation, valuation) pair; ``flipped`` names the truth flips of
    extended valuations.  The result is identical to the full scan.
    """
    if previous is not None:
        return previous.repair(names, valuations, flipped).classes(names)
    valuation_list = list(valuations)
    if ir_enabled():
        packed: Dict[int, List[str]] = {}
        for name in names:
            signature = 0
            for index, valuation in enumerate(valuation_list):
                if valuation.truth(name):
                    signature |= 1 << index
            packed.setdefault(signature, []).append(name)
        return [tuple(group) for group in packed.values()]
    signatures: Dict[Tuple[bool, ...], List[str]] = {}
    for name in names:
        signature = tuple(valuation.truth(name) for valuation in valuation_list)
        signatures.setdefault(signature, []).append(name)
    return [tuple(group) for group in signatures.values()]


def constrained_groups(
    annotations: Sequence[Annotation],
    constraint: MergeConstraint,
) -> List[Tuple[List[Annotation], MergeProposal]]:
    """Split a set of equivalent annotations into mergeable groups.

    Greedy: each annotation joins the first existing group whose
    (virtual) summary the constraint accepts it against; otherwise it
    seeds a new group.  Returned groups have at least two members.
    """
    groups: List[List[Annotation]] = []
    proposals: List[Optional[MergeProposal]] = []
    representatives: List[Annotation] = []
    for annotation in annotations:
        placed = False
        for index, representative in enumerate(representatives):
            proposal = constraint.propose(representative, annotation)
            if proposal is not None:
                groups[index].append(annotation)
                proposals[index] = proposal
                representatives[index] = virtual_summary(groups[index], proposal)
                placed = True
                break
        if not placed:
            groups.append([annotation])
            proposals.append(None)
            representatives.append(annotation)
    return [
        (group, proposal)
        for group, proposal in zip(groups, proposals)
        if len(group) >= 2 and proposal is not None
    ]


def minimal_zero_distance_summary(expression, valuations: ValuationClass):
    """The minimal summary at distance exactly 0 (Proposition 4.2.1).

    Merges every full ``V_Ann``-equivalence class, ignoring semantic
    constraints -- this is the PTIME construction of the proposition's
    proof, where the minimal ``p'`` with ``distance(p, p') = 0`` is
    obtained by mapping each equivalence class to one representative.

    Returns ``(summary_expression, mapping)`` where ``mapping`` sends
    each annotation to its class representative (the lexicographically
    first member, as the proof's "arbitrary order").
    """
    step: Dict[str, str] = {}
    names = sorted(expression.annotation_names())
    for class_names in equivalence_classes(names, valuations):
        if len(class_names) < 2:
            continue
        representative = min(class_names)
        for name in class_names:
            if name != representative:
                step[name] = representative
    if not step:
        return expression, step
    return expression.apply_mapping(step), step


def group_equivalent(
    expression,
    universe: AnnotationUniverse,
    valuations: ValuationClass,
    constraint: MergeConstraint,
    partition: Optional[EquivalencePartition] = None,
):
    """The ``GroupEquivalent`` step of Algorithm 1 (line 1).

    Returns ``(new_expression, step_mapping, merge_count)`` where
    ``step_mapping`` maps every merged current annotation to its new
    summary annotation (registered in ``universe``).  Summary names are
    content-derived (:meth:`AnnotationUniverse.equivalence_summary`),
    so re-running the grouping on an unchanged class -- including after
    a streaming delta that left it intact -- resolves to the *same*
    annotation instead of minting a fresh counter name.

    ``partition``, when given, supplies the equivalence classes (a
    :class:`EquivalencePartition` built or repaired elsewhere) instead
    of a fresh signature scan.
    """
    step: Dict[str, str] = {}
    merges = 0
    names = sorted(expression.annotation_names())
    classes = (
        partition.classes(names)
        if partition is not None
        else equivalence_classes(names, valuations)
    )
    for class_names in classes:
        if len(class_names) < 2:
            continue
        by_domain: Dict[str, List[Annotation]] = {}
        for name in class_names:
            annotation = universe[name]
            by_domain.setdefault(annotation.domain, []).append(annotation)
        for domain_annotations in by_domain.values():
            for group, proposal in constrained_groups(domain_annotations, constraint):
                summary = universe.equivalence_summary(
                    group, label=proposal.label, concept=proposal.concept
                )
                for annotation in group:
                    step[annotation.name] = summary.name
                merges += len(group) - 1
    if not step:
        return expression, step, 0
    return expression.apply_mapping(step), step, merges
