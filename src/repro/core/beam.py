"""Beam-search summarization -- widening the "A*-like" search (§4.2).

The thesis frames its search as "an A*-like search of expressions" but
Algorithm 1 keeps a single frontier expression per step (greedy
best-first).  :class:`BeamSummarizer` generalizes the frontier to a
*beam* of the ``beam_width`` best expressions: each step expands every
beam member's candidates, scores them all with the same
``CandidateScore``, and keeps the best ``beam_width`` distinct
expressions.  ``beam_width=1`` coincides with Algorithm 1 step for
step.

Because distance is monotone along merge chains (Prop 4.2.2) a wider
beam can only find summaries at least as good as the greedy path for
the same number of steps -- the ``bench_ablation_beam`` benchmark
measures how much it actually helps and at what cost.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..observability import metrics as _metrics
from ..observability import slo as _slo
from ..observability import tracing as _tracing
from .candidates import enumerate_candidates
from .distance import DistanceComputer, DistanceEstimate
from .engine import ScoringEngine
from .equivalence import group_equivalent
from .mapping import MappingState
from .pool import CandidatePool
from .problem import SummarizationConfig, SummarizationProblem
from .summarize import (
    StepRecord,
    SummarizationResult,
    _SUMMARIZE_RUNS,
    _SUMMARIZE_SECONDS,
    _SUMMARIZE_STEPS,
)


@dataclass
class _Beam:
    """One frontier expression with its history."""

    expression: object
    mapping: MappingState
    score: float
    steps: List[StepRecord]
    last_distance: Optional[DistanceEstimate]
    #: Per-member candidate pool, maintained along this member's own
    #: merge chain (children branch it via :meth:`CandidatePool.child`).
    pool: Optional[CandidatePool] = None


class BeamSummarizer:
    """Algorithm 1 with a configurable search beam."""

    def __init__(
        self,
        problem: SummarizationProblem,
        config: SummarizationConfig,
        beam_width: int = 2,
    ):
        if beam_width < 1:
            raise ValueError("beam_width must be at least 1")
        self.problem = problem
        self.config = config
        self.beam_width = beam_width
        self._rng = random.Random(config.seed)

    def run(self) -> SummarizationResult:
        span = _tracing.span("beam_summarize", beam_width=self.beam_width)
        with span:
            result = self._run(span)
        slo = self.config.slo_seconds
        if slo is not None and result.total_seconds > slo:
            _slo.record_breach("summarize_run")
            if span is not _tracing.NULL_SPAN:
                span.set("slo_seconds", slo)
                span.set("slo_breached", True)
        if _metrics.ENABLED:
            _SUMMARIZE_RUNS.inc(algorithm="beam")
            _SUMMARIZE_STEPS.inc(result.n_steps)
            _SUMMARIZE_SECONDS.observe(result.total_seconds)
        return result

    def _run(self, run_span) -> SummarizationResult:
        problem, config = self.problem, self.config
        started = time.perf_counter()
        original = problem.expression
        interner = problem.resolve_interner()
        computer = DistanceComputer(
            original,
            problem.valuations,
            problem.val_func,
            problem.combiners,
            problem.universe,
            max_enumerate=config.max_enumerate,
            n_samples=config.distance_samples,
            epsilon=config.epsilon,
            delta=config.delta,
            rng=self._rng,
            interner=interner,
            sample_block=config.sample_block,
        )
        # Each beam member has its own expression, so the engine's
        # cross-step carry never matches -- it simply rebuilds a fresh
        # step scorer (or falls back to the naive path) per member.
        # The candidate *pool* carry does apply: every member owns a
        # pool branched from its parent's (CandidatePool.child), so
        # only the member's own last merge is re-enumerated.
        engine = ScoringEngine(problem, config, computer)
        root_pool: Optional[CandidatePool] = (
            CandidatePool(
                problem.universe,
                problem.constraint,
                arity=config.merge_arity,
                cap=config.candidate_cap,
                rng=self._rng,
                interner=interner,
            )
            if config.carry is not False
            else None
        )

        current = original
        mapping = MappingState(sorted(original.annotation_names()))
        equivalence_merges = 0
        equivalence_mapping: Dict[str, str] = {}
        if config.group_equivalent_first:
            current, equivalence_mapping, equivalence_merges = group_equivalent(
                original, problem.universe, problem.valuations, problem.constraint
            )
            if equivalence_mapping:
                mapping = mapping.compose(equivalence_mapping)

        beams = [_Beam(current, mapping, 0.0, [], None, pool=root_pool)]
        stop_reason = "exhausted"
        for step_index in range(config.max_steps or 0):
            expansions: List[
                Tuple[float, DistanceEstimate, int, _Beam, Tuple[str, ...], str, int]
            ] = []
            step_started = time.perf_counter()
            step_span = _tracing.span("beam_step[%d]", step_index + 1)
            step_span.set("n_beams", len(beams))
            with step_span:
                for beam in beams:
                    if beam.pool is not None:
                        candidates = beam.pool.candidates(beam.expression)
                    else:
                        candidates = enumerate_candidates(
                            beam.expression,
                            problem.universe,
                            problem.constraint,
                            arity=config.merge_arity,
                            cap=config.candidate_cap,
                            rng=self._rng,
                            interner=interner,
                        )
                    if not candidates:
                        continue
                    measured, _ = engine.measure(
                        candidates, beam.expression, beam.mapping
                    )
                    expansions.extend(
                        self._expand(beam, measured, len(candidates), original, config)
                    )
                step_span.set("n_expansions", len(expansions))
            if not expansions:
                stop_reason = "exhausted"
                break
            expansions.sort(key=lambda entry: (entry[0], entry[4]))
            candidate_seconds = (time.perf_counter() - step_started) / len(expansions)

            next_beams: List[_Beam] = []
            seen_keys: set = set()
            for score, distance, size, beam, parts, label, n_candidates in expansions:
                if len(next_beams) >= self.beam_width:
                    break
                summary_parts = [problem.universe[name] for name in parts]
                key = frozenset().union(
                    *(part.base_members() for part in summary_parts)
                ) | {id(beam)}
                frozen = (frozenset(key), size)
                if frozen in seen_keys:
                    continue
                seen_keys.add(frozen)
                summary = problem.universe.new_summary(summary_parts, label=label)
                step_mapping = {name: summary.name for name in parts}
                expression = beam.expression.apply_mapping(step_mapping)
                new_mapping = beam.mapping.compose(step_mapping)
                record = StepRecord(
                    step=len(beam.steps) + 1,
                    merged=parts,
                    new_annotation=summary.name,
                    label=label,
                    size_after=expression.size(),
                    distance_after=distance,
                    n_candidates=n_candidates,
                    candidate_seconds=candidate_seconds,
                    step_seconds=time.perf_counter() - step_started,
                    scoring_path=engine.last_path,
                )
                next_beams.append(
                    _Beam(
                        expression,
                        new_mapping,
                        score,
                        beam.steps + [record],
                        distance,
                        pool=(
                            beam.pool.child(parts, summary.name, expression)
                            if beam.pool is not None
                            else None
                        ),
                    )
                )
            beams = next_beams
            stop_reason = "max_steps"

            if all(
                beam.expression.size() <= config.target_size for beam in beams
            ):
                stop_reason = "target_size"
                break

        best = min(beams, key=lambda beam: beam.score)
        final_distance = computer.distance(best.expression, best.mapping)
        if run_span is not _tracing.NULL_SPAN:
            run_span.set("steps", len(best.steps))
            run_span.set("stop_reason", stop_reason)
            run_span.set("final_size", best.expression.size())
            run_span.set("final_distance", final_distance.normalized)
            run_span.set("scoring_path_counts", dict(engine.path_counts))
            run_span.set("scoring_fallbacks", engine.fallback_count)
        return SummarizationResult(
            original_expression=original,
            summary_expression=best.expression,
            mapping=best.mapping,
            universe=problem.universe,
            steps=best.steps,
            stop_reason=stop_reason,
            final_size=best.expression.size(),
            final_distance=final_distance,
            equivalence_merges=equivalence_merges,
            total_seconds=time.perf_counter() - started,
            config=config,
            equivalence_mapping=equivalence_mapping,
        )

    @staticmethod
    def _expand(beam, measured, n_candidates, original, config):
        """Score one beam member's measured candidates (same math as before)."""
        original_size = original.size()
        expansions = []
        for scored in measured:
            candidate = scored.candidate
            size, distance = scored.size, scored.distance
            r_size = size / original_size if original_size else 0.0
            score = config.w_dist * distance.normalized + config.w_size * r_size
            expansions.append(
                (
                    score,
                    distance,
                    size,
                    beam,
                    candidate.parts,
                    candidate.proposal.label,
                    n_candidates,
                )
            )
        return expansions
