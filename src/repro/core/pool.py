"""Cross-step candidate pool maintenance for the Algorithm-1 loop.

Re-running ``enumerate_candidates`` every greedy step re-proposes all
O(n²) same-domain pairs even though one applied merge ``{a, b} → c``
only (1) removes the candidates mentioning ``a``/``b`` and (2) adds
the pairs seeded by ``c``.  :class:`CandidatePool` persists the raw
candidate list across steps and edits exactly that delta:

* candidates whose *seed pair* mentions a merged annotation are
  dropped (the fresh enumeration could not produce them);
* candidates whose seed survives but whose ``arity > 2`` greedy
  extension mentioned a merged annotation are re-extended against the
  new annotation pool;
* surviving ``arity > 2`` candidates in the merged domain are
  re-extended only when ``c`` would have been accepted into their
  greedy chain (checked by replaying the chain prefix below ``c``'s
  position -- the decisions for surviving members are unchanged
  because :meth:`~repro.core.constraints.MergeConstraint.propose` is
  deterministic and rejected annotations never alter the chain state);
* the new pairs ``{c, x}`` are proposed against the surviving
  same-domain annotations, reusing
  :func:`~repro.core.candidates.propose_candidate` (and with it the
  greedy extension).

The maintained list is then re-sorted into the exact generation order
of a fresh :func:`~repro.core.candidates.enumerate_candidates` call --
domains by smallest member name, pairs by seed names -- and finalized
through the *same* dedupe / cap-subsampling code, so the result is
identical candidate for candidate, in identical order, with identical
shared-RNG consumption (asserted by ``tests/core/test_candidate_pool``
over an RNG grid).

Robustness: any maintenance failure invalidates the pool, and the next
:meth:`candidates` call falls back to a full fresh enumeration -- the
same contract the scoring engine's fast paths follow.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.ir import AnnotationInterner
from .candidates import (
    Candidate,
    annotations_by_domain,
    finalize_candidates,
    generate_candidates,
    propose_candidate,
    virtual_summary,
)
from .constraints import MergeConstraint


class CandidatePool:
    """A candidate list maintained incrementally across greedy steps."""

    def __init__(
        self,
        universe: AnnotationUniverse,
        constraint: MergeConstraint,
        arity: int = 2,
        cap: Optional[int] = None,
        rng: Optional[random.Random] = None,
        interner: Optional[AnnotationInterner] = None,
    ):
        if arity < 2:
            raise ValueError("merge arity must be at least 2")
        self.universe = universe
        self.constraint = constraint
        self.arity = arity
        self.cap = cap
        self.rng = rng
        self.interner = interner
        #: Raw candidates in fresh-generation order (before dedupe/cap);
        #: ``None`` means the next :meth:`candidates` call re-enumerates.
        self._raw: Optional[List[Candidate]] = None
        self._expression: object = None
        #: Telemetry: steps whose list was maintained vs. re-enumerated.
        self.maintained_steps = 0
        self.rebuilt_steps = 0

    # -- public API --------------------------------------------------------------

    def size(self) -> int:
        """Carried raw candidates (0 when invalidated) -- the resource
        accountant's per-session pool footprint."""
        return len(self._raw) if self._raw is not None else 0

    def candidates(self, expression) -> List[Candidate]:
        """The step's candidate list for ``expression``.

        Identical (candidates and order) to ``enumerate_candidates``;
        re-enumerates from scratch when the pool was invalidated or
        ``expression`` is not the one the pool was advanced to.
        """
        if self._raw is None or self._expression is not expression:
            self._raw = generate_candidates(
                expression, self.universe, self.constraint, self.arity
            )
            self._expression = expression
            self.rebuilt_steps += 1
        else:
            self.maintained_steps += 1
        # Finalize per call: dedupe and cap subsampling must consume the
        # shared RNG exactly as a fresh enumeration would.
        return finalize_candidates(
            list(self._raw), self.arity, self.cap, self.rng, self.interner
        )

    def advance(self, parts: Sequence[str], new_name: str, new_expression) -> None:
        """Maintain the pool past the applied merge ``parts → new_name``.

        A failed maintenance is never fatal: the pool is invalidated
        and the next step re-enumerates.
        """
        if self._raw is None:
            return
        try:
            self._raw = self._maintain(tuple(parts), new_name, new_expression)
            self._expression = new_expression
        except Exception:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop the carried list (e.g. after reverting a step)."""
        self._raw = None
        self._expression = None

    def seed(self, raw: Sequence[Candidate], expression) -> None:
        """Adopt a carried raw list (cross-run repair checkpoint)."""
        self._raw = list(raw)
        self._expression = expression

    def raw_snapshot(self, expression) -> Optional[List[Candidate]]:
        """Copy of the raw list, if it was maintained for ``expression``."""
        if self._raw is None or self._expression is not expression:
            return None
        return list(self._raw)

    def ingest(self, new_expression) -> int:
        """Maintain the carried list across a streaming provenance delta.

        Unlike :meth:`advance` (one applied merge), an ingest may add
        *and* remove several annotations at once: delta annotations
        arrive, and equivalence summaries whose class gained a member
        are replaced by new ones.  The carried list is edited to match
        a fresh enumeration of ``new_expression`` exactly:

        * candidates whose seed pair mentions a removed annotation are
          dropped (every surviving pair is already in the list, so no
          replacement pair is lost);
        * candidates whose ``arity > 2`` extension mentions a removed
          annotation, or whose greedy chain an added annotation would
          join, are re-proposed from their seed;
        * the pairs involving added annotations are proposed fresh;
        * everything is re-sorted into fresh-generation order.

        Returns the number of carried entries invalidated (dropped or
        re-proposed) -- the ``prox_repair_invalidated_total`` count.
        On any failure the pool is invalidated and the next
        :meth:`candidates` call re-enumerates (the usual contract).
        """
        if self._raw is None or self._expression is None:
            self.invalidate()
            return 0
        try:
            invalidated, entries = self._ingest_maintain(new_expression)
        except Exception:
            invalidated = len(self._raw)
            self.invalidate()
            return invalidated
        self._raw = entries
        self._expression = new_expression
        return invalidated

    def _ingest_maintain(self, new_expression) -> Tuple[int, List[Candidate]]:
        universe = self.universe
        old_names = frozenset(self._expression.annotation_names())
        new_names = frozenset(new_expression.annotation_names())
        added = new_names - old_names
        removed = old_names - new_names
        by_domain = annotations_by_domain(new_expression, universe)
        added_by_domain: dict = {}
        for name in added:
            annotation = universe[name]
            added_by_domain.setdefault(annotation.domain, []).append(annotation)

        invalidated = 0
        entries: List[Candidate] = []
        for candidate in self._raw:
            seed = candidate.parts[:2]
            if removed.intersection(candidate.parts):
                invalidated += 1
                if removed.intersection(seed):
                    continue
                entries.append(self._repropose(seed, by_domain))
                continue
            domain = universe[seed[0]].domain
            if self.arity > 2 and any(
                self._joins_extension(candidate, annotation)
                for annotation in added_by_domain.get(domain, ())
            ):
                invalidated += 1
                entries.append(self._repropose(seed, by_domain))
            else:
                entries.append(candidate)

        for domain, fresh in added_by_domain.items():
            domain_annotations = by_domain.get(domain, [])
            pairs = {
                tuple(sorted((annotation.name, other.name)))
                for annotation in fresh
                for other in domain_annotations
                if other.name != annotation.name
            }
            for first_name, second_name in sorted(pairs):
                candidate = propose_candidate(
                    universe[first_name],
                    universe[second_name],
                    domain_annotations,
                    self.constraint,
                    self.arity,
                )
                if candidate is not None:
                    entries.append(candidate)

        domain_min = {
            domain: annotations[0].name for domain, annotations in by_domain.items()
        }
        entries.sort(
            key=lambda candidate: (
                domain_min[universe[candidate.parts[0]].domain],
                candidate.parts[0],
                candidate.parts[1],
            )
        )
        return invalidated, entries

    def child(self, parts: Sequence[str], new_name: str, new_expression) -> "CandidatePool":
        """An advanced copy, leaving this pool untouched (beam search)."""
        twin = CandidatePool(
            self.universe,
            self.constraint,
            arity=self.arity,
            cap=self.cap,
            rng=self.rng,
            interner=self.interner,
        )
        if self._raw is not None:
            twin._raw = list(self._raw)
            twin._expression = self._expression
        twin.advance(parts, new_name, new_expression)
        return twin

    # -- maintenance -------------------------------------------------------------

    def _maintain(
        self, merged: Tuple[str, ...], new_name: str, new_expression
    ) -> List[Candidate]:
        universe = self.universe
        merged_set = frozenset(merged)
        by_domain = annotations_by_domain(new_expression, universe)
        new_annotation = universe[new_name]
        merged_domain = by_domain.get(new_annotation.domain, [])

        entries: List[Candidate] = []
        for candidate in self._raw:
            seed = candidate.parts[:2]
            if merged_set.intersection(candidate.parts):
                if merged_set.intersection(seed):
                    continue
                # Only extension members merged away: the seed pair is
                # still proposed fresh, with a new greedy extension.
                entries.append(self._repropose(seed, by_domain))
            elif (
                self.arity > 2
                and universe[seed[0]].domain == new_annotation.domain
                and self._joins_extension(candidate, new_annotation)
            ):
                entries.append(self._repropose(seed, by_domain))
            else:
                entries.append(candidate)

        for annotation in merged_domain:
            if annotation.name == new_name:
                continue
            first, second = (
                (annotation, new_annotation)
                if annotation.name < new_name
                else (new_annotation, annotation)
            )
            candidate = propose_candidate(
                first, second, merged_domain, self.constraint, self.arity
            )
            if candidate is not None:
                entries.append(candidate)

        # Restore fresh-generation order: domains by smallest member
        # name, then pairs in seed-name order (``combinations`` over
        # the name-sorted domain).
        domain_min = {
            domain: annotations[0].name for domain, annotations in by_domain.items()
        }
        entries.sort(
            key=lambda candidate: (
                domain_min[universe[candidate.parts[0]].domain],
                candidate.parts[0],
                candidate.parts[1],
            )
        )
        return entries

    def _repropose(self, seed: Tuple[str, str], by_domain) -> Candidate:
        universe = self.universe
        first, second = universe[seed[0]], universe[seed[1]]
        candidate = propose_candidate(
            first, second, by_domain[first.domain], self.constraint, self.arity
        )
        if candidate is None:
            # The constraint rejected a previously accepted seed -- it
            # is not deterministic; the maintained list cannot be
            # trusted.  Raising invalidates the pool (see advance()).
            raise RuntimeError(
                f"constraint no longer accepts carried seed pair {seed}"
            )
        return candidate

    def _joins_extension(self, candidate: Candidate, new_annotation: Annotation) -> bool:
        """Would ``new_annotation`` join this candidate's greedy chain?

        Replays the chain's accepted members below ``new_annotation``'s
        name position (the walk visits the domain in name order, so
        exactly those precede it) and asks the constraint once.  The
        replay cannot diverge from the recorded candidate: rejected
        annotations never change the chain state, and the removed
        merged annotations were never accepted by this candidate.
        """
        universe = self.universe
        prefix = [
            name for name in candidate.parts[2:] if name < new_annotation.name
        ]
        if 2 + len(prefix) >= self.arity:
            return False
        members = [universe[candidate.parts[0]], universe[candidate.parts[1]]]
        proposal = self.constraint.propose(members[0], members[1])
        if proposal is None:
            return True  # disagreement with the carried list: force rebuild
        representative = virtual_summary(members, proposal)
        for name in prefix:
            extended = self.constraint.propose(representative, universe[name])
            if extended is None:
                return True
            members.append(universe[name])
            proposal = extended
            representative = virtual_summary(members, proposal)
        return self.constraint.propose(representative, new_annotation) is not None
