"""The candidate scoring engine: parallel fan-out + incremental carry.

One Algorithm-1 step measures every candidate merge's size and
distance -- the dominant cost of the whole algorithm.  The
:class:`ScoringEngine` owns that measurement and picks, per step, the
cheapest path that preserves the reference semantics:

* **fast** -- the batch :class:`~repro.core.fast_distance.FastStepScorer`
  when its preconditions hold;
* **fast + incremental** -- an
  :class:`~repro.core.fast_distance.IncrementalStepScorer` carried
  across steps (:meth:`ScoringEngine.advance` invalidates only the
  merged neighborhood) with sparse per-candidate metrics;
* **naive** -- the reference :class:`~repro.core.distance
  .DistanceComputer` applied to each materialized candidate expression.

The fast paths additionally shard the candidate set across worker
*processes*.  Workers are pre-forked: the step's scorer (packed
valuation bitmasks, per-group baselines, aligned originals) lives in a
module-level global set *before* the pool forks, so the state ships to
every worker via copy-on-write pages -- no pickling of the step state,
only the small per-candidate results travel back.  Chunks are
concatenated in candidate order, so the parallel path is deterministic
and bit-identical to running the same scorer serially.

Robustness contract: if any fast path raises mid-run -- a latent
applicability gap, a fork failure, a broken pool -- the engine rescores
the *entire* step through the naive path rather than crashing or
returning a partial candidate list.  ``path_counts`` records which path
every step actually took.

Knob resolution (``SummarizationConfig``):

* ``parallelism``: ``None`` ("auto") engages ``os.cpu_count()`` workers
  when the machine has ≥ 2 cores and the step has at least
  ``parallel_threshold`` candidates; ``0``/``1`` ("off") restores the
  serial seed behavior; any other int forces that many workers.
* ``incremental``: ``None`` ("auto") and ``True`` ("on") carry the step
  scorer; ``False`` ("off") rebuilds a dense scorer every step (seed
  behavior).

Parallel fan-out requires the ``fork`` start method (Linux/macOS
CPython); platforms without it silently run serially.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from array import array
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..observability import metrics as _metrics
from ..observability import tracing as _tracing
from ..provenance.annotations import Annotation, AnnotationUniverse
from .candidates import Candidate, virtual_summary
from .distance import DistanceComputer, DistanceEstimate
from .fast_distance import FastStepScorer, IncrementalStepScorer
from .mapping import MappingState
from .scoring import ScoredCandidate

_SCORING_STEPS = _metrics.counter(
    "prox_scoring_steps_total",
    "Candidate-scoring steps measured, by engine path.",
    labelnames=("path",),
)
_SCORING_SECONDS = _metrics.histogram(
    "prox_scoring_seconds",
    "Pure candidate-scoring wall-clock seconds per step.",
)
_SCORING_CANDIDATES = _metrics.counter(
    "prox_scoring_candidates_total",
    "Candidates measured across all scoring steps.",
)
_SCORING_FALLBACKS = _metrics.counter(
    "prox_scoring_fallbacks_total",
    "Fast-path failures rescored through the naive path.",
)
_SCORING_WORKERS = _metrics.gauge(
    "prox_scoring_workers",
    "Worker processes used by the most recent scoring step.",
)


class _OverlayUniverse:
    """Read-only view of a universe plus a few virtual annotations.

    Candidate scoring evaluates merges that are mostly discarded; the
    overlay lets the distance machinery resolve a candidate's virtual
    summary annotation without registering it.
    """

    __slots__ = ("_base", "_extra")

    def __init__(self, base: AnnotationUniverse, extra: Mapping[str, Annotation]):
        self._base = base
        self._extra = dict(extra)

    def __getitem__(self, name: str) -> Annotation:
        extra = self._extra.get(name)
        if extra is not None:
            return extra
        return self._base[name]

    def __contains__(self, name: str) -> bool:
        return name in self._extra or name in self._base


#: Step state inherited by forked workers (set only around a pool's
#: lifetime).  Fork copies the parent's address space, so workers read
#: the scorer without any serialization.  Candidate parts ship as two
#: flat columns -- one list of part names and an ``array('q')`` of
#: candidate offsets -- instead of thousands of per-candidate tuples:
#: the compact arrays occupy far fewer copy-on-write pages and dirty
#: none of them with per-object refcount writes in the workers.
_WORKER_STATE: Dict[str, object] = {}


def _score_span(span: Tuple[int, int]) -> List[Tuple[int, DistanceEstimate]]:
    """Score a contiguous slice of the step's candidates (worker side)."""
    scorer = _WORKER_STATE["scorer"]
    names = _WORKER_STATE["part_names"]
    offsets = _WORKER_STATE["part_offsets"]
    low, high = span
    return [
        scorer.score(names[offsets[index] : offsets[index + 1]])
        for index in range(low, high)
    ]


def fork_available() -> bool:
    """Whether pre-forked worker pools are supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(
    parallelism: Optional[int], n_candidates: int, threshold: int
) -> int:
    """Workers to use for a step of ``n_candidates`` candidates."""
    if parallelism is None:
        cpus = os.cpu_count() or 1
        if cpus < 2 or n_candidates < threshold:
            return 1
        workers = cpus
    else:
        workers = parallelism
    if workers <= 1 or not fork_available():
        return 1
    return max(1, min(workers, n_candidates))


class ScoringEngine:
    """Measures one step's candidates; carries state between steps."""

    PATH_FAST = "fast"
    PATH_FAST_INCREMENTAL = "fast+incremental"
    PATH_NAIVE = "naive"

    def __init__(self, problem, config, computer: DistanceComputer):
        self.problem = problem
        self.config = config
        self.computer = computer
        self._incremental = config.incremental is not False
        self._scorer: Optional[IncrementalStepScorer] = None
        #: Path taken by the most recent :meth:`measure` call.
        self.last_path: str = ""
        #: Workers used by the most recent :meth:`measure` call.
        self.last_workers: int = 1
        #: How often each path was taken over the engine's lifetime.
        self.path_counts: Dict[str, int] = {}
        #: Fast-path failures that fell back to naive rescoring.
        self.fallback_count: int = 0

    # -- public API --------------------------------------------------------------

    def measure(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        """Size and distance of every candidate against ``current``.

        Returns the measured candidates (in input order) and the pure
        scoring wall-clock time, excluding the step's shared
        precomputation -- the quantity Fig. 6.5a plots.
        """
        span = _tracing.span("score_candidates")
        with span:
            measured, seconds = self._measure(candidates, current, mapping)
            span.set("path", self.last_path)
            span.set("workers", self.last_workers)
            span.set("n_candidates", len(candidates))
            span.set("seconds", seconds)
        if _metrics.ENABLED:
            _SCORING_STEPS.inc(path=self.last_path)
            _SCORING_SECONDS.observe(seconds)
            _SCORING_CANDIDATES.inc(len(candidates))
            _SCORING_WORKERS.set(self.last_workers)
        return measured, seconds

    def _measure(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        problem = self.problem
        if FastStepScorer.applicable(
            current,
            problem.val_func,
            problem.combiners,
            problem.valuations,
            problem.universe,
            self.config.max_enumerate,
        ):
            try:
                scorer = self._obtain_scorer(current, mapping)
            except Exception:
                self._scorer = None
                scorer = None
                self._note_fallback()
            if scorer is not None:
                started = time.perf_counter()
                try:
                    results = self._score_all(scorer, candidates)
                except Exception:
                    # The fast path bailed mid-run: never crash or skip
                    # candidates -- rescore the whole step naively.
                    self._scorer = None
                    self._note_fallback()
                else:
                    measured = [
                        ScoredCandidate(
                            candidate=candidate,
                            expression=None,
                            step_mapping={},
                            size=size,
                            distance=distance,
                        )
                        for candidate, (size, distance) in zip(candidates, results)
                    ]
                    path = (
                        self.PATH_FAST_INCREMENTAL
                        if isinstance(scorer, IncrementalStepScorer)
                        else self.PATH_FAST
                    )
                    self._record(path)
                    return measured, time.perf_counter() - started
        return self._measure_naive(candidates, current, mapping)

    def advance(
        self,
        parts: Sequence[str],
        new_name: str,
        new_expression,
        new_mapping: MappingState,
    ) -> None:
        """Carry the step scorer past the applied merge ``parts → new_name``.

        A failed carry is never fatal: the scorer is dropped and the
        next :meth:`measure` rebuilds from scratch.
        """
        scorer = self._scorer
        if scorer is None:
            return
        try:
            scorer.advance(parts, new_name, new_expression, new_mapping)
        except Exception:
            self._scorer = None

    def reset(self) -> None:
        """Drop any carried state (e.g. after reverting a step)."""
        self._scorer = None

    # -- internals ---------------------------------------------------------------

    def _record(self, path: str) -> None:
        self.last_path = path
        self.path_counts[path] = self.path_counts.get(path, 0) + 1

    def _note_fallback(self) -> None:
        self.fallback_count += 1
        if _metrics.ENABLED:
            _SCORING_FALLBACKS.inc()

    def _obtain_scorer(self, current, mapping: MappingState) -> FastStepScorer:
        if not self._incremental:
            return FastStepScorer(
                self.computer, current, mapping, self.problem.universe
            )
        carried = self._scorer
        if carried is not None and carried.current is current:
            return carried
        self._scorer = IncrementalStepScorer(
            self.computer, current, mapping, self.problem.universe
        )
        return self._scorer

    def _score_all(
        self, scorer: FastStepScorer, candidates: Sequence[Candidate]
    ) -> List[Tuple[int, DistanceEstimate]]:
        parts = [candidate.parts for candidate in candidates]
        workers = resolve_workers(
            self.config.parallelism, len(parts), self.config.parallel_threshold
        )
        self.last_workers = workers
        if workers <= 1:
            return [scorer.score(candidate_parts) for candidate_parts in parts]

        # A few spans per worker smooths out uneven candidate costs.
        spans: List[Tuple[int, int]] = []
        n_spans = min(len(parts), workers * 4)
        base, extra = divmod(len(parts), n_spans)
        low = 0
        for index in range(n_spans):
            high = low + base + (1 if index < extra else 0)
            spans.append((low, high))
            low = high

        flat_names: List[str] = []
        offsets = array("q", (0,))
        for candidate_parts in parts:
            flat_names.extend(candidate_parts)
            offsets.append(len(flat_names))

        context = multiprocessing.get_context("fork")
        _WORKER_STATE["scorer"] = scorer
        _WORKER_STATE["part_names"] = flat_names
        _WORKER_STATE["part_offsets"] = offsets
        try:
            with context.Pool(processes=workers) as pool:
                chunked = pool.map(_score_span, spans)
        finally:
            _WORKER_STATE.clear()
        results: List[Tuple[int, DistanceEstimate]] = []
        for chunk in chunked:
            results.extend(chunk)
        return results

    def _measure_naive(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        """Reference path: materialize and measure each candidate.

        Kept serial: sampled distances draw from the computer's shared
        RNG, whose sequence parallel sharding would change.
        """
        self.last_workers = 1
        problem = self.problem
        measured: List[ScoredCandidate] = []
        started = time.perf_counter()
        for candidate in candidates:
            parts = [problem.universe[name] for name in candidate.parts]
            virtual = virtual_summary(parts, candidate.proposal)
            overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
            step_mapping = {name: virtual.name for name in candidate.parts}
            expression = current.apply_mapping(step_mapping)
            candidate_mapping = mapping.compose(step_mapping)
            distance = self.computer.distance(
                expression, candidate_mapping, universe=overlay
            )
            measured.append(
                ScoredCandidate(
                    candidate=candidate,
                    expression=expression,
                    step_mapping=step_mapping,
                    size=expression.size(),
                    distance=distance,
                )
            )
        self._record(self.PATH_NAIVE)
        return measured, time.perf_counter() - started
