"""The candidate scoring engine: parallel fan-out + incremental carry.

One Algorithm-1 step measures every candidate merge's size and
distance -- the dominant cost of the whole algorithm.  The
:class:`ScoringEngine` owns that measurement and picks, per step, the
cheapest path that preserves the reference semantics:

* **fast** -- the batch :class:`~repro.core.fast_distance.FastStepScorer`
  when its preconditions hold;
* **fast + incremental** -- an
  :class:`~repro.core.fast_distance.IncrementalStepScorer` carried
  across steps (:meth:`ScoringEngine.advance` invalidates only the
  merged neighborhood) with sparse per-candidate metrics;
* **sampled** / **sampled + incremental** -- the
  :class:`~repro.core.sampled_scoring.SampledStepScorer` when the
  class is too large to enumerate: the same bitmask kernel over one
  shared Monte-Carlo batch per step (common random numbers), carried
  across steps with its batch pinned so the candidate carry and the
  lazy queue stay sound;
* **naive** -- the reference :class:`~repro.core.distance
  .DistanceComputer` applied to each materialized candidate expression
  (for large classes this is the per-candidate reference sampler --
  also the fallback when ``sample_sharing`` is off or the kernel's
  preconditions fail).

The fast paths additionally shard the candidate set across worker
*processes*.  Workers are pre-forked: the step's scorer (packed
valuation bitmasks, per-group baselines, aligned originals) lives in a
module-level global set *before* the pool forks, so the state ships to
every worker via copy-on-write pages -- no pickling of the step state,
only the small per-candidate results travel back.  Chunks are
concatenated in candidate order, so the parallel path is deterministic
and bit-identical to running the same scorer serially.

Robustness contract: if any fast path raises mid-run -- a latent
applicability gap, a fork failure, a broken pool -- the engine rescores
the *entire* step through the naive path rather than crashing or
returning a partial candidate list.  ``path_counts`` records which path
every step actually took.

Knob resolution (``SummarizationConfig``):

* ``parallelism``: ``None`` ("auto") engages ``os.cpu_count()`` workers
  when the machine has ≥ 2 cores and the step has at least
  ``parallel_threshold`` candidates; ``0``/``1`` ("off") restores the
  serial seed behavior; any other int forces that many workers.
* ``incremental``: ``None`` ("auto") and ``True`` ("on") carry the step
  scorer; ``False`` ("off") rebuilds a dense scorer every step (seed
  behavior).
* ``carry``: ``None`` ("auto") and ``True`` ("on") keep candidate
  *measurements* across steps as well: disjoint candidates are
  delta-corrected (exact size shift, shared per-valuation distance
  delta) and only the merge-affected neighborhood is re-scored, then a
  ``refresh_near`` confirmation pass re-scores everything within 1e-9
  of the head so selection stays bit-identical to a full re-score.
  ``False`` ("off") restores the full per-step re-score.  The carry
  engages only with ``scoring="normalized"`` (ordinal ranks compare
  floats exactly) and a sparse incremental scorer; otherwise the pool
  still maintains the candidate list but every candidate is re-scored.
* ``lazy``: ``True`` ("on") selects the winner through a lazy-greedy
  priority queue -- stale distance scores are lower bounds by Prop
  4.2.2 monotonicity, so only popped queue heads are re-scored until
  the head is fresh.  Requires ``scoring="normalized"`` and ``carry``
  not off (validated by ``SummarizationConfig``).

Parallel fan-out requires the ``fork`` start method (Linux/macOS
CPython); platforms without it silently run serially.  It also
requires being called from the **main thread**: forking while sibling
threads run can snapshot a pool queue's semaphore (or any lock)
mid-acquire and deadlock the child, so a request-handler thread in the
serving tier degrades to serial scoring with a structured-log warning
instead of wedging the session.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import threading
import time
from array import array
from collections import Counter
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import tracing as _tracing
from ..provenance import ir as _ir
from ..provenance.annotations import Annotation, AnnotationUniverse
from .candidates import Candidate, virtual_summary
from .distance import DistanceComputer, DistanceEstimate
from .fast_distance import FastStepScorer, IncrementalStepScorer
from .mapping import MappingState
from .sampled_scoring import SampledStepScorer
from .scoring import ScoredCandidate, score_candidates
from . import kernels as _kernels
from . import shm as _shm

_SCORING_STEPS = _metrics.counter(
    "prox_scoring_steps_total",
    "Candidate-scoring steps measured, by engine path.",
    labelnames=("path",),
)
_SCORING_SECONDS = _metrics.histogram(
    "prox_scoring_seconds",
    "Pure candidate-scoring wall-clock seconds per step.",
)
_SCORING_CANDIDATES = _metrics.counter(
    "prox_scoring_candidates_total",
    "Candidates measured across all scoring steps.",
)
_SCORING_FALLBACKS = _metrics.counter(
    "prox_scoring_fallbacks_total",
    "Fast-path failures rescored through the naive path.",
)
_SCORING_WORKERS = _metrics.gauge(
    "prox_scoring_workers",
    "Worker processes used by the most recent scoring step.",
)
_SCORING_CARRIED = _metrics.counter(
    "prox_scoring_candidates_carried_total",
    "Candidates whose measurement was carried across a step "
    "(delta-corrected or served stale from the lazy queue).",
)
_SCORING_RESCORED = _metrics.counter(
    "prox_scoring_candidates_rescored_total",
    "Candidates freshly re-scored under cross-step carry "
    "(intersecting, new, or confirmation re-scores).",
)
_SCORING_SAMPLED_FAST = _metrics.counter(
    "prox_scoring_sampled_fast_total",
    "Scoring steps served by the bit-packed sampled (shared "
    "Monte-Carlo batch) kernel.",
)
_SAMPLE_BATCH_REUSE = _metrics.counter(
    "prox_scoring_sample_batch_reuse_total",
    "Sampled steps that reused the carried scorer's valuation batch "
    "instead of redrawing it.",
)


class _OverlayUniverse:
    """Read-only view of a universe plus a few virtual annotations.

    Candidate scoring evaluates merges that are mostly discarded; the
    overlay lets the distance machinery resolve a candidate's virtual
    summary annotation without registering it.
    """

    __slots__ = ("_base", "_extra")

    def __init__(self, base: AnnotationUniverse, extra: Mapping[str, Annotation]):
        self._base = base
        self._extra = dict(extra)

    def __getitem__(self, name: str) -> Annotation:
        extra = self._extra.get(name)
        if extra is not None:
            return extra
        return self._base[name]

    def __contains__(self, name: str) -> bool:
        return name in self._extra or name in self._base


#: Step state inherited by forked workers (set only around a pool's
#: lifetime).  Fork copies the parent's address space, so workers read
#: the scorer without any serialization.  Candidate parts ship as two
#: flat columns -- one list of part names and an ``array('q')`` of
#: candidate offsets -- instead of thousands of per-candidate tuples:
#: the compact arrays occupy far fewer copy-on-write pages and dirty
#: none of them with per-object refcount writes in the workers.
#: Published shared-memory blocks (the IR arena, the pinned sample
#: batch, the detail-result matrices) ride along as fork-inherited
#: mappings -- workers never attach segments by name.
_WORKER_STATE: Dict[str, object] = {}


def _worker_bind() -> None:
    """One-time per-worker setup: map the published shared blocks.

    Runs lazily on a worker's first span.  The flags written here land
    in the child's copy-on-write ``_WORKER_STATE`` -- each worker binds
    once, the parent's dict is untouched.  Both bindings are
    correctness-neutral (the mapped arena serves the same ids and
    columns, the mapped weights the same doubles), so failures fall
    back to the inherited state silently.
    """
    if _WORKER_STATE.get("bound"):
        return
    _WORKER_STATE["bound"] = True
    arena = _WORKER_STATE.get("arena")
    if arena is not None:
        try:
            from ..provenance import ir as _ir

            _ir.install_store(arena.map_store())
        except Exception:
            pass
    batch = _WORKER_STATE.get("batch")
    if batch is not None:
        try:
            _WORKER_STATE["scorer"].adopt_shared_weights(
                batch.weights_view()
            )
        except Exception:
            pass


def _score_span(span: Tuple[int, int]) -> List[Tuple[int, int, float]]:
    """Score a contiguous slice of the step's candidates (worker side).

    Returns only ``(candidate_index, size, distance_value)`` triples:
    the parent rebuilds the (deterministic) estimate objects, so the
    pickled payload is independent of ``n_vals`` and candidate shape.
    """
    _worker_bind()
    scorer = _WORKER_STATE["scorer"]
    names = _WORKER_STATE["part_names"]
    offsets = _WORKER_STATE["part_offsets"]
    low, high = span
    out: List[Tuple[int, int, float]] = []
    for index in range(low, high):
        size, estimate = scorer.score(
            names[offsets[index] : offsets[index + 1]]
        )
        out.append((index, size, estimate.value))
    return out


def _score_span_detail(span: Tuple[int, int]) -> List[Tuple[int, int, float]]:
    """Like :func:`_score_span` for the carry path: the per-valuation
    accumulator vectors are written into the step's shared matrices
    (one row per candidate, rows disjoint) instead of being pickled
    back -- the return stays index/size/distance triples."""
    _worker_bind()
    scorer = _WORKER_STATE["scorer"]
    names = _WORKER_STATE["part_names"]
    offsets = _WORKER_STATE["part_offsets"]
    accs_rows = _WORKER_STATE["accs_matrix"]
    wf_rows = _WORKER_STATE["wf_matrix"]
    low, high = span
    out: List[Tuple[int, int, float]] = []
    for index in range(low, high):
        size, estimate, accs, wf = scorer.score_detail(
            names[offsets[index] : offsets[index + 1]]
        )
        accs_rows.write_row(index, accs)
        wf_rows.write_row(index, wf)
        out.append((index, size, estimate.value))
    return out


def fork_available() -> bool:
    """Whether pre-forked worker pools are supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


_FORK_UNSAFE_WARNED = False


def fork_safe_here() -> bool:
    """Whether forking a worker pool is safe from the calling thread.

    A fork snapshots every lock and pool-queue semaphore in whatever
    state some sibling thread holds it, so forking off the main thread
    (a server request-handler, the eviction loop, ...) can deadlock
    the child on a lock whose owner does not exist there.  Main-thread
    callers (CLI, benchmarks, tests) keep the pre-forked pool.
    """
    return threading.current_thread() is threading.main_thread()


def _warn_fork_unsafe(workers: int) -> None:
    global _FORK_UNSAFE_WARNED
    if _FORK_UNSAFE_WARNED:
        return
    _FORK_UNSAFE_WARNED = True
    _log.get_logger("core.engine").warning(
        "parallel_fork_unsafe requested_workers=%d thread=%s "
        "resolution=serial reason=%s",
        workers,
        _log.quote(threading.current_thread().name),
        _log.quote("fork off the main thread can deadlock workers"),
    )


def resolve_workers(
    parallelism: Optional[int], n_candidates: int, threshold: int
) -> int:
    """Workers to use for a step of ``n_candidates`` candidates."""
    if parallelism is None:
        cpus = os.cpu_count() or 1
        if cpus < 2 or n_candidates < threshold:
            return 1
        workers = cpus
    else:
        workers = parallelism
    if workers <= 1 or not fork_available():
        return 1
    return max(1, min(workers, n_candidates))


class ScoringEngine:
    """Measures one step's candidates; carries state between steps."""

    PATH_FAST = "fast"
    PATH_FAST_INCREMENTAL = "fast+incremental"
    PATH_SAMPLED = "sampled"
    PATH_SAMPLED_INCREMENTAL = "sampled+incremental"
    PATH_NAIVE = "naive"

    def __init__(self, problem, config, computer: DistanceComputer):
        self.problem = problem
        self.config = config
        self.computer = computer
        self._incremental = config.incremental is not False
        # Cross-step candidate carry (delta re-scoring) only serves
        # "normalized" scoring: ordinal ranks compare raw floats for
        # exact tie equality, which carried-sum association dust would
        # perturb.  The candidate *pool* carry is scorer-independent
        # and stays available either way (see core.pool).
        self._carry = (
            getattr(config, "carry", None) is not False
            and config.scoring == "normalized"
        )
        self._lazy = bool(getattr(config, "lazy", False))
        # Bit-packed sampled scoring for classes too large to
        # enumerate: one shared Monte-Carlo batch per step instead of
        # per-candidate redraws through the naive path.  "auto"/"on"
        # engage it whenever the kernel's preconditions hold; "off"
        # restores the reference per-candidate sampler.
        self._sample_sharing = (
            getattr(config, "sample_sharing", None) is not False
        )
        self._scorer: Optional[IncrementalStepScorer] = None
        #: Carried per-candidate measurements keyed by parts tuple:
        #: ``(size, accumulators, weighted_finished)`` in delta-carry
        #: mode, ``(size, estimate)`` in lazy mode.  Valid only while
        #: ``_carry_expr`` tracks the scorer's current expression
        #: through advance().
        self._carry_store: Dict[Tuple[str, ...], tuple] = {}
        self._carry_expr: object = None
        self._carry_ready: bool = False
        #: Cross-run repair seed (a previous run's step-0 checkpoint
        #: plus the delta's flipped labels / affected names), consumed
        #: by the first :meth:`measure` and then cleared.
        self._repair_seed: Optional[tuple] = None
        #: Step-0 measurements served from the repair seed vs. freshly
        #: re-scored (telemetry for the streaming-repair harness).
        self.last_repair_seeded: int = 0
        self.last_repair_rescored: int = 0
        #: Parts whose current measurement is delta-carried (stale);
        #: ``refresh_near`` re-scores these exactly on demand.
        self._stale: set = set()
        #: Path taken by the most recent :meth:`measure` call.
        self.last_path: str = ""
        #: Workers used by the most recent :meth:`measure` call.
        self.last_workers: int = 1
        #: Pickled bytes returned by the most recent parallel step's
        #: workers (index/size/distance triples only; -1 until a
        #: parallel step runs).  The parallel benchmark asserts this
        #: stays independent of ``n_vals``.
        self.last_worker_payload_bytes: int = -1
        #: Kernel backend that folded the most recent step's masks
        #: (the scorer's captured backend; the process-wide active
        #: backend for naive steps, which fold nothing).
        self.last_kernel: str = _kernels.active_backend()
        #: Shared-batch telemetry of the most recent sampled step:
        #: batch size, achieved baseline variance, and whether the
        #: carried scorer's batch was reused rather than redrawn.
        self.last_sample_batch: int = 0
        self.last_sample_variance: float = 0.0
        self.last_batch_reused: bool = False
        #: Carried / freshly re-scored candidate counts of the most
        #: recent step (refresh_near moves entries carried → rescored).
        self.last_carried: int = 0
        self.last_rescored: int = 0
        #: Lifetime totals of the two counts above.
        self.total_carried: int = 0
        self.total_rescored: int = 0
        #: How often each path was taken over the engine's lifetime.
        self.path_counts: Dict[str, int] = {}
        #: Fast-path failures that fell back to naive rescoring.
        self.fallback_count: int = 0

    @property
    def lazy(self) -> bool:
        """Whether :meth:`measure_lazy` drives candidate selection."""
        return self._lazy

    # -- public API --------------------------------------------------------------

    def measure(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        """Size and distance of every candidate against ``current``.

        Returns the measured candidates (in input order) and the pure
        scoring wall-clock time, excluding the step's shared
        precomputation -- the quantity Fig. 6.5a plots.
        """
        span = _tracing.span("score_candidates")
        with span:
            measured, seconds = self._measure(candidates, current, mapping)
            span.set("path", self.last_path)
            span.set("kernel", self.last_kernel)
            span.set("workers", self.last_workers)
            span.set("n_candidates", len(candidates))
            span.set("seconds", seconds)
            span.set("carried", self.last_carried)
            span.set("rescored", self.last_rescored)
            self._set_sample_attrs(span)
        self._emit_step_metrics(len(candidates), seconds)
        return measured, seconds

    def _measure(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        # Default partition: everything freshly scored.  The carry
        # branch of _score_step overwrites both counts.
        self.last_carried = 0
        self.last_rescored = len(candidates)
        self.last_sample_batch = 0
        self.last_sample_variance = 0.0
        self.last_batch_reused = False
        mode = self._step_mode(current)
        if mode is not None:
            try:
                scorer = self._obtain_scorer(current, mapping, mode)
            except Exception:
                self._scorer = None
                scorer = None
                self._note_fallback()
            if scorer is not None:
                started = time.perf_counter()
                try:
                    results = self._score_step(scorer, candidates)
                except Exception:
                    # The fast path bailed mid-run: never crash or skip
                    # candidates -- rescore the whole step naively.
                    self._scorer = None
                    self._invalidate_carry()
                    self._note_fallback()
                else:
                    measured = [
                        ScoredCandidate(
                            candidate=candidate,
                            expression=None,
                            step_mapping={},
                            size=size,
                            distance=distance,
                        )
                        for candidate, (size, distance) in zip(candidates, results)
                    ]
                    self._record(self._scorer_path(scorer))
                    self.last_kernel = scorer._kernel.name
                    self._note_sample_step(scorer)
                    return measured, time.perf_counter() - started
        return self._measure_naive(candidates, current, mapping)

    def _step_mode(self, current) -> Optional[str]:
        """Which fast kernel (if any) can serve this step.

        ``"exact"`` enumerates the whole class (small classes);
        ``"sampled"`` scores against one shared Monte-Carlo batch
        (classes too large to enumerate, when ``sample_sharing`` is not
        off).  ``None`` falls through to the naive reference path.
        """
        problem = self.problem
        if FastStepScorer.applicable(
            current,
            problem.val_func,
            problem.combiners,
            problem.valuations,
            problem.universe,
            self.config.max_enumerate,
        ):
            return "exact"
        if self._sample_sharing and SampledStepScorer.applicable(
            current,
            problem.val_func,
            problem.combiners,
            problem.valuations,
            problem.universe,
            self.config.max_enumerate,
        ):
            return "sampled"
        return None

    def _scorer_path(self, scorer: FastStepScorer) -> str:
        # SampledStepScorer subclasses IncrementalStepScorer: test the
        # most specific flavor first.
        if isinstance(scorer, SampledStepScorer):
            return (
                self.PATH_SAMPLED_INCREMENTAL
                if self._incremental
                else self.PATH_SAMPLED
            )
        if isinstance(scorer, IncrementalStepScorer):
            return self.PATH_FAST_INCREMENTAL
        return self.PATH_FAST

    def _note_sample_step(self, scorer: FastStepScorer) -> None:
        if isinstance(scorer, SampledStepScorer):
            self.last_sample_batch = scorer.batch_size
            self.last_sample_variance = scorer.batch_variance

    def advance(
        self,
        parts: Sequence[str],
        new_name: str,
        new_expression,
        new_mapping: MappingState,
    ) -> None:
        """Carry the step scorer past the applied merge ``parts → new_name``.

        A failed carry is never fatal: the scorer is dropped and the
        next :meth:`measure` rebuilds from scratch.
        """
        scorer = self._scorer
        if scorer is None:
            self._invalidate_carry()
            return
        measured_expr = scorer.current
        try:
            scorer.advance(parts, new_name, new_expression, new_mapping)
        except Exception:
            self._scorer = None
            self._invalidate_carry()
            return
        # Re-link the carried candidate measurements to the new
        # expression; delta carry additionally needs the merge's
        # per-valuation baseline delta (sparse scorers only).
        linked = self._carry_ready and self._carry_expr is measured_expr
        if linked:
            # A merge whose global term-canonicalization collapsed
            # duplicates *outside* its own neighborhood breaks the
            # carried-size identity for every candidate (the candidate's
            # own merge would collapse the same pair), not just for
            # intersecting ones -- drop the whole carry and re-measure.
            linked = getattr(scorer, "last_shift_local", True)
        if linked and not self._lazy:
            linked = getattr(scorer, "last_delta", None) is not None
        if linked:
            self._carry_expr = new_expression
        else:
            self._invalidate_carry()

    def refresh_near(
        self, scored: Sequence[ScoredCandidate], tolerance: float = 1e-9
    ) -> int:
        """Freshly re-score carried entries near the provisional winner.

        ``scored`` must be sorted best-first.  Every stale (carried)
        entry whose score is within ``tolerance`` of the head is
        re-scored exactly and its store entry replaced; the caller
        re-ranks and calls again until this returns 0.  Delta-carried
        sums can drift from a fresh walk by float-association dust
        (≪ ``tolerance``), so once every entry that could contend with
        the winner is fresh, the selected winner -- and its recorded
        size/distance -- is bit-identical to a carry-off run.
        """
        if not self._stale or not scored:
            return 0
        scorer = self._scorer
        if scorer is None:
            self._stale.clear()
            return 0
        bound = scored[0].score + tolerance
        refreshed = 0
        try:
            for entry in scored:
                if entry.score > bound:
                    break
                parts = entry.candidate.parts
                if parts not in self._stale:
                    continue
                size, estimate, accs, wf = scorer.score_detail(parts)
                entry.size = size
                entry.distance = estimate
                self._carry_store[parts] = (size, accs, wf)
                self._stale.discard(parts)
                refreshed += 1
        except Exception:
            # Confirmation is hardening on top of already-valid carried
            # measurements; on failure keep them and drop the carry so
            # the next step re-scores everything from scratch.
            self._scorer = None
            self._invalidate_carry()
            self._stale.clear()
            self._note_fallback()
            return 0
        if refreshed:
            self.last_carried -= refreshed
            self.last_rescored += refreshed
            self.total_carried -= refreshed
            self.total_rescored += refreshed
            if _metrics.ENABLED:
                _SCORING_RESCORED.inc(refreshed)
        return refreshed

    def capture_repair_checkpoint(self) -> Optional[dict]:
        """Snapshot the current step's measurement state for repair.

        Called by the summarizer right after the *first* greedy step's
        measurement (before any merge is applied): a later run over a
        delta-extended problem can :meth:`seed_repair` from this
        snapshot and skip re-measuring every candidate untouched by
        the delta.  Returns ``None`` when the step's path cannot seed
        a repair -- lazy mode stores estimates instead of
        accumulators, and the sampled kernel's Monte-Carlo batch is
        not reproducible across runs -- in which case the repaired run
        simply re-scores from scratch (correct, just not accelerated).
        """
        scorer = self._scorer
        if (
            self._lazy
            or not self._carry_ready
            or scorer is None
            or isinstance(scorer, SampledStepScorer)
            or not isinstance(scorer, IncrementalStepScorer)
            or not scorer._sparse
            or self._carry_expr is not scorer.current
        ):
            return None
        labels = tuple(str(valuation) for valuation in scorer.valuations)
        if len(set(labels)) != len(labels):
            return None
        return {
            # Copy the carried lists, not just the dict: later steps
            # mutate store entries in place (carried_score_fast with
            # mutate=True), and the checkpoint must keep step 0's
            # accumulators intact for the next run's seed.
            "store": {
                parts: (entry[0], list(entry[1]), list(entry[2]))
                for parts, entry in self._carry_store.items()
            },
            "labels": labels,
            "weights": tuple(valuation.weight for valuation in scorer.valuations),
            "expr_size": scorer.current.size(),
            "terms": tuple(scorer._terms),
            "nonzero_empty": all(not entries for entries in scorer._nonzero),
        }

    def seed_repair(
        self,
        checkpoint: Optional[dict],
        flipped_labels: Sequence[str] = (),
        affected_names: Sequence[str] = (),
    ) -> None:
        """Arm the next measurement with a prior run's step-0 checkpoint.

        ``flipped_labels`` are the valuation labels whose truth
        assignments the delta extended (their positions must be
        re-measured); ``affected_names`` the annotations the delta
        added or removed (candidates touching them are re-scored
        fresh).  The seed is consumed by the first :meth:`measure` and
        discarded on any applicability miss -- seeding can only skip
        work, never change a result.
        """
        self.last_repair_seeded = 0
        self.last_repair_rescored = 0
        if checkpoint is None:
            self._repair_seed = None
            return
        self._repair_seed = (
            checkpoint,
            frozenset(flipped_labels),
            frozenset(affected_names),
        )

    def measure_lazy(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
        w_dist: float,
        w_size: float,
        original_size: int,
    ) -> Tuple[ScoredCandidate, float]:
        """Select the step's best candidate via the lazy-greedy queue.

        Candidates sit in a priority queue keyed by ``CandidateScore``.
        Sizes are kept exact (cheap), while a carried entry's distance
        may be *stale* -- measured against an earlier expression in the
        merge chain.  By Prop 4.2.2 the distance from the original is
        non-decreasing along merge chains, so a stale distance (and
        with exact sizes, a stale score) is a lower bound on the fresh
        one: popping the minimum, re-scoring it if stale and pushing it
        back terminates with the true fresh argmin when the top entry
        is fresh.  Candidates far from the top are never re-scored and
        their staleness deepens harmlessly.
        """
        span = _tracing.span("score_candidates")
        with span:
            best, seconds = self._measure_lazy(
                candidates, current, mapping, w_dist, w_size, original_size
            )
            span.set("path", self.last_path)
            span.set("kernel", self.last_kernel)
            span.set("workers", self.last_workers)
            span.set("n_candidates", len(candidates))
            span.set("seconds", seconds)
            span.set("carried", self.last_carried)
            span.set("rescored", self.last_rescored)
            self._set_sample_attrs(span)
        self._emit_step_metrics(len(candidates), seconds)
        return best, seconds

    def reset(self) -> None:
        """Drop any carried state (e.g. after reverting a step)."""
        self._scorer = None
        self._invalidate_carry()

    # -- internals ---------------------------------------------------------------

    def _record(self, path: str) -> None:
        self.last_path = path
        self.path_counts[path] = self.path_counts.get(path, 0) + 1

    def _sampled_step(self) -> bool:
        """Whether the most recent step ran the sampled kernel."""
        return self.last_path in (
            self.PATH_SAMPLED,
            self.PATH_SAMPLED_INCREMENTAL,
        )

    def _set_sample_attrs(self, span) -> None:
        # Only when the sampled kernel actually engaged: enumerated
        # steps keep their span shape unchanged.
        if not self._sampled_step():
            return
        span.set("sample_batch", self.last_sample_batch)
        span.set("sample_variance", self.last_sample_variance)
        span.set("batch_reused", self.last_batch_reused)

    def _emit_step_metrics(self, n_candidates: int, seconds: float) -> None:
        if not _metrics.ENABLED:
            return
        _SCORING_STEPS.inc(path=self.last_path)
        _SCORING_SECONDS.observe(seconds)
        _SCORING_CANDIDATES.inc(n_candidates)
        _SCORING_WORKERS.set(self.last_workers)
        if self.last_carried:
            _SCORING_CARRIED.inc(self.last_carried)
        if self.last_rescored:
            _SCORING_RESCORED.inc(self.last_rescored)
        if self._sampled_step():
            _SCORING_SAMPLED_FAST.inc()
            if self.last_batch_reused:
                _SAMPLE_BATCH_REUSE.inc()

    def _note_fallback(self) -> None:
        self.fallback_count += 1
        if _metrics.ENABLED:
            _SCORING_FALLBACKS.inc()

    def _invalidate_carry(self) -> None:
        self._carry_store = {}
        self._carry_expr = None
        self._carry_ready = False
        self._stale = set()

    def _obtain_scorer(
        self, current, mapping: MappingState, mode: str = "exact"
    ) -> FastStepScorer:
        if mode == "sampled":
            if not self._incremental:
                # Fresh scorer, fresh batch every step (the in-step
                # batch sharing across candidates still applies).
                return SampledStepScorer(
                    self.computer, current, mapping, self.problem.universe
                )
            carried = self._scorer
            if isinstance(carried, SampledStepScorer) and carried.current is current:
                # The carried scorer keeps its pinned batch: stale
                # carried measurements stay lower bounds (Prop 4.2.2
                # holds pointwise only over a fixed valuation set).
                self.last_batch_reused = True
                return carried
            self._scorer = SampledStepScorer(
                self.computer, current, mapping, self.problem.universe
            )
            self._invalidate_carry()
            return self._scorer
        if not self._incremental:
            return FastStepScorer(
                self.computer, current, mapping, self.problem.universe
            )
        carried = self._scorer
        if (
            carried is not None
            and not isinstance(carried, SampledStepScorer)
            and carried.current is current
        ):
            return carried
        self._scorer = IncrementalStepScorer(
            self.computer, current, mapping, self.problem.universe
        )
        self._invalidate_carry()
        return self._scorer

    def _score_step(
        self, scorer: FastStepScorer, candidates: Sequence[Candidate]
    ) -> List[Tuple[int, DistanceEstimate]]:
        """One step's measurements, carrying disjoint candidates.

        When the carry is live (the store was measured against the
        expression the scorer just advanced from), candidates disjoint
        from the applied merge's neighborhood get their carried size
        plus the merge's exact size shift and their carried accumulator
        plus the per-valuation baseline delta; only the intersecting /
        new candidates are freshly scored (and sharded across the fork
        pool).  Carried entries are marked stale for
        :meth:`refresh_near`.
        """
        self._stale = set()
        seed = self._repair_seed
        self._repair_seed = None
        capture = (
            self._carry
            and not self._lazy
            and isinstance(scorer, IncrementalStepScorer)
            and scorer._sparse
        )
        if not capture:
            self._invalidate_carry()
            return self._score_all(
                scorer, [candidate.parts for candidate in candidates]
            )
        live = (
            self._carry_ready
            and self._carry_expr is scorer.current
            and scorer.last_delta is not None
        )
        if not live:
            if seed is not None:
                try:
                    seeded = self._score_from_seed(scorer, candidates, *seed)
                except Exception:
                    seeded = None
                if seeded is not None:
                    return seeded
            detail = self._score_all(
                scorer,
                [candidate.parts for candidate in candidates],
                detail=True,
            )
            self._carry_store = {
                candidate.parts: (size, accs, wf)
                for candidate, (size, _, accs, wf) in zip(candidates, detail)
            }
            self._carry_expr = scorer.current
            self._carry_ready = True
            return [(size, estimate) for size, estimate, _, _ in detail]

        store = self._carry_store
        deltas = scorer.last_delta
        # The merge's baseline delta is nonzero at a handful of
        # positions; the carried fast path touches only those and
        # re-sums the stored weighted contributions in C.
        touched = [index for index, delta in enumerate(deltas) if delta != 0.0]
        shift = scorer.last_size_shift
        results: List[Optional[Tuple[int, DistanceEstimate]]] = [None] * len(
            candidates
        )
        new_store: Dict[Tuple[str, ...], tuple] = {}
        rescore: List[int] = []
        stale: set = set()
        for index, candidate in enumerate(candidates):
            entry = store.get(candidate.parts)
            if entry is None or scorer.candidate_intersects(candidate.parts):
                rescore.append(index)
                continue
            size = entry[0] + shift
            estimate, accs, wf = scorer.carried_score_fast(
                entry[1], entry[2], deltas, touched, mutate=True
            )
            results[index] = (size, estimate)
            new_store[candidate.parts] = (size, accs, wf)
            stale.add(candidate.parts)
        fresh = self._score_all(
            scorer, [candidates[index].parts for index in rescore], detail=True
        )
        for index, (size, estimate, accs, wf) in zip(rescore, fresh):
            results[index] = (size, estimate)
            new_store[candidates[index].parts] = (size, accs, wf)
        self._carry_store = new_store
        self._carry_expr = scorer.current
        self._stale = stale
        self.last_carried = len(candidates) - len(rescore)
        self.last_rescored = len(rescore)
        self.total_carried += self.last_carried
        self.total_rescored += self.last_rescored
        return results

    def _score_from_seed(
        self,
        scorer: IncrementalStepScorer,
        candidates: Sequence[Candidate],
        checkpoint: dict,
        flipped_labels: FrozenSet[str],
        affected_names: FrozenSet[str],
    ) -> Optional[List[Tuple[int, DistanceEstimate]]]:
        """Step-0 measurements re-based on a prior run's checkpoint.

        A carried candidate's accumulator at a valuation position is
        exactly the sum of its recomputed-neighborhood contributions
        (the step-0 baseline contributions are all zero -- gated).  For
        a candidate whose neighborhood the delta does not touch, those
        contributions are unchanged at every surviving valuation
        position, so the old accumulator is permuted by label and only
        the appended / flipped positions are recomputed
        (:meth:`~repro.core.fast_distance.IncrementalStepScorer
        .score_positions`); the finish walk then reproduces the fresh
        estimate bit for bit.  Sizes shift by the expression-size
        delta (the candidate's collision structure is untouched).
        Returns ``None`` when any applicability gate fails.
        """
        if isinstance(scorer, SampledStepScorer):
            return None
        if not checkpoint.get("nonzero_empty") or any(scorer._nonzero):
            return None
        new_labels = tuple(str(valuation) for valuation in scorer.valuations)
        if len(set(new_labels)) != len(new_labels):
            return None
        old_index = {
            label: index for index, label in enumerate(checkpoint["labels"])
        }
        old_weights = checkpoint["weights"]
        pi: List[Optional[int]] = []
        recompute: List[int] = []
        for position, label in enumerate(new_labels):
            carried = old_index.get(label)
            if carried is None or label in flipped_labels:
                pi.append(None)
                recompute.append(position)
                continue
            if scorer.valuations[position].weight != old_weights[carried]:
                return None
            pi.append(carried)

        # Dirty state: terms not carried verbatim from the checkpoint
        # expression (multiset diff -- renames, congruent-merge count
        # changes and fresh delta terms all change the Term value), the
        # groups containing them, and the delta's added/removed names.
        old_counts = Counter(checkpoint["terms"])
        affected_terms: set = set()
        affected_groups: set = set(affected_names)
        for index, term in enumerate(scorer._terms):
            if old_counts.get(term, 0) > 0:
                old_counts[term] -= 1
            else:
                affected_terms.add(index)
                affected_groups.add(term.group)
        for term, remaining in old_counts.items():
            if remaining > 0:
                affected_groups.add(term.group)
        key = scorer._key
        for name in affected_names:
            affected_terms.update(scorer._ann_terms.get(key(name), ()))
            affected_terms.update(scorer._group_terms.get(name, ()))

        store = checkpoint["store"]
        shift = scorer.current.size() - checkpoint["expr_size"]
        n_vals = scorer.n_vals
        zeros = [0.0] * n_vals
        # Append-only streams almost always keep the old valuations as a
        # positional prefix of the new ones (π = identity on the prefix,
        # recompute = the appended tail).  Detect that once and replace
        # the per-candidate permutation listcomps with one C-level list
        # concat -- the values are identical, only the copy is cheaper.
        n_old = len(checkpoint["labels"])
        prefix_carry = (
            len(pi) >= n_old
            and all(
                carried == position
                for position, carried in enumerate(pi[:n_old])
            )
            and all(carried is None for carried in pi[n_old:])
        )
        tail = [0.0] * (n_vals - n_old)
        results: List[Optional[Tuple[int, DistanceEstimate]]] = [None] * len(
            candidates
        )
        new_store: Dict[Tuple[str, ...], tuple] = {}
        stale: set = set()
        rescore: List[int] = []
        for index, candidate in enumerate(candidates):
            parts = candidate.parts
            entry = store.get(parts)
            if entry is None or self._seed_intersects(
                scorer, parts, affected_terms, affected_groups
            ):
                rescore.append(index)
                continue
            old_accs = entry[1]
            old_wf = entry[2]
            if prefix_carry:
                accs = old_accs + tail
                wf = old_wf + tail
            else:
                accs = [
                    old_accs[carried] if carried is not None else 0.0
                    for carried in pi
                ]
                wf = [
                    old_wf[carried] if carried is not None else 0.0
                    for carried in pi
                ]
            if recompute:
                for position, value in scorer.score_positions(
                    parts, recompute
                ).items():
                    accs[position] = value
            # Re-finish exactly the recomputed positions and re-sum the
            # carried weighted contributions (valid verbatim: the label
            # permutation gate pinned weights, and finish is a pure
            # function of the unchanged accumulator).
            estimate, accs, wf = scorer.carried_score_fast(
                accs, wf, zeros, recompute, mutate=True
            )
            size = entry[0] + shift
            results[index] = (size, estimate)
            new_store[parts] = (size, accs, wf)
            stale.add(parts)
        fresh = self._score_all(
            scorer, [candidates[index].parts for index in rescore], detail=True
        )
        for index, (size, estimate, accs, wf) in zip(rescore, fresh):
            results[index] = (size, estimate)
            new_store[candidates[index].parts] = (size, accs, wf)
        self._carry_store = new_store
        self._carry_expr = scorer.current
        self._carry_ready = True
        self._stale = stale
        self.last_carried = len(candidates) - len(rescore)
        self.last_rescored = len(rescore)
        self.total_carried += self.last_carried
        self.total_rescored += self.last_rescored
        self.last_repair_seeded = self.last_carried
        self.last_repair_rescored = self.last_rescored
        return results

    @staticmethod
    def _seed_intersects(
        scorer: IncrementalStepScorer,
        parts: Tuple[str, ...],
        affected_terms: set,
        affected_groups: set,
    ) -> bool:
        """Whether the delta perturbs this candidate's measurement.

        Mirrors :meth:`IncrementalStepScorer.candidate_intersects`
        against the delta's dirty sets instead of a single applied
        merge's."""
        key = scorer._key
        terms = scorer._terms
        for name in parts:
            if name in affected_groups:
                return True
            for index in scorer._ann_terms.get(key(name), ()):
                if index in affected_terms or terms[index].group in affected_groups:
                    return True
            for index in scorer._group_terms.get(name, ()):
                if index in affected_terms:
                    return True
        return False

    def _measure_lazy(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
        w_dist: float,
        w_size: float,
        original_size: int,
    ) -> Tuple[ScoredCandidate, float]:
        self.last_carried = 0
        self.last_rescored = len(candidates)
        self.last_sample_batch = 0
        self.last_sample_variance = 0.0
        self.last_batch_reused = False
        scorer: Optional[FastStepScorer] = None
        mode = self._step_mode(current)
        if mode is not None:
            try:
                scorer = self._obtain_scorer(current, mapping, mode)
            except Exception:
                self._scorer = None
                scorer = None
                self._note_fallback()
        # The lazy queue needs a *carried* incremental scorer (advance
        # continuity keeps stale entries lower bounds); a fresh
        # per-step scorer -- incremental off -- falls back either way.
        if (
            scorer is None
            or scorer is not self._scorer
            or not isinstance(scorer, IncrementalStepScorer)
        ):
            return self._lazy_fallback(
                candidates, current, mapping, w_dist, w_size, original_size
            )
        started = time.perf_counter()
        try:
            best, carried, rescored = self._lazy_select(
                scorer, candidates, w_dist, w_size, original_size
            )
        except Exception:
            self._scorer = None
            self._invalidate_carry()
            self._note_fallback()
            return self._lazy_fallback(
                candidates, current, mapping, w_dist, w_size, original_size
            )
        self.last_carried = carried
        self.last_rescored = rescored
        self.total_carried += carried
        self.total_rescored += rescored
        self._record(self._scorer_path(scorer))
        self.last_kernel = scorer._kernel.name
        self._note_sample_step(scorer)
        return best, time.perf_counter() - started

    def _lazy_fallback(
        self, candidates, current, mapping, w_dist, w_size, original_size
    ) -> Tuple[ScoredCandidate, float]:
        """Full measurement + full ranking when the queue cannot run."""
        measured, seconds = self._measure(candidates, current, mapping)
        ranked = score_candidates(
            measured,
            w_dist=w_dist,
            w_size=w_size,
            original_size=original_size,
            strategy="normalized",
        )
        return ranked[0], seconds

    def _lazy_select(
        self,
        scorer: IncrementalStepScorer,
        candidates: Sequence[Candidate],
        w_dist: float,
        w_size: float,
        original_size: int,
    ) -> Tuple[ScoredCandidate, int, int]:
        """Pop-rescore-reinsert until the queue's top entry is fresh.

        Entries hold ``[size, estimate, fresh]``.  Sizes are always
        exact -- a stale size could *overstate* the bound (sizes only
        shrink along chains) and break the lower-bound invariant, so
        disjoint candidates get the exact carried-size shift and the
        rest a direct size recomputation.  New pairs (no carried entry)
        enter with the global distance floor 0.0.
        """
        store = self._carry_store
        live = (
            self._carry_ready
            and self._carry_expr is scorer.current
            and scorer.last_affected_terms is not None
        )
        entries: List[list] = []
        rescored = 0
        if not live:
            results = self._score_all(
                scorer, [candidate.parts for candidate in candidates]
            )
            entries = [[size, estimate, True] for size, estimate in results]
            rescored = len(candidates)
        else:
            self.last_workers = 1
            shift = scorer.last_size_shift
            for candidate in candidates:
                entry = store.get(candidate.parts)
                if entry is None:
                    entries.append(
                        [scorer.candidate_size(candidate.parts), None, False]
                    )
                elif scorer.candidate_intersects(candidate.parts):
                    entries.append(
                        [scorer.candidate_size(candidate.parts), entry[1], False]
                    )
                else:
                    entries.append([entry[0] + shift, entry[1], False])

        def entry_key(index: int) -> Tuple[float, float, Tuple[str, ...]]:
            size, estimate, _ = entries[index]
            r_dist = estimate.normalized if estimate is not None else 0.0
            r_size = size / original_size if original_size else 0.0
            return (
                w_dist * r_dist + w_size * r_size,
                candidates[index].proposal.taxonomy_cost,
                candidates[index].parts,
            )

        heap = [(entry_key(index), index) for index in range(len(candidates))]
        heapq.heapify(heap)
        while True:
            _, index = heapq.heappop(heap)
            if entries[index][2]:
                best_index = index
                break
            size, estimate = scorer.score(candidates[index].parts)
            entries[index] = [size, estimate, True]
            rescored += 1
            heapq.heappush(heap, (entry_key(index), index))

        self._carry_store = {
            candidate.parts: (entry[0], entry[1])
            for candidate, entry in zip(candidates, entries)
            if entry[1] is not None
        }
        self._carry_expr = scorer.current
        self._carry_ready = True
        self._stale = set()

        size, estimate, _ = entries[best_index]
        r_dist = estimate.normalized
        r_size = size / original_size if original_size else 0.0
        best = ScoredCandidate(
            candidate=candidates[best_index],
            expression=None,
            step_mapping={},
            size=size,
            distance=estimate,
            r_dist=r_dist,
            r_size=r_size,
            score=w_dist * r_dist + w_size * r_size,
        )
        return best, len(candidates) - rescored, rescored

    def _score_all(
        self,
        scorer: FastStepScorer,
        parts: Sequence[Tuple[str, ...]],
        detail: bool = False,
    ) -> List[tuple]:
        if not parts:
            self.last_workers = 1
            return []
        workers = resolve_workers(
            self.config.parallelism, len(parts), self.config.parallel_threshold
        )
        if workers > 1 and not fork_safe_here():
            _warn_fork_unsafe(workers)
            workers = 1
        self.last_workers = workers
        if workers <= 1:
            if detail:
                return [scorer.score_detail(entry) for entry in parts]
            return [scorer.score(entry) for entry in parts]

        # A few spans per worker smooths out uneven candidate costs.
        spans: List[Tuple[int, int]] = []
        n_spans = min(len(parts), workers * 4)
        base, extra = divmod(len(parts), n_spans)
        low = 0
        for index in range(n_spans):
            high = low + base + (1 if index < extra else 0)
            spans.append((low, high))
            low = high

        flat_names: List[str] = []
        offsets = array("q", (0,))
        for candidate_parts in parts:
            flat_names.extend(candidate_parts)
            offsets.append(len(flat_names))

        # Shared-memory blocks for the pool's lifetime: detail results
        # land in per-candidate matrix rows (workers return only
        # index/size/distance triples), and the IR arena / pinned
        # sample batch are published once for the workers to map
        # read-only.  Everything is unlinked in the finally below; the
        # publications are optimizations, so their failure (e.g. a full
        # /dev/shm) degrades to the inherited copy-on-write state.
        _shm.reap_stale_segments_once()
        accs_matrix = wf_matrix = None
        if detail:
            accs_matrix = _shm.SharedMatrix(len(parts), scorer.n_vals, "accs")
            wf_matrix = _shm.SharedMatrix(len(parts), scorer.n_vals, "wf")
        arena = self._publish_arena()
        batch = self._publish_batch(scorer)

        context = multiprocessing.get_context("fork")
        _WORKER_STATE["scorer"] = scorer
        _WORKER_STATE["part_names"] = flat_names
        _WORKER_STATE["part_offsets"] = offsets
        _WORKER_STATE["accs_matrix"] = accs_matrix
        _WORKER_STATE["wf_matrix"] = wf_matrix
        _WORKER_STATE["arena"] = arena
        _WORKER_STATE["batch"] = batch
        try:
            with context.Pool(processes=workers) as pool:
                chunked = pool.map(
                    _score_span_detail if detail else _score_span, spans
                )
            self.last_worker_payload_bytes = sum(
                len(pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))
                for chunk in chunked
            )
            results: List[tuple] = [None] * len(parts)  # type: ignore[list-item]
            for chunk in chunked:
                for index, size, value in chunk:
                    estimate = scorer._estimate(value)
                    if detail:
                        results[index] = (
                            size,
                            estimate,
                            accs_matrix.row_list(index),
                            wf_matrix.row_list(index),
                        )
                    else:
                        results[index] = (size, estimate)
            return results
        finally:
            _WORKER_STATE.clear()
            for block in (accs_matrix, wf_matrix, arena, batch):
                if block is not None:
                    block.destroy()

    def _publish_arena(self) -> Optional["_shm.SharedArena"]:
        """The global IR arena as a shared segment, if publishable."""
        try:
            if not _ir.ir_enabled():
                return None
            store = _ir.GLOBAL_STORE
            if store.n_monomials() <= 1 and len(store.interner) == 0:
                return None
            return _shm.SharedArena.publish(store)
        except Exception:
            return None

    def _publish_batch(self, scorer) -> Optional["_shm.SharedBatch"]:
        """The pinned sample batch as a shared segment, if sampled."""
        if not isinstance(scorer, SampledStepScorer):
            return None
        try:
            return _shm.SharedBatch.publish(scorer)
        except Exception:
            return None

    def _measure_naive(
        self,
        candidates: Sequence[Candidate],
        current,
        mapping: MappingState,
    ) -> Tuple[List[ScoredCandidate], float]:
        """Reference path: materialize and measure each candidate.

        Kept serial: sampled distances draw from the computer's shared
        RNG, whose sequence parallel sharding would change.
        """
        self.last_workers = 1
        self._invalidate_carry()
        problem = self.problem
        measured: List[ScoredCandidate] = []
        started = time.perf_counter()
        for candidate in candidates:
            parts = [problem.universe[name] for name in candidate.parts]
            virtual = virtual_summary(parts, candidate.proposal)
            overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
            step_mapping = {name: virtual.name for name in candidate.parts}
            expression = current.apply_mapping(step_mapping)
            candidate_mapping = mapping.compose(step_mapping)
            distance = self.computer.distance(
                expression, candidate_mapping, universe=overlay
            )
            measured.append(
                ScoredCandidate(
                    candidate=candidate,
                    expression=expression,
                    step_mapping=step_mapping,
                    size=expression.size(),
                    distance=distance,
                )
            )
        self._record(self.PATH_NAIVE)
        self.last_kernel = _kernels.active_backend()
        return measured, time.perf_counter() - started
