"""Semantic constraints on which annotations may be merged (§3.2).

A summary is useless if it identifies unrelated annotations, so the
thesis restricts the candidate homomorphisms:

* only annotations from the *same input table / domain* may map to the
  same summary annotation (enforced structurally: constraints are
  dispatched per domain and never fire across domains);
* annotations must *share an attribute value* (gender, age group,
  occupation, ... -- :class:`SharedAttribute`), which also yields a
  meaningful display name for the summary annotation;
* or they must share a *taxonomy ancestor*
  (:class:`TaxonomyAncestor`), the new annotation being named by the
  lowest common ancestor concept -- this is the Wikipedia pages rule.

A successful check returns a :class:`MergeProposal` carrying the label
and concept of the would-be summary annotation plus the taxonomy cost
used for tie-breaking.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..provenance.annotations import Annotation
from ..taxonomy.dag import Taxonomy
from ..taxonomy.wu_palmer import group_distance, wu_palmer_distance


@dataclass(frozen=True)
class MergeProposal:
    """What the summary annotation of a permitted merge would look like.

    ``taxonomy_cost`` is the Wu-Palmer distance of the merge (0 when no
    taxonomy is involved); Algorithm 1 uses it to break candidate-score
    ties.
    """

    label: str
    concept: Optional[str] = None
    taxonomy_cost: float = 0.0


class MergeConstraint(ABC):
    """Decides whether two (same-domain) annotations may merge."""

    @abstractmethod
    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        """Return a proposal if the merge is allowed, else ``None``."""

    def describe(self) -> str:
        """Table 5.1-style description of the constraint."""
        return type(self).__name__


class AllowAll(MergeConstraint):
    """No semantic restriction (used by unconstrained ablations)."""

    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        return MergeProposal(label=f"{first.name}+{second.name}")

    def describe(self) -> str:
        return "unconstrained"


class SharedAttribute(MergeConstraint):
    """Annotations must agree on at least one of the given attributes.

    ``attributes`` lists the attributes that count (Table 5.1 MovieLens:
    gender, age range, occupation, zip code); ``None`` means any shared
    attribute qualifies.  The proposal label names the first shared
    attribute in the configured order, e.g. ``"Gender=F"`` -- this is
    the meaningful name §3.2 asks for.
    """

    def __init__(self, attributes: Optional[Sequence[str]] = None):
        self.attributes = tuple(attributes) if attributes is not None else None

    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        shared = first.shared_attributes(second)
        if self.attributes is not None:
            shared = {
                key: value for key, value in shared.items() if key in self.attributes
            }
        if not shared:
            return None
        order = self.attributes if self.attributes is not None else sorted(shared)
        for attribute in order:
            if attribute in shared:
                return MergeProposal(label=f"{attribute}={shared[attribute]}")
        return None

    def describe(self) -> str:
        if self.attributes is None:
            return "share any attribute"
        return "share one of: " + ", ".join(self.attributes)


class TaxonomyAncestor(MergeConstraint):
    """Annotations' concepts must share a taxonomy ancestor.

    The proposal's concept (and label) is the lowest common ancestor;
    ``max_distance`` optionally rejects merges whose Wu-Palmer distance
    exceeds the bound (so users are not merged into ``wordnet_entity``).
    ``taxonomy_cost`` is the MAX (or SUM, per ``tiebreak_mode``) of the
    Wu-Palmer distances from the members to the LCA, as used for
    tie-breaking (§4.2: "the MAX (or SUM) of these distances").
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        max_distance: Optional[float] = None,
        tiebreak_mode: str = "max",
    ):
        if tiebreak_mode not in ("max", "sum"):
            raise ValueError("tiebreak_mode must be 'max' or 'sum'")
        self.taxonomy = taxonomy
        self.max_distance = max_distance
        self.tiebreak_mode = tiebreak_mode

    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        if first.concept is None or second.concept is None:
            return None
        if first.concept not in self.taxonomy or second.concept not in self.taxonomy:
            return None
        ancestor = self.taxonomy.lca(first.concept, second.concept)
        if ancestor is None:
            return None
        cost = group_distance(
            self.taxonomy,
            (first.concept, second.concept),
            ancestor,
            mode=self.tiebreak_mode,
        )
        if self.max_distance is not None and cost > self.max_distance:
            return None
        return MergeProposal(label=ancestor, concept=ancestor, taxonomy_cost=cost)

    def describe(self) -> str:
        bound = (
            f" within Wu-Palmer distance {self.max_distance}"
            if self.max_distance is not None
            else ""
        )
        return f"share a taxonomy ancestor{bound}"


class AnyOf(MergeConstraint):
    """Disjunction of constraints; the first that allows the merge wins."""

    def __init__(self, constraints: Sequence[MergeConstraint]):
        if not constraints:
            raise ValueError("AnyOf requires at least one constraint")
        self.constraints = tuple(constraints)

    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        for constraint in self.constraints:
            proposal = constraint.propose(first, second)
            if proposal is not None:
                return proposal
        return None

    def describe(self) -> str:
        return " or ".join(c.describe() for c in self.constraints)


class DomainConstraints(MergeConstraint):
    """Per-domain dispatch; domains without a constraint never merge.

    This encodes both Table 5.1's per-dataset merge rules and the
    implicit same-input-table restriction: annotations from different
    domains are always rejected.
    """

    def __init__(self, per_domain: Mapping[str, MergeConstraint]):
        self.per_domain = dict(per_domain)

    def propose(self, first: Annotation, second: Annotation) -> Optional[MergeProposal]:
        if first.domain != second.domain:
            return None
        constraint = self.per_domain.get(first.domain)
        if constraint is None:
            return None
        return constraint.propose(first, second)

    def describe(self) -> str:
        return "; ".join(
            f"{domain}: {constraint.describe()}"
            for domain, constraint in sorted(self.per_domain.items())
        )

    def mergeable_domains(self) -> Sequence[str]:
        return tuple(sorted(self.per_domain))
