"""Bit-packed Monte-Carlo candidate scoring (Prop. 4.1.2 at speed).

Large valuation classes cannot be enumerated, so the thesis samples:
draw valuations, evaluate both expressions, average the VAL-FUNC
values (Proposition 4.1.2, Chebyshev-bounded).  The reference
implementation (:meth:`~repro.core.distance.DistanceComputer.sampled`)
redraws a fresh batch *per candidate* and evaluates both expressions
from scratch per draw -- the paper's intended scalability path was the
slowest code in the repo.

:class:`SampledStepScorer` lifts the enumerating bitmask kernel
(:class:`~repro.core.fast_distance.FastStepScorer`) to one shared
Monte-Carlo batch per step:

* **One batch, every candidate.**  At construction the scorer draws
  ``N = DistanceComputer.sample_budget()`` valuations from the class
  (seeded, weight-aware: the weighted-average estimator is unchanged)
  and scores *all* of the step's candidates against that single batch.
  Draw and original-evaluation cost amortize over the whole candidate
  set, and the shared draws are *common random numbers*: every
  candidate's estimate shares the batch's noise, so ranking candidates
  is a paired comparison whose selection variance is far below
  independent per-candidate batches.
* **The same packed kernel.**  Batch positions take the enumerated
  valuations' place: each current annotation's dead bits across the
  batch pack into one little-endian ``array('Q')`` word row inside a
  contiguous :class:`~repro.core.kernels.masktable.MaskTable`, with
  the lifted false set computed once per *distinct* drawn member
  (sampling with replacement repeats members; all of a member's draw
  positions scatter in one entry).  Per-term dead masks, per-group
  baseline aggregates and the aligned original vectors are computed
  once per step, and a candidate touches only the terms containing its
  merged parts, exactly like the enumerating scorer.
  :meth:`packed_masks` materializes the canonical ``array('Q')`` word
  layout; the per-batch statistics fold in the same 64-draw blocks.
* **Deterministic batches make carried measurements valid.**  The
  batch is drawn once per scorer and *never* redrawn by
  :meth:`advance`: Prop 4.2.2's monotonicity (the engine's carry/lazy
  machinery treats stale distances as lower bounds) holds pointwise
  per valuation, so it survives sampling only while the valuation set
  is fixed.  With the batch pinned, the cross-step candidate carry and
  the lazy-greedy queue treat sampled distances exactly like
  enumerated ones.

Estimates report ``exact=False`` with ``n_valuations`` equal to the
batch size, mirroring the reference sampled estimator; under a shared
seed the two paths are bit-identical (asserted by
``tests/core/test_sampled_scoring.py``), because both accumulate
``weight x VAL-FUNC`` in flat draw order over the same drawn sequence.
The reference path remains the fallback whenever the kernel's
preconditions fail.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, List, Optional

from ..provenance.annotations import AnnotationUniverse
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation_classes import ValuationClass
from .combiners import DomainCombiners
from .distance import DistanceComputer, DistanceEstimate
from .fast_distance import FastStepScorer, IncrementalStepScorer
from .kernels import MaskTable
from .kernels.masktable import WordRow
from .mapping import MappingState


class SampledStepScorer(IncrementalStepScorer):
    """Scores one step's candidates against a shared sampled batch."""

    @staticmethod
    def applicable(expression, val_func, combiners: DomainCombiners,
                   valuations: ValuationClass, universe: AnnotationUniverse,
                   max_enumerate: int) -> bool:
        """Whether the sampled kernel replaces the reference sampler.

        The class must be *too large* to enumerate (otherwise the exact
        kernel applies) while the expression/VAL-FUNC/combiner
        preconditions of the bitmask kernel hold.
        """
        if len(valuations) <= max_enumerate:
            return False
        return FastStepScorer.applicable(
            expression, val_func, combiners, valuations, universe,
            len(valuations),
        )

    def __init__(
        self,
        computer: DistanceComputer,
        current: TensorSum,
        mapping: MappingState,
        universe: AnnotationUniverse,
        sparse: Optional[bool] = None,
        batch_size: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        draw_rng = computer.rng if rng is None else rng
        if batch_size is None:
            batch_size = computer.sample_budget()
        # The batch is drawn up front, before any kernel state exists:
        # the draws consume the computer's RNG in exactly the order the
        # reference sampler would, which is what makes seed-paired
        # differential comparison (and replay in tests) possible.
        sample = computer.valuations.sample
        self._batch = [sample(draw_rng) for _ in range(max(1, batch_size))]
        # Per-term dead-row memo, valid for the scorer's lifetime
        # because the batch is pinned (see :meth:`_derive_term_dead`).
        self._term_dead_cache: Dict[Term, WordRow] = {}
        #: Count of dead masks actually derived (cache misses); the
        #: mask-reuse regression test asserts this stays sub-linear in
        #: steps x terms while the batch survives ``advance``.
        self.mask_builds = 0
        #: Count of packed-view materializations (see
        #: :meth:`packed_term_dead_table`); the re-packing regression
        #: test asserts repeated reads within one step cost one build.
        self.pack_builds = 0
        self._packed_term_table: Optional[MaskTable] = None
        self._packed_term_rows: Optional[List[WordRow]] = None
        self._packed_mask_views: Optional[Dict[object, WordRow]] = None
        super().__init__(computer, current, mapping, universe, sparse=sparse)
        self._compute_batch_stats()

    # -- batch plumbing (hooks overridden from the enumerating kernel) -------

    def _step_valuations(self) -> List:
        return list(self._batch)

    def _original_result(self, index: int, valuation):
        # Batch positions are not stable enumeration indexes; key the
        # original's evaluation on the valuation's false set instead
        # (shared with the reference sampler's memo, so a differential
        # run pays the evaluation once).
        return self.computer._original_for(valuation)

    def _build_masks(self) -> None:
        """Dead-bit rows across the batch, one lift per distinct member.

        Identical output to the enumerating ``_build_masks`` (bit ``i``
        set ⇔ the annotation is false under batch position ``i``), but
        the lifted false set -- the expensive part -- is computed once
        per distinct drawn valuation, and its scatter entry carries
        *all* of that member's draw positions at once: sampling with
        replacement from a stored class repeats member objects freely.
        """
        row_of = self._mask_rows()
        combiners = self.computer.combiners
        interner = self._interner
        positions: Dict[int, List[int]] = {}
        members: Dict[int, object] = {}
        for index, valuation in enumerate(self.valuations):
            ident = id(valuation)
            bucket = positions.get(ident)
            if bucket is None:
                positions[ident] = [index]
                members[ident] = valuation
            else:
                bucket.append(index)
        entries = []
        for ident, valuation in members.items():
            rows: List[int] = []
            for name in combiners.lifted_false_set(
                valuation, self.mapping, self.universe
            ):
                mask_key = interner.lookup(name) if interner is not None else name
                if mask_key is not None:
                    row = row_of.get(mask_key)
                    if row is not None:
                        rows.append(row)
            if rows:
                entries.append((rows, positions[ident]))
        table = self._kernel.scatter_false_sets(
            len(row_of), entries, self.n_vals
        )
        self._mask: Dict[object, WordRow] = {
            mask_key: table.row(row) for mask_key, row in row_of.items()
        }

    def _derive_term_dead(self) -> List[WordRow]:
        """Memoized per-term dead rows, keyed on term identity.

        ``advance()`` rebuilds the whole term table, but with the batch
        pinned the bit ↔ draw correspondence never moves, so a term's
        dead mask is a pure function of the term itself: any term
        mentioning a merged part (in its annotations *or* its guards)
        is rewritten by ``apply_mapping`` into a different
        :class:`~repro.provenance.tensor_sum.Term` value -- a cache
        miss -- while untouched terms read exactly the same ``_mask``
        entries as before and hit.  The enumerating scorers keep the
        uncached base implementation: their valuation axis is rebuilt
        per scorer, so there is nothing to carry.
        """
        cache = self._term_dead_cache
        out: List[WordRow] = []
        for index, term in enumerate(self._terms):
            dead = cache.get(term)
            if dead is None:
                dead = self._term_mask(index, self._mask)
                cache[term] = dead
                self.mask_builds += 1
            out.append(dead)
        return out

    def _estimate(self, distance_value: float) -> DistanceEstimate:
        max_error = self.computer.max_error
        normalized = (
            min(1.0, distance_value / max_error) if max_error > 0 else 0.0
        )
        estimate = DistanceEstimate.__new__(DistanceEstimate)
        estimate.__dict__.update(
            value=distance_value,
            normalized=normalized,
            n_valuations=self.n_vals,
            exact=False,
        )
        return estimate

    # -- packed views & batch statistics -------------------------------------

    @property
    def batch_size(self) -> int:
        """Number of drawn valuations shared by every candidate."""
        return self.n_vals

    def packed_masks(self) -> Dict[object, WordRow]:
        """Per-annotation dead bits in the ``array('Q')`` word layout.

        Word ``w`` bit ``b`` covers batch position ``64*w + b`` -- the
        same blocking :meth:`_compute_batch_stats` folds over.  The
        rows ARE the scorer's live mask rows (zero-copy, memoized per
        step); treat them as read-only.
        """
        if self._packed_mask_views is None:
            self._packed_mask_views = dict(self._mask)
        return self._packed_mask_views

    def packed_term_dead_table(self) -> MaskTable:
        """The per-term dead rows as one contiguous :class:`MaskTable`.

        Built at most once per step (``advance`` invalidates): the
        term-dead list mixes views into the step's mask table with
        standalone merged rows, so the contiguous image -- what the
        shared-memory batch snapshot blits wholesale -- is materialized
        here and memoized.  ``pack_builds`` counts materializations.
        """
        if self._packed_term_table is None:
            dead = self._term_dead
            table = MaskTable(len(dead), self.n_vals)
            words = table.words
            n_words = table.n_words
            for index, row in enumerate(dead):
                words[index * n_words : (index + 1) * n_words] = array(
                    "Q", row
                )
            self._packed_term_table = table
            self.pack_builds += 1
        return self._packed_term_table

    def packed_term_dead(self) -> List[WordRow]:
        """Per-term dead bits in the ``array('Q')`` word layout.

        Zero-copy views into :meth:`packed_term_dead_table`, memoized
        until the next ``advance``.
        """
        if self._packed_term_rows is None:
            self._packed_term_rows = self.packed_term_dead_table().rows()
        return self._packed_term_rows

    def adopt_shared_weights(self, weights) -> None:
        """Serve per-draw weights from a mapped shared-memory block.

        Called by forked scoring workers after mapping the published
        :class:`~repro.core.shm.SharedBatch`: the float64 view holds
        the identical doubles the list held, indexing yields the same
        python floats, so every downstream accumulation is bit for bit
        unchanged -- the reads just stop touching (and dirtying) the
        parent's copy-on-write list pages.
        """
        self._weights = weights
        # The sparse kernel path caches the weights buffer it hands the
        # backend; repoint it at the adopted block.
        self._weights_col = None

    def _compute_batch_stats(self) -> None:
        """Weighted mean/variance of the baseline's per-draw values.

        Folds in 64-draw blocks matching the packed word layout: each
        block accumulates its weighted sums locally before the
        cross-block combine.  The variance is the achieved spread of
        this step's shared batch -- the engine exports it as a span
        attribute to compare against the Chebyshev worst case the
        ``(ε, δ)`` budget assumed.
        """
        metric = self.val_func.metric
        baseline = self._baseline
        aligned = self._orig_aligned
        values: List[float] = []
        weights: List[float] = []
        # A repeated batch member's baseline and original values are
        # position-independent, so its metric is evaluated once.
        evaluated: Dict[int, float] = {}
        for index in range(self.n_vals):
            valuation = self.valuations[index]
            value = evaluated.get(id(valuation))
            if value is None:
                orig_vec = aligned[index]
                keys = orig_vec.keys() | baseline.keys()
                value = metric(
                    {key: orig_vec.get(key, 0.0) for key in keys},
                    {
                        key: (
                            baseline[key][index] if key in baseline else 0.0
                        )
                        for key in keys
                    },
                )
                evaluated[id(valuation)] = value
            values.append(value)
            weights.append(valuation.weight)
        succ, weight_sum, sumsq = self._kernel.weighted_moments(
            values, weights
        )
        mean = succ / weight_sum if weight_sum else 0.0
        #: Weighted mean baseline distance over the batch (raw value).
        self.batch_mean = mean
        #: Weighted variance of the batch's baseline VAL-FUNC values.
        self.batch_variance = (
            max(0.0, sumsq / weight_sum - mean * mean) if weight_sum else 0.0
        )

    # -- step transition ------------------------------------------------------

    def advance(
        self,
        parts,
        new_name: str,
        new_expression: TensorSum,
        new_mapping: MappingState,
    ) -> None:
        """Carry past the applied merge *without* redrawing the batch.

        Prop 4.2.2's lower-bound property -- what lets the engine carry
        stale measurements and run the lazy queue -- holds pointwise
        per valuation, so it survives sampling only while the batch is
        fixed.  Redrawing here would also invalidate every carried
        accumulator.  A fresh batch is drawn exactly when the engine
        constructs a fresh scorer.
        """
        super().advance(parts, new_name, new_expression, new_mapping)
        # The term table (and possibly the mask dict) moved: the packed
        # views must be re-materialized on next read.
        self._packed_term_table = None
        self._packed_term_rows = None
        self._packed_mask_views = None
        self._compute_batch_stats()
