"""Annotation influence analysis.

The introduction motivates provenance with questions like "if some
contribution seems wrong, how does the information change if we
discard it?" and the related-work chapter highlights that large
derivations hide *which facts are influential*.  This module answers
both directly from the semiring model:

* :func:`annotation_influence` -- for each annotation, the effect of
  cancelling it alone, measured by a VAL-FUNC against the uncancelled
  result (the "single spammer" class of Example 3.2.1);
* :func:`group_influence` -- the same for attribute groups (all Male
  users, all reviews from one platform, ...);
* :func:`rank_influential` -- annotations ordered by influence, the
  related-work notion of "tracking only the most influential facts".

Influence is also a diagnostic for summaries: merging high-influence
annotations with low-influence ones is what creates summary error, so
summaries chosen by Algorithm 1 with high ``wDist`` tend to keep
high-influence annotations separate (exercised in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..provenance.annotations import AnnotationUniverse
from .mapping import MappingState


def annotation_influence(
    expression,
    val_func,
    annotations: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Effect of cancelling each annotation alone.

    ``val_func`` is any VAL-FUNC comparing two evaluation results
    (vector or DDP); the influence of ``a`` is
    ``VAL-FUNC(result_all_true, result_without_a)``.
    """
    names = (
        sorted(expression.annotation_names())
        if annotations is None
        else list(annotations)
    )
    identity = MappingState(sorted(expression.annotation_names()))
    baseline = expression.evaluate(frozenset())
    influences: Dict[str, float] = {}
    for name in names:
        adjusted = expression.evaluate(frozenset((name,)))
        influences[name] = float(val_func(baseline, adjusted, identity))
    return influences


def group_influence(
    expression,
    val_func,
    universe: AnnotationUniverse,
    attribute: str,
) -> Dict[object, float]:
    """Effect of cancelling each value-group of ``attribute``.

    Mirrors the Cancel-Single-Attribute valuations: the influence of
    ``gender = M`` is the VAL-FUNC between the full result and the
    result with every male user's annotation cancelled.
    """
    identity = MappingState(sorted(expression.annotation_names()))
    baseline = expression.evaluate(frozenset())
    influences: Dict[object, float] = {}
    present = expression.annotation_names()
    for value in universe.attribute_values(attribute):
        names = frozenset(
            annotation.name
            for annotation in universe.with_attribute(attribute, value)
            if annotation.name in present
        )
        if not names:
            continue
        adjusted = expression.evaluate(names)
        influences[value] = float(val_func(baseline, adjusted, identity))
    return influences


def rank_influential(
    influences: Mapping[str, float], top: Optional[int] = None
) -> List[Tuple[str, float]]:
    """Annotations by decreasing influence (ties broken by name)."""
    ordered = sorted(influences.items(), key=lambda item: (-item[1], item[0]))
    return ordered if top is None else ordered[:top]
