"""Shared-memory publication for the parallel scoring tier.

The fork-pool scoring path used to move data in two expensive ways:
candidate detail results (per-valuation accumulator lists) were
pickled back from every worker, and workers read step state through
copy-on-write pages that refcount traffic steadily dirtied.  This
module replaces both with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* :class:`SharedMatrix` -- a float64 ``n_rows x n_cols`` matrix the
  workers *write* (one row per candidate: the carry accumulators and
  weighted-finished vectors) and the parent reads back, so the pickled
  return payload shrinks to ``(candidate_index, size, distance)``
  triples regardless of ``n_vals``.
* :class:`SharedArena` -- the interned IR arena's flat columns
  (NUL-separated name blob plus the three int64 monomial columns)
  published once per parallel step; a worker maps them zero-copy
  through :meth:`TermStore.from_buffers
  <repro.provenance.ir.TermStore.from_buffers>` and installs the view
  as its process-local global store, so worker-side arena reads never
  touch (or dirty) the parent's python object graph.
* :class:`SharedBatch` -- the sampled scorer's pinned batch in packed
  form: per-draw weights plus the per-term dead-bit word rows.
  Workers adopt the weight block in place of the scorer's COW list
  (bit-identical: the same float64 values feed the same arithmetic).

**Lifecycle.**  Segments are created by the parent only, immediately
before a pool forks, and unlinked in the same ``finally`` that tears
the pool down -- workers use the fork-inherited mappings and never
attach by name, which keeps CPython's per-process resource tracker out
of the picture.  A module-level registry plus an ``atexit`` hook
backstop abnormal exits, and :func:`reap_stale_segments` sweeps
``/dev/shm`` for segments whose creating process died without
cleanup (names embed the creator pid for exactly this check).
"""

from __future__ import annotations

import atexit
import os
import re
import secrets
from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

#: Leading token of every segment this module creates.
SEGMENT_PREFIX = "prox-shm"

_NAME_PATTERN = re.compile(
    rf"^{SEGMENT_PREFIX}-(?P<pid>\d+)-[A-Za-z0-9]+-[0-9a-f]+$"
)

#: Segments created (and thus owned) by this process, by name.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _segment_name(tag: str) -> str:
    """A collision-free segment name embedding the creator pid."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{tag}-{secrets.token_hex(4)}"


def create_segment(tag: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create and register one owned segment of ``nbytes`` bytes."""
    segment = shared_memory.SharedMemory(
        name=_segment_name(tag), create=True, size=max(1, nbytes)
    )
    _LIVE_SEGMENTS[segment.name] = segment
    return segment


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned segment (idempotent)."""
    _LIVE_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
    except BufferError:
        # A view outlived its release() -- leave the mapping to process
        # teardown but still remove the name from the filesystem.
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def _cleanup_live_segments() -> None:
    for segment in list(_LIVE_SEGMENTS.values()):
        destroy_segment(segment)


atexit.register(_cleanup_live_segments)


def live_segment_names() -> List[str]:
    """Names of the segments this process currently owns."""
    return sorted(_LIVE_SEGMENTS)


def reap_stale_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Unlink segments whose creating process no longer exists.

    Crash insurance for the rare paths the ``finally``/``atexit``
    cleanup cannot cover (SIGKILL mid-step).  Only names matching this
    module's pid-embedding pattern are considered, and only when
    ``/proc/<pid>`` is gone; segments of live processes -- including
    this one -- are never touched.  Safe to call from any process;
    the engine runs one sweep before its first parallel step (see
    :func:`reap_stale_segments_once`).
    """
    reaped: List[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return reaped
    for entry in entries:
        match = _NAME_PATTERN.match(entry)
        if match is None:
            continue
        pid = int(match.group("pid"))
        if pid == os.getpid() or os.path.exists(f"/proc/{pid}"):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except OSError:
            continue
        reaped.append(entry)
    return reaped


_REAPED = False


def reap_stale_segments_once() -> List[str]:
    """One stale-segment sweep per process, at first parallel use."""
    global _REAPED
    if _REAPED:
        return []
    _REAPED = True
    try:
        return reap_stale_segments()
    except Exception:
        return []


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class SharedMatrix:
    """A float64 ``n_rows x n_cols`` matrix in one shared segment.

    The parent creates it before forking; workers write whole rows
    through the inherited mapping (``MAP_SHARED``: stores are visible
    to the parent immediately); the parent copies rows out *after* the
    pool joins, so there is no concurrent reader.  Rows are disjoint
    per candidate, so concurrent writers never overlap.
    """

    def __init__(self, n_rows: int, n_cols: int, tag: str = "matrix"):
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.segment = create_segment(tag, n_rows * n_cols * 8)
        self._view: Optional[memoryview] = None

    def _floats(self) -> memoryview:
        # Created lazily per process: the worker's first write builds
        # its own cast over the inherited mapping.
        if self._view is None:
            count = self.n_rows * self.n_cols
            self._view = memoryview(self.segment.buf)[: count * 8].cast("d")
        return self._view

    def write_row(self, row: int, values: Sequence[float]) -> None:
        base = row * self.n_cols
        self._floats()[base : base + self.n_cols] = array("d", values)

    def row_list(self, row: int) -> List[float]:
        base = row * self.n_cols
        return self._floats()[base : base + self.n_cols].tolist()

    def release(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None

    def destroy(self) -> None:
        self.release()
        destroy_segment(self.segment)


class SharedArena:
    """The IR arena's flat columns, published once per parallel step.

    Layout (all block offsets 8-aligned)::

        int64[4] header: names_bytes, n_pairs, n_bounds, n_sizes
        bytes    NUL-separated annotation names (interner id order)
        int64[]  pair data / bounds / sizes columns

    :meth:`map_store` rebuilds a read-only
    :class:`~repro.provenance.ir.TermStore` over the mapped blocks --
    the same zero-copy path PR 8's snapshot restore uses -- without
    copying a byte out of the segment.
    """

    _HEADER = 4 * 8

    def __init__(self, segment: shared_memory.SharedMemory):
        self.segment = segment
        self._views: List[memoryview] = []

    @classmethod
    def publish(cls, store) -> "SharedArena":
        """Snapshot ``store``'s columns into a fresh segment."""
        names_blob = b"\x00".join(
            name.encode("utf-8") for name in store.interner
        )
        pairs = array("q", store._pair_data)
        bounds = array("q", store._bounds)
        sizes = array("q", store._mono_sizes)
        names_at = _align8(cls._HEADER)
        pairs_at = _align8(names_at + len(names_blob))
        bounds_at = pairs_at + 8 * len(pairs)
        sizes_at = bounds_at + 8 * len(bounds)
        segment = create_segment("arena", sizes_at + 8 * len(sizes))
        buf = segment.buf
        header = array(
            "q", (len(names_blob), len(pairs), len(bounds), len(sizes))
        )
        buf[: cls._HEADER] = header.tobytes()
        buf[names_at : names_at + len(names_blob)] = names_blob
        buf[pairs_at:bounds_at] = pairs.tobytes()
        buf[bounds_at:sizes_at] = bounds.tobytes()
        buf[sizes_at : sizes_at + 8 * len(sizes)] = sizes.tobytes()
        return cls(segment)

    def map_store(self):
        """A zero-copy :class:`TermStore` view over the mapped columns."""
        from ..provenance.ir import TermStore

        whole = memoryview(self.segment.buf)
        self._views.append(whole)
        names_bytes, n_pairs, n_bounds, n_sizes = whole[
            : self._HEADER
        ].cast("q")
        names_at = _align8(self._HEADER)
        pairs_at = _align8(names_at + names_bytes)
        bounds_at = pairs_at + 8 * n_pairs
        sizes_at = bounds_at + 8 * n_bounds
        names_blob = bytes(whole[names_at : names_at + names_bytes])
        pair_base = whole[pairs_at:bounds_at].cast("q")
        bounds_base = whole[bounds_at:sizes_at].cast("q")
        sizes_base = whole[sizes_at : sizes_at + 8 * n_sizes].cast("q")
        self._views.extend((pair_base, bounds_base, sizes_base))
        return TermStore.from_buffers(
            names_blob, pair_base, bounds_base, sizes_base
        )

    def release(self) -> None:
        for view in self._views:
            view.release()
        self._views = []

    def destroy(self) -> None:
        self.release()
        destroy_segment(self.segment)


class SharedBatch:
    """A sampled scorer's pinned batch, packed into one segment.

    Layout::

        int64[3] header: n_vals, n_terms, n_words
        float64[n_vals]            per-draw weights
        uint64[n_terms x n_words]  per-term dead-bit word rows

    Workers adopt the weight block in place of the scorer's weight
    list (``SampledStepScorer.adopt_shared_weights``); the dead-bit
    rows are the batch's canonical packed image, mapped on demand.
    """

    _HEADER = 3 * 8

    def __init__(self, segment: shared_memory.SharedMemory):
        self.segment = segment
        self._views: List[memoryview] = []

    @classmethod
    def publish(cls, scorer) -> "SharedBatch":
        """Snapshot ``scorer``'s packed batch into a fresh segment.

        The sampled scorer exposes its dead rows as one contiguous
        :class:`~repro.core.kernels.masktable.MaskTable`
        (``packed_term_dead_table``), so the whole block blits in a
        single ``tobytes``; scorers without the table fall back to
        row-by-row copies of ``packed_term_dead()``.
        """
        weights = array("d", scorer._weights)
        n_vals = len(weights)
        table_of = getattr(scorer, "packed_term_dead_table", None)
        if table_of is not None:
            table = table_of()
            n_terms = table.n_rows
            n_words = table.n_words
            payload = table.words.tobytes()
        else:
            rows = scorer.packed_term_dead()
            n_terms = len(rows)
            n_words = len(rows[0]) if rows else 0
            payload = b"".join(row.tobytes() for row in rows)
        weights_at = _align8(cls._HEADER)
        rows_at = weights_at + 8 * n_vals
        segment = create_segment("batch", rows_at + len(payload))
        buf = segment.buf
        buf[: cls._HEADER] = array("q", (n_vals, n_terms, n_words)).tobytes()
        buf[weights_at:rows_at] = weights.tobytes()
        buf[rows_at : rows_at + len(payload)] = payload
        return cls(segment)

    def _header(self):
        view = memoryview(self.segment.buf)
        self._views.append(view)
        n_vals, n_terms, n_words = view[: self._HEADER].cast("q")
        return view, n_vals, n_terms, n_words

    def weights_view(self) -> memoryview:
        """Read-only float64 view of the per-draw weights."""
        view, n_vals, _, _ = self._header()
        weights_at = _align8(self._HEADER)
        weights = view[weights_at : weights_at + 8 * n_vals].cast("d")
        self._views.append(weights)
        return weights

    def term_dead_words(self) -> List[memoryview]:
        """Zero-copy uint64 word rows, one per term."""
        view, n_vals, n_terms, n_words = self._header()
        rows_at = _align8(self._HEADER) + 8 * n_vals
        rows: List[memoryview] = []
        for index in range(n_terms):
            at = rows_at + 8 * n_words * index
            row = view[at : at + 8 * n_words].cast("Q")
            self._views.append(row)
            rows.append(row)
        return rows

    def release(self) -> None:
        for view in self._views:
            view.release()
        self._views = []

    def destroy(self) -> None:
        self.release()
        destroy_segment(self.segment)
