"""Cumulative annotation mappings (the homomorphism ``h`` of §3.1).

Algorithm 1 builds its homomorphism gradually -- one pair merge per
step.  :class:`MappingState` tracks the *composition* of all steps so
far as a base-annotation → current-annotation table, which is exactly
what the distance machinery needs:

* lifting a valuation ``v ∈ V_Ann`` to the summary's annotations
  touches only the current annotations of the bases ``v`` deviates on;
* the Euclidean VAL-FUNC aligns the original evaluation vector with the
  summary's by pushing original group keys through the table.

States are immutable; :meth:`compose` returns a new state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class MappingState(Mapping[str, str]):
    """An immutable base → current annotation mapping.

    Starts as the identity on the base annotations and composes
    single-step homomorphisms (each mapping a few current annotations
    to one new summary annotation).
    """

    __slots__ = ("_table",)

    def __init__(self, base_names: Iterable[str]):
        self._table: Dict[str, str] = {name: name for name in base_names}

    @classmethod
    def _from_table(cls, table: Dict[str, str]) -> "MappingState":
        state = cls(())
        state._table = table
        return state

    def compose(self, step: Mapping[str, str]) -> "MappingState":
        """Compose with a single-step homomorphism over *current* names.

        ``step`` maps some current annotations to their replacement;
        unmentioned names stay fixed.
        """
        return MappingState._from_table(
            {
                base: step.get(current, current)
                for base, current in self._table.items()
            }
        )

    # -- Mapping protocol -----------------------------------------------------

    def __getitem__(self, base: str) -> str:
        return self._table[base]

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return len(self._table)

    # -- queries ---------------------------------------------------------------

    def as_dict(self) -> Dict[str, str]:
        return dict(self._table)

    def current_names(self) -> Tuple[str, ...]:
        """Distinct current annotation names, in base order."""
        seen: Dict[str, None] = {}
        for current in self._table.values():
            seen.setdefault(current)
        return tuple(seen)

    def preimage(self, current: str) -> Tuple[str, ...]:
        """Base annotations mapped to ``current``."""
        return tuple(
            base for base, image in self._table.items() if image == current
        )

    def is_identity(self) -> bool:
        return all(base == current for base, current in self._table.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        merged = sum(1 for base, current in self._table.items() if base != current)
        return f"<MappingState over {len(self)} bases, {merged} remapped>"
