"""The #P-hardness reduction of Proposition 4.1.1, constructively.

DIST-COMP (exact distance over *all* truth valuations) is #P-hard by
reduction from #DNF: map every variable of a (monotone) DNF formula
``f`` to a single summary annotation ``A``; then the number of
satisfying valuations of ``f`` is recoverable from
``dist(f, h(f))`` under the disagreement VAL-FUNC.

This module runs the reduction in the forward direction -- it *counts
DNF models by computing a provenance distance* -- which both
demonstrates the proposition and gives the test suite an independent
oracle: the count must agree with brute-force enumeration.

Derivation of the recovery formula (for a non-trivial monotone DNF
with at least one clause, every clause non-empty): under the OR
combiner, ``v'(A) = 1`` iff some variable is true, and ``h(f)``
evaluates exactly to ``v'(A)``.  Hence

* the all-false valuation agrees (both sides 0);
* every other valuation disagrees iff ``f(v) = 0``.

So ``#disagreements = #unsat - 1`` and
``#SAT = 2^n - (#disagreements + 1)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.monoids import MAX
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation import Valuation, cancel
from ..provenance.valuation_classes import ExplicitValuations
from .combiners import DomainCombiners
from .distance import DistanceComputer
from .mapping import MappingState
from .val_funcs import Disagreement

#: The single summary annotation of the reduction.
SUMMARY_NAME = "A"


def dnf_as_provenance(
    clauses: Sequence[Sequence[str]],
) -> Tuple[TensorSum, List[str]]:
    """Encode a monotone DNF as a provenance expression.

    Each clause (a conjunction of variables) becomes a tensor
    ``(x1 · ... · xk) ⊗ (1, 1)``; under MAX aggregation the expression
    evaluates to 1 exactly when some clause is satisfied -- the boolean
    semantics of the formula.
    """
    variables = sorted({name for clause in clauses for name in clause})
    terms = [
        Term(tuple(sorted(clause)), 1.0, group=None)
        for clause in clauses
    ]
    return TensorSum(terms, MAX), variables


def dnf_model_count_via_distance(
    clauses: Sequence[Sequence[str]], max_variables: int = 16
) -> int:
    """#SAT of a monotone DNF, computed through DIST-COMP.

    ``clauses`` is a list of conjunctions (each a list of variable
    names); empty clause lists and clauses with no literals are
    handled as the degenerate formulas 0 and 1 respectively.
    """
    if any(len(clause) == 0 for clause in clauses):
        # A clause with no literals is the constant true.
        variables = sorted({name for clause in clauses for name in clause})
        return 2 ** len(variables)
    if not clauses:
        return 0

    expression, variables = dnf_as_provenance(clauses)
    if len(variables) > max_variables:
        raise ValueError(
            f"reduction enumerates 2^{len(variables)} valuations; "
            f"limit is 2^{max_variables}"
        )
    if len(variables) < 2:
        # h would be injective; the reduction is trivial here.
        return dnf_model_count_brute_force(clauses)

    universe = AnnotationUniverse(
        Annotation(name, "var") for name in variables
    )
    summary_annotation = universe.new_summary(
        [universe[name] for name in variables], label=SUMMARY_NAME
    )
    step = {name: summary_annotation.name for name in variables}
    mapping = MappingState(variables).compose(step)
    summary = expression.apply_mapping(step)

    all_valuations = ExplicitValuations(
        [
            cancel(
                [name for bit, name in enumerate(variables) if not mask >> bit & 1]
            )
            if mask != (1 << len(variables)) - 1
            else Valuation()
            for mask in range(2 ** len(variables))
        ]
    )
    computer = DistanceComputer(
        expression,
        all_valuations,
        Disagreement(MAX),
        DomainCombiners(),
        universe,
        max_enumerate=2 ** len(variables),
    )
    estimate = computer.exact(summary, mapping)
    total = 2 ** len(variables)
    disagreements = round(estimate.value * total)
    unsat = disagreements + 1
    return total - unsat


def dnf_model_count_brute_force(clauses: Sequence[Sequence[str]]) -> int:
    """Reference #SAT by direct enumeration (for validation)."""
    if any(len(clause) == 0 for clause in clauses):
        variables = sorted({name for clause in clauses for name in clause})
        return 2 ** len(variables)
    variables = sorted({name for clause in clauses for name in clause})
    count = 0
    for mask in range(2 ** len(variables)):
        assignment = {
            name: bool(mask >> bit & 1) for bit, name in enumerate(variables)
        }
        if any(all(assignment[name] for name in clause) for clause in clauses):
            count += 1
    return count
