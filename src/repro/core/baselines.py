"""Baseline summarizers: Random and Clustering (§6.1).

Both baselines honor the same stop conditions as Algorithm 1
(``TARGET-SIZE``, ``TARGET-DIST``, step budget) and the same semantic
constraints, but choose *which* pair to merge differently:

* :class:`RandomSummarizer` -- every step picks a uniformly random
  constraint-satisfying pair.
* :class:`ClusteringSummarizer` -- precomputes an agglomerative
  hierarchical clustering dendrogram over feature vectors derived from
  the provenance (Pearson-correlation dissimilarity on shared
  ratings/edits, §6.2) and replays its merges in dissimilarity order;
  each cluster merge corresponds to mapping the clusters' annotations
  to a new summary annotation.

Neither baseline looks at the provenance-aware distance when choosing
merges -- that is exactly the thesis's point: optimizing a function of
the summary expression itself (Prov-Approx) beats optimizing feature
similarity (Clustering) or nothing (Random).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..clustering.features import (
    FeatureVector,
    feature_dissimilarity,
    feature_vectors,
)
from ..clustering.hac import AgglomerativeClustering, Merge
from ..provenance.annotations import Annotation
from ..provenance.ddp_expression import DDPExpression
from .candidates import enumerate_candidates
from .distance import DistanceComputer, DistanceEstimate
from .mapping import MappingState
from .problem import SummarizationConfig, SummarizationProblem
from .summarize import StepRecord, SummarizationResult


class _BaselineRunner:
    """Shared stop-condition / bookkeeping scaffolding for baselines."""

    def __init__(self, problem: SummarizationProblem, config: SummarizationConfig):
        self.problem = problem
        self.config = config
        self.rng = random.Random(config.seed)
        self.computer = DistanceComputer(
            problem.expression,
            problem.valuations,
            problem.val_func,
            problem.combiners,
            problem.universe,
            max_enumerate=config.max_enumerate,
            n_samples=config.distance_samples,
            epsilon=config.epsilon,
            delta=config.delta,
            rng=self.rng,
            interner=problem.resolve_interner(),
            sample_block=config.sample_block,
        )

    def _distance(self, expression, mapping: MappingState) -> DistanceEstimate:
        return self.computer.distance(expression, mapping)

    def _result(
        self,
        original,
        current,
        mapping: MappingState,
        steps: List[StepRecord],
        stop_reason: str,
        started: float,
    ) -> SummarizationResult:
        return SummarizationResult(
            original_expression=original,
            summary_expression=current,
            mapping=mapping,
            universe=self.problem.universe,
            steps=steps,
            stop_reason=stop_reason,
            final_size=current.size(),
            final_distance=self._distance(current, mapping),
            equivalence_merges=0,
            total_seconds=time.perf_counter() - started,
            config=self.config,
        )


class RandomSummarizer(_BaselineRunner):
    """Merge a random constraint-satisfying pair per step (§6.1)."""

    def run(self) -> SummarizationResult:
        problem, config = self.problem, self.config
        started = time.perf_counter()
        original = problem.expression
        mapping = MappingState(sorted(original.annotation_names()))
        current = original
        steps: List[StepRecord] = []
        previous: Optional[Tuple[object, MappingState]] = None
        stop_reason = "exhausted"
        while True:
            # Distance bound first: Algorithm 1 reverts when exceeded.
            if config.target_dist < 1.0:
                distance = self._distance(current, mapping)
                if distance.normalized >= config.target_dist:
                    if previous is not None:
                        current, mapping = previous
                        steps.pop()
                    stop_reason = "target_dist"
                    break
            if current.size() <= config.target_size:
                stop_reason = "target_size"
                break
            if config.max_steps is not None and len(steps) >= config.max_steps:
                stop_reason = "max_steps"
                break
            step_started = time.perf_counter()
            candidates = enumerate_candidates(
                current,
                problem.universe,
                problem.constraint,
                arity=config.merge_arity,
            )
            if not candidates:
                stop_reason = "exhausted"
                break
            chosen = self.rng.choice(candidates)
            parts = [problem.universe[name] for name in chosen.parts]
            summary = problem.universe.new_summary(
                parts, label=chosen.proposal.label, concept=chosen.proposal.concept
            )
            step_mapping = {name: summary.name for name in chosen.parts}
            previous = (current, mapping)
            current = current.apply_mapping(step_mapping)
            mapping = mapping.compose(step_mapping)
            steps.append(
                StepRecord(
                    step=len(steps) + 1,
                    merged=chosen.parts,
                    new_annotation=summary.name,
                    label=chosen.proposal.label,
                    size_after=current.size(),
                    distance_after=None,
                    n_candidates=len(candidates),
                    candidate_seconds=0.0,
                    step_seconds=time.perf_counter() - step_started,
                )
            )
        return self._result(original, current, mapping, steps, stop_reason, started)


@dataclass(frozen=True)
class ClusterDomainSpec:
    """How one annotation domain is clustered.

    ``key_domain`` chooses the sparse-profile key: ``None`` profiles by
    the term's group (users → rated movies), a domain name profiles by
    the co-occurring annotation of that domain (pages → editing users).
    ``dissimilarity`` takes two
    :class:`~repro.clustering.features.FeatureVector` objects; the
    default is the §6.2 measure combining attribute mismatch with the
    Pearson correlation of the ratings profiles.
    """

    domain: str
    key_domain: Optional[str] = None
    dissimilarity: Callable[[FeatureVector, FeatureVector], float] = (
        feature_dissimilarity
    )


class ClusteringSummarizer(_BaselineRunner):
    """Replay a HAC dendrogram as annotation merges (§6.2).

    Feature vectors and the Pearson dissimilarity are derived from the
    provenance expression; the semantic constraints gate which cluster
    pairs may merge.  When several domains are clustered (Wikipedia
    users *and* pages), their dendrograms are interleaved by merge
    dissimilarity.
    """

    def __init__(
        self,
        problem: SummarizationProblem,
        config: SummarizationConfig,
        domain_specs: Sequence[ClusterDomainSpec],
        linkage: str = "single",
    ):
        super().__init__(problem, config)
        if isinstance(problem.expression, DDPExpression):
            raise TypeError(
                "the Clustering baseline is undefined for DDP provenance "
                "(§6.1: no meaningful feature vectors exist)"
            )
        if not domain_specs:
            raise ValueError("at least one ClusterDomainSpec is required")
        self.domain_specs = tuple(domain_specs)
        self.linkage = linkage

    # -- dendrogram construction ------------------------------------------------

    def _merged_representative(self, names: Sequence[str]) -> Annotation:
        """A virtual annotation standing for a cluster of base items."""
        annotations = [self.problem.universe[name] for name in names]
        shared = dict(annotations[0].attributes)
        for annotation in annotations[1:]:
            shared = {
                key: value
                for key, value in shared.items()
                if annotation.attributes.get(key) == value
            }
        concept = None
        taxonomy = self.problem.taxonomy
        if taxonomy is not None:
            concepts = [a.concept for a in annotations if a.concept is not None]
            if len(concepts) == len(annotations):
                concept = taxonomy.lca_of(concepts)
        return Annotation(
            name="?cluster",
            domain=annotations[0].domain,
            attributes=shared,
            concept=concept,
            members=frozenset().union(*(a.base_members() for a in annotations)),
        )

    def _domain_merges(
        self, spec: ClusterDomainSpec
    ) -> List[Tuple[float, Tuple[str, ...], Tuple[str, ...]]]:
        """Dendrogram of one domain as (dissimilarity, cluster_a, cluster_b)."""
        vectors = feature_vectors(
            self.problem.expression,
            self.problem.universe,
            spec.domain,
            key_domain=spec.key_domain,
        )
        if len(vectors) < 2:
            return []
        idents = [vector.ident for vector in vectors]

        def dissimilarity(i: int, j: int) -> float:
            return spec.dissimilarity(vectors[i], vectors[j])

        def allowed(first: FrozenSet[int], second: FrozenSet[int]) -> bool:
            rep_first = self._merged_representative([idents[i] for i in first])
            rep_second = self._merged_representative([idents[i] for i in second])
            return self.problem.constraint.propose(rep_first, rep_second) is not None

        hac = AgglomerativeClustering(
            len(vectors), dissimilarity, linkage=self.linkage, allowed=allowed
        )
        members_of: Dict[int, Tuple[str, ...]] = {
            index: (ident,) for index, ident in enumerate(idents)
        }
        merges = []
        for merge in hac.run(1):
            first = members_of[merge.first]
            second = members_of[merge.second]
            members_of[merge.new] = first + second
            merges.append((merge.dissimilarity, first, second))
        return merges

    # -- replay ------------------------------------------------------------------

    def run(self) -> SummarizationResult:
        problem, config = self.problem, self.config
        started = time.perf_counter()
        original = problem.expression
        mapping = MappingState(sorted(original.annotation_names()))
        current = original

        plan: List[Tuple[float, Tuple[str, ...], Tuple[str, ...]]] = []
        for spec in self.domain_specs:
            plan.extend(self._domain_merges(spec))
        plan.sort(key=lambda entry: entry[0])

        cluster_name: Dict[Tuple[str, ...], str] = {}
        steps: List[StepRecord] = []
        previous: Optional[Tuple[object, MappingState]] = None
        stop_reason = "exhausted"
        for dissimilarity, first, second in plan:
            # Distance bound first: Algorithm 1 reverts when exceeded.
            if config.target_dist < 1.0:
                distance = self._distance(current, mapping)
                if distance.normalized >= config.target_dist:
                    if previous is not None:
                        current, mapping = previous
                        steps.pop()
                    stop_reason = "target_dist"
                    break
            if current.size() <= config.target_size:
                stop_reason = "target_size"
                break
            if config.max_steps is not None and len(steps) >= config.max_steps:
                stop_reason = "max_steps"
                break
            step_started = time.perf_counter()
            name_first = cluster_name.get(first, first[0] if len(first) == 1 else None)
            name_second = cluster_name.get(
                second, second[0] if len(second) == 1 else None
            )
            if name_first is None or name_second is None:
                # The source cluster was never materialized (its own
                # merge was skipped); skip dependent merges too.
                continue
            parts = [problem.universe[name_first], problem.universe[name_second]]
            proposal = problem.constraint.propose(parts[0], parts[1])
            if proposal is None:
                continue
            summary = problem.universe.new_summary(
                parts, label=proposal.label, concept=proposal.concept
            )
            cluster_name[first + second] = summary.name
            step_mapping = {part.name: summary.name for part in parts}
            previous = (current, mapping)
            current = current.apply_mapping(step_mapping)
            mapping = mapping.compose(step_mapping)
            steps.append(
                StepRecord(
                    step=len(steps) + 1,
                    merged=(name_first, name_second),
                    new_annotation=summary.name,
                    label=proposal.label,
                    size_after=current.size(),
                    distance_after=None,
                    n_candidates=len(plan),
                    candidate_seconds=0.0,
                    step_seconds=time.perf_counter() - step_started,
                )
            )
        else:
            stop_reason = "exhausted"
        return self._result(original, current, mapping, steps, stop_reason, started)
