"""Candidate scoring (``CandidateScore``, Definition 3.2.4).

Each candidate merge is scored by a weighted combination of its
distance rank and its size rank:

    CandidateScore = wDist * rDist + wSize * rSize

Definition 3.2.4 calls the two components *ranks*; we support both
natural readings:

* ``"normalized"`` (default) -- ``rDist`` is the normalized approximate
  distance (already in ``[0, 1]`` after dividing by the maximum
  possible error) and ``rSize`` the candidate's size divided by the
  *original* expression's size.  Both live on an absolute scale, so
  scores are comparable across steps.
* ``"ordinal"`` -- components are the candidate's fractional rank
  within the step's candidate set (0 for the best candidate, 1 for the
  worst, ties sharing a rank).  This reading is scale-free; the
  ``bench_ablation_scoring`` benchmark compares the two.

Ties on the score are broken by taxonomy cost (MAX or SUM of Wu-Palmer
distances of the merged annotations to their new concept, §4.2) and
then deterministically by the merged annotation names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .candidates import Candidate
from .distance import DistanceEstimate

#: Recognized values for the ``scoring`` configuration knob.
SCORING_STRATEGIES = ("normalized", "ordinal")


@dataclass
class ScoredCandidate:
    """A candidate together with its measured quality and final score."""

    candidate: Candidate
    expression: object
    step_mapping: Dict[str, str]
    size: int
    distance: DistanceEstimate
    r_dist: float = 0.0
    r_size: float = 0.0
    score: float = 0.0

    @property
    def taxonomy_cost(self) -> float:
        return self.candidate.proposal.taxonomy_cost

    def sort_key(self) -> Tuple[float, float, Tuple[str, ...]]:
        """Score, then taxonomy tie-break, then deterministic order."""
        return (self.score, self.taxonomy_cost, self.candidate.parts)


def score_candidates(
    measured: Sequence[ScoredCandidate],
    w_dist: float,
    w_size: float,
    original_size: int,
    strategy: str = "normalized",
) -> List[ScoredCandidate]:
    """Fill in ``r_dist`` / ``r_size`` / ``score`` and sort best-first."""
    if strategy not in SCORING_STRATEGIES:
        raise ValueError(
            f"unknown scoring strategy {strategy!r}; expected one of "
            f"{SCORING_STRATEGIES}"
        )
    if not measured:
        return []
    if strategy == "normalized":
        for entry in measured:
            entry.r_dist = entry.distance.normalized
            entry.r_size = entry.size / original_size if original_size else 0.0
    else:
        _assign_ordinal_ranks(measured)
    ordered = list(measured)
    for entry in ordered:
        entry.score = w_dist * entry.r_dist + w_size * entry.r_size
    ordered.sort(key=ScoredCandidate.sort_key)
    return ordered


def _assign_ordinal_ranks(measured: Sequence[ScoredCandidate]) -> None:
    """Fractional ranks in [0, 1]; equal measurements share a rank."""
    span = max(1, len(measured) - 1)

    def fill(values: Sequence[float], setter) -> None:
        order = sorted(range(len(values)), key=lambda index: values[index])
        rank_of: Dict[int, float] = {}
        position = 0
        while position < len(order):
            tied = [order[position]]
            while (
                position + len(tied) < len(order)
                and values[order[position + len(tied)]] == values[tied[0]]
            ):
                tied.append(order[position + len(tied)])
            rank = position / span
            for index in tied:
                rank_of[index] = rank
            position += len(tied)
        for index, entry in enumerate(measured):
            setter(entry, rank_of[index])

    fill(
        [entry.distance.normalized for entry in measured],
        lambda entry, rank: setattr(entry, "r_dist", rank),
    )
    fill(
        [float(entry.size) for entry in measured],
        lambda entry, rank: setattr(entry, "r_size", rank),
    )
