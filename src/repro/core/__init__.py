"""The paper's contribution: approximated provenance summarization.

Public entry points:

* :class:`~repro.core.problem.SummarizationProblem` /
  :class:`~repro.core.problem.SummarizationConfig` -- inputs of
  Algorithm 1.
* :class:`~repro.core.summarize.Summarizer` /
  :func:`~repro.core.summarize.summarize` -- the Prov-Approx
  algorithm.
* :class:`~repro.core.baselines.RandomSummarizer` /
  :class:`~repro.core.baselines.ClusteringSummarizer` -- the §6.1
  competitors.
* :class:`~repro.core.distance.DistanceComputer` -- exact/sampled
  summary-quality distances (Propositions 4.1.1-4.1.2).
* :class:`~repro.core.engine.ScoringEngine` -- parallel/incremental
  per-step candidate scoring behind the ``parallelism=`` /
  ``incremental=`` config knobs.
* :class:`~repro.core.sampled_scoring.SampledStepScorer` -- the
  bit-packed Monte-Carlo kernel for classes too large to enumerate
  (``sample_sharing=`` / ``sample_block=`` config knobs).
"""

from .baselines import ClusterDomainSpec, ClusteringSummarizer, RandomSummarizer
from .beam import BeamSummarizer
from .candidates import Candidate, enumerate_candidates, virtual_summary
from .combiners import (
    AND,
    MAXC,
    MINC,
    OR,
    AndCombiner,
    Combiner,
    DomainCombiners,
    MaxCombiner,
    MinCombiner,
    OrCombiner,
)
from .constraints import (
    AllowAll,
    AnyOf,
    DomainConstraints,
    MergeConstraint,
    MergeProposal,
    SharedAttribute,
    TaxonomyAncestor,
)
from .distance import (
    DistanceComputer,
    DistanceEstimate,
    chebyshev_sample_size,
    exhaustive_distance,
)
from .engine import ScoringEngine, resolve_workers
from .equivalence import (
    constrained_groups,
    equivalence_classes,
    group_equivalent,
    minimal_zero_distance_summary,
)
from .hardness import (
    dnf_as_provenance,
    dnf_model_count_brute_force,
    dnf_model_count_via_distance,
)
from .influence import annotation_influence, group_influence, rank_influential
from .mapping import MappingState
from .problem import SummarizationConfig, SummarizationProblem
from .sampled_scoring import SampledStepScorer
from .scoring import SCORING_STRATEGIES, ScoredCandidate, score_candidates
from .summarize import StepRecord, SummarizationResult, Summarizer, summarize
from .val_funcs import (
    AbsoluteDifference,
    DDPCostDifference,
    Disagreement,
    EuclideanDistance,
    align_vector,
)

__all__ = [
    "AND",
    "AbsoluteDifference",
    "AllowAll",
    "AndCombiner",
    "AnyOf",
    "BeamSummarizer",
    "Candidate",
    "ClusterDomainSpec",
    "ClusteringSummarizer",
    "Combiner",
    "DDPCostDifference",
    "Disagreement",
    "DistanceComputer",
    "DistanceEstimate",
    "DomainCombiners",
    "DomainConstraints",
    "EuclideanDistance",
    "MAXC",
    "MINC",
    "MappingState",
    "MaxCombiner",
    "MergeConstraint",
    "MergeProposal",
    "MinCombiner",
    "OR",
    "OrCombiner",
    "RandomSummarizer",
    "SCORING_STRATEGIES",
    "SampledStepScorer",
    "ScoredCandidate",
    "ScoringEngine",
    "SharedAttribute",
    "StepRecord",
    "SummarizationConfig",
    "SummarizationProblem",
    "SummarizationResult",
    "Summarizer",
    "TaxonomyAncestor",
    "align_vector",
    "annotation_influence",
    "chebyshev_sample_size",
    "constrained_groups",
    "dnf_as_provenance",
    "dnf_model_count_brute_force",
    "dnf_model_count_via_distance",
    "enumerate_candidates",
    "equivalence_classes",
    "exhaustive_distance",
    "group_equivalent",
    "group_influence",
    "minimal_zero_distance_summary",
    "rank_influential",
    "resolve_workers",
    "score_candidates",
    "summarize",
    "virtual_summary",
]
