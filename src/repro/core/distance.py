"""Distance between a provenance expression and its summary (Ch. 4.1).

``DIST-COMP`` -- computing the exact distance with respect to *all*
truth valuations -- is #P-hard (Proposition 4.1.1, by reduction from
#DNF).  The thesis therefore restricts the valuation set to an input
class ``V_Ann`` and/or approximates by sampling (Proposition 4.1.2):
each sample draws a valuation, evaluates both expressions, feeds the
results to the VAL-FUNC and averages; Chebyshev's inequality bounds
the convergence rate.

:class:`DistanceComputer` packages the machinery used on Algorithm 1's
hot path: it caches the original expression's evaluation per valuation
(valuations are reused across thousands of candidate scorings) and
decides between exact enumeration (small classes) and sampling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..observability import metrics as _metrics
from ..provenance.annotations import AnnotationUniverse
from ..provenance.ir import AnnotationInterner
from ..provenance.valuation import Valuation
from ..provenance.valuation_classes import ValuationClass
from .combiners import DomainCombiners
from .mapping import MappingState

_DISTANCE_CALLS = _metrics.counter(
    "prox_distance_calls_total",
    "Distance computations, by evaluation mode.",
    labelnames=("mode",),
)
_DISTANCE_SAMPLES = _metrics.counter(
    "prox_distance_samples_total",
    "Valuations drawn for sampled distance approximations.",
)
_DISTANCE_VARIANCE = _metrics.gauge(
    "prox_distance_sample_variance",
    "Sample variance of the most recent sampled distance estimate.",
)


def chebyshev_sample_size(epsilon: float, delta: float, spread: float = 1.0) -> int:
    """Samples needed so that ``Prob(|d' - d| > ε) < 1 - δ``.

    The estimator averages i.i.d. VAL-FUNC values bounded in
    ``[0, spread]``, so their variance is at most ``spread² / 4``
    (Popoviciu) and Chebyshev gives
    ``Prob(|d' - d| > ε) ≤ spread² / (4 n ε²)``.
    """
    if not 0 < epsilon:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    alpha = 1.0 - delta
    return max(1, math.ceil(spread * spread / (4.0 * alpha * epsilon * epsilon)))


@dataclass(frozen=True)
class DistanceEstimate:
    """Result of a distance computation.

    ``value`` is the raw average VAL-FUNC value; ``normalized`` divides
    by the maximum possible error (the quantity the thesis plots,
    §6.3).  ``exact`` records whether the class was fully enumerated or
    sampled (``n_valuations`` valuations either way).
    """

    value: float
    normalized: float
    n_valuations: int
    exact: bool

    def __float__(self) -> float:
        return self.normalized


@dataclass
class DistanceStats:
    """Telemetry of one computer's lifetime (§6.3's sampling effort).

    ``last_sample_variance`` is the *achieved* spread of the most
    recent sampled estimate -- compare against the Chebyshev worst case
    ``spread²/4`` the (ε, δ) budget assumed.
    """

    exact_calls: int = 0
    sampled_calls: int = 0
    samples_drawn: int = 0
    last_sample_size: int = 0
    last_sample_variance: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "exact_calls": self.exact_calls,
            "sampled_calls": self.sampled_calls,
            "samples_drawn": self.samples_drawn,
            "last_sample_size": self.last_sample_size,
            "last_sample_variance": self.last_sample_variance,
        }


class DistanceComputer:
    """Distance of candidate summaries from a fixed original expression.

    Parameters
    ----------
    original:
        The original expression ``p0`` (a
        :class:`~repro.provenance.tensor_sum.TensorSum` or
        :class:`~repro.provenance.ddp_expression.DDPExpression`).
    valuations:
        The class ``V_Ann`` of truth valuations over base annotations.
    val_func:
        The VAL-FUNC (callable ``(orig_result, summary_result,
        alignment) -> float`` with a ``max_error(expression)`` method).
    combiners:
        The per-domain ``φ`` functions lifting valuations.
    universe:
        Annotation registry (for summary membership lookups).
    max_enumerate:
        Classes up to this size are enumerated exactly; larger ones
        are sampled.
    n_samples / epsilon / delta:
        Sampling budget: explicit count, or the Chebyshev bound for
        ``(ε, δ)`` when ``n_samples`` is None.
    sample_block:
        Chebyshev-derived budgets are rounded up to a multiple of this
        (explicit ``n_samples`` is used verbatim), so the bit-packed
        sampled scorer's 64-bit word blocks are fully populated.
    rng:
        Source of randomness for sampling (deterministic by default).
    interner:
        Optional :class:`~repro.provenance.ir.AnnotationInterner`; when
        set, the fast scorers key their per-annotation state (valuation
        bitmasks, term indexes) on dense interned ids instead of
        re-hashing name strings, and a session-held interner keeps those
        ids stable across repeated ``/summarize`` calls.
    """

    def __init__(
        self,
        original,
        valuations: ValuationClass,
        val_func,
        combiners: DomainCombiners,
        universe: AnnotationUniverse,
        max_enumerate: int = 512,
        n_samples: Optional[int] = None,
        epsilon: float = 0.05,
        delta: float = 0.9,
        rng: Optional[random.Random] = None,
        interner: Optional[AnnotationInterner] = None,
        sample_block: int = 64,
    ):
        self.original = original
        self.interner = interner
        self.valuations = valuations
        self.val_func = val_func
        self.combiners = combiners
        self.universe = universe
        self.max_enumerate = max_enumerate
        self.n_samples = n_samples
        self.epsilon = epsilon
        self.delta = delta
        self.rng = rng if rng is not None else random.Random(0)
        self.sample_block = max(1, int(sample_block))
        self._original_cache: Dict[int, object] = {}
        self._sample_cache: Dict[object, object] = {}
        self._max_error = float(val_func.max_error(original))
        #: Lifetime telemetry (exact/sampled calls, samples, variance).
        self.stats = DistanceStats()

    @property
    def max_error(self) -> float:
        """The normalization bound (maximum possible VAL-FUNC value)."""
        return self._max_error

    # -- evaluation helpers -----------------------------------------------------

    def _original_result(self, index: int, valuation: Valuation):
        cached = self._original_cache.get(index)
        if cached is None:
            cached = self.original.evaluate(valuation.false_set())
            self._original_cache[index] = cached
        return cached

    def _original_for(self, valuation: Valuation):
        """Original's evaluation under a *drawn* valuation.

        Sampling has no stable enumeration index to key on, so the
        cache keys on the valuation's false set instead.  Drawn
        valuations repeat -- within a batch (sampling with replacement)
        and across candidates (the class yields the same members) -- so
        this persists for the computer's lifetime, exactly like the
        index-keyed cache the exact path uses.
        """
        false_set = valuation.false_set()
        cached = self._sample_cache.get(false_set)
        if cached is None:
            cached = self.original.evaluate(false_set)
            self._sample_cache[false_set] = cached
        return cached

    def _summary_result(
        self, summary, valuation: Valuation, mapping: MappingState, universe=None
    ):
        lifted_false = self.combiners.lifted_false_set(
            valuation, mapping, universe if universe is not None else self.universe
        )
        return summary.evaluate(lifted_false)

    def _normalize(self, value: float) -> float:
        if self._max_error <= 0:
            return 0.0
        return min(1.0, value / self._max_error)

    def sample_budget(self) -> int:
        """Valuations one sampled estimate draws (Prop. 4.1.2 budget).

        An explicit ``n_samples`` wins verbatim.  Otherwise the
        Chebyshev ``(ε, δ)`` bound is computed with the VAL-FUNC's
        actual spread: per-sample values are bounded by ``max_error``,
        so when that bound is tighter than the worst-case 1.0 the
        budget shrinks quadratically (spreads above 1.0 are capped --
        ``ε`` and every consumer of the estimate live on the normalized
        scale, where per-sample values are bounded by 1).  The derived
        budget is then rounded up to a ``sample_block`` multiple so the
        bit-packed scorer's 64-bit words are fully populated.  Both
        paths clamp at ``16 × |V_Ann|``, past which enumeration is
        cheaper than sampling.
        """
        if self.n_samples is not None:
            samples = self.n_samples
        else:
            spread = (
                self._max_error if 0.0 < self._max_error < 1.0 else 1.0
            )
            samples = chebyshev_sample_size(self.epsilon, self.delta, spread=spread)
            block = self.sample_block
            samples = -(-samples // block) * block
        return max(1, min(samples, 16 * max(1, len(self.valuations))))

    # -- public API -----------------------------------------------------------------

    def distance(
        self, summary, mapping: MappingState, universe=None
    ) -> DistanceEstimate:
        """Distance of ``summary = h(p0)`` from ``p0`` over ``V_Ann``.

        Enumerates the class exactly when it is small enough, otherwise
        samples per Proposition 4.1.2.  ``universe`` optionally overlays
        the computer's universe (candidate scoring passes a view that
        also contains the candidate's virtual summary annotation).
        """
        if len(self.valuations) <= self.max_enumerate:
            return self.exact(summary, mapping, universe)
        return self.sampled(summary, mapping, universe)

    def exact(self, summary, mapping: MappingState, universe=None) -> DistanceEstimate:
        """Exact average over the (enumerable) valuation class."""
        total = 0.0
        total_weight = 0.0
        for index, valuation in enumerate(self.valuations):
            original_result = self._original_result(index, valuation)
            summary_result = self._summary_result(summary, valuation, mapping, universe)
            total += valuation.weight * self.val_func(
                original_result, summary_result, mapping
            )
            total_weight += valuation.weight
        value = total / total_weight if total_weight else 0.0
        self.stats.exact_calls += 1
        if _metrics.ENABLED:
            _DISTANCE_CALLS.inc(mode="exact")
        return DistanceEstimate(
            value=value,
            normalized=self._normalize(value),
            n_valuations=len(self.valuations),
            exact=True,
        )

    def sampled(self, summary, mapping: MappingState, universe=None) -> DistanceEstimate:
        """Sampling approximation of the distance (Proposition 4.1.2).

        Draws valuations uniformly from the class; ``SuccCounter``
        accumulates weighted VAL-FUNC values and the estimate is
        ``SuccCounter / SampleCounter``.
        """
        samples = self.sample_budget()
        succ = 0.0
        weight_sum = 0.0
        weighted_sumsq = 0.0
        for _ in range(samples):
            valuation = self.valuations.sample(self.rng)
            original_result = self._original_for(valuation)
            summary_result = self._summary_result(summary, valuation, mapping, universe)
            sampled_value = self.val_func(original_result, summary_result, mapping)
            succ += valuation.weight * sampled_value
            weight_sum += valuation.weight
            weighted_sumsq += valuation.weight * sampled_value * sampled_value
        value = succ / weight_sum if weight_sum else 0.0
        # Weight-normalized second moment around the weighted mean: the
        # estimator is SuccCounter / SampleCounter (both weighted), so
        # its spread must track the same weighting -- an unweighted
        # variance understates heavy valuations' contribution.
        variance = (
            max(0.0, weighted_sumsq / weight_sum - value * value)
            if weight_sum
            else 0.0
        )
        stats = self.stats
        stats.sampled_calls += 1
        stats.samples_drawn += samples
        stats.last_sample_size = samples
        stats.last_sample_variance = variance
        if _metrics.ENABLED:
            _DISTANCE_CALLS.inc(mode="sampled")
            _DISTANCE_SAMPLES.inc(samples)
            _DISTANCE_VARIANCE.set(variance)
        return DistanceEstimate(
            value=value,
            normalized=self._normalize(value),
            n_valuations=samples,
            exact=False,
        )


def exhaustive_distance(
    original,
    summary,
    mapping: MappingState,
    val_func,
    combiners: DomainCombiners,
    universe: AnnotationUniverse,
    max_annotations: int = 16,
) -> float:
    """``DIST-COMP`` over *all* ``2^n`` truth valuations (normalized).

    This is the #P-hard quantity of Proposition 4.1.1; it is only
    feasible for tiny expressions and exists to validate the sampling
    approximation in tests and the sampling-budget ablation bench.
    """
    names = sorted(original.annotation_names())
    if len(names) > max_annotations:
        raise ValueError(
            f"exhaustive enumeration over {len(names)} annotations would need "
            f"2^{len(names)} valuations; limit is 2^{max_annotations}"
        )
    total = 0.0
    count = 0
    max_error = float(val_func.max_error(original))
    for mask in range(2 ** len(names)):
        cancelled = frozenset(
            name for bit, name in enumerate(names) if not (mask >> bit) & 1
        )
        valuation = Valuation({name: 0.0 for name in cancelled})
        original_result = original.evaluate(cancelled)
        lifted = combiners.lifted_false_set(valuation, mapping, universe)
        summary_result = summary.evaluate(lifted)
        total += val_func(original_result, summary_result, mapping)
        count += 1
    value = total / count
    if max_error <= 0:
        return 0.0
    return min(1.0, value / max_error)
