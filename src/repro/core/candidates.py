"""Candidate homomorphism enumeration (``CandidateHom`` of Algorithm 1).

Each algorithm step examines the single-step mappings that send a
small set of current annotations (normally a pair; ``arity > 2``
implements the thesis's future-work k-way generalization) to one new
summary annotation, subject to the semantic constraints.

Because summary annotations carry the *intersection* of their members'
attributes and their members' LCA concept, checking a constraint
between two current annotations is equivalent to checking it across
the union of their base members -- no special-casing for
summary-with-summary merges is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.ir import AnnotationInterner
from .constraints import MergeConstraint, MergeProposal


@dataclass(frozen=True)
class Candidate:
    """One candidate single-step merge: ``parts → proposal.label``."""

    parts: Tuple[str, ...]
    proposal: MergeProposal

    def __str__(self) -> str:
        return f"{{{', '.join(self.parts)}}} → {self.proposal.label}"


def virtual_summary(parts: Sequence[Annotation], proposal: MergeProposal) -> Annotation:
    """An unregistered summary annotation standing in for a candidate.

    Candidate scoring needs the summary's members and domain but must
    not pollute the universe with annotations for merges that are never
    chosen; the winner is re-minted through
    :meth:`~repro.provenance.annotations.AnnotationUniverse.new_summary`.
    """
    members = frozenset().union(*(part.base_members() for part in parts))
    shared = dict(parts[0].attributes)
    for part in parts[1:]:
        shared = {
            key: value
            for key, value in shared.items()
            if key in part.attributes and part.attributes[key] == value
        }
    return Annotation(
        name=f"{proposal.label}?cand",
        domain=parts[0].domain,
        attributes=shared,
        concept=proposal.concept,
        members=members,
    )


def enumerate_candidates(
    expression,
    universe: AnnotationUniverse,
    constraint: MergeConstraint,
    arity: int = 2,
    cap: Optional[int] = None,
    rng: Optional[random.Random] = None,
    interner: Optional[AnnotationInterner] = None,
) -> List[Candidate]:
    """All constraint-satisfying single-step merges of ``expression``.

    Pairs are enumerated within each domain; for ``arity > 2`` each
    allowed pair is greedily extended with further annotations that the
    constraint accepts against the growing (virtual) summary, so every
    returned candidate is internally consistent.  ``cap`` optionally
    subsamples the candidate list deterministically via ``rng`` (an
    escape hatch for very large expressions; the thesis enumerates all
    pairs).  ``interner`` keys deduplication identity on dense interned
    ids (the output order stays name-sorted either way, so all scoring
    modes see identical candidate lists).
    """
    if arity < 2:
        raise ValueError("merge arity must be at least 2")
    candidates = generate_candidates(expression, universe, constraint, arity)
    return finalize_candidates(candidates, arity, cap, rng, interner)


def annotations_by_domain(
    expression, universe: AnnotationUniverse
) -> Dict[str, List[Annotation]]:
    """The expression's annotations grouped per domain, name-sorted.

    Domains appear in order of their smallest member name -- the same
    order :func:`generate_candidates` (and therefore the candidate
    list) walks them in.
    """
    present = sorted(expression.annotation_names())
    by_domain: Dict[str, List[Annotation]] = {}
    for name in present:
        annotation = universe[name]
        by_domain.setdefault(annotation.domain, []).append(annotation)
    return by_domain


def generate_candidates(
    expression,
    universe: AnnotationUniverse,
    constraint: MergeConstraint,
    arity: int,
) -> List[Candidate]:
    """The raw candidate list before dedupe/cap (generation order).

    Shared by :func:`enumerate_candidates` and the cross-step
    :class:`~repro.core.pool.CandidatePool`, whose maintained list must
    replay exactly this order.
    """
    candidates: List[Candidate] = []
    for domain_annotations in annotations_by_domain(expression, universe).values():
        for first, second in combinations(domain_annotations, 2):
            candidate = propose_candidate(
                first, second, domain_annotations, constraint, arity
            )
            if candidate is not None:
                candidates.append(candidate)
    return candidates


def propose_candidate(
    first: Annotation,
    second: Annotation,
    domain_annotations: Sequence[Annotation],
    constraint: MergeConstraint,
    arity: int,
) -> Optional[Candidate]:
    """The candidate seeded by ``(first, second)``, or ``None`` if rejected.

    ``first``/``second`` must be passed in name order: some constraints
    (``AllowAll``'s label) are order-sensitive, and candidate identity
    must not depend on who proposes the pair.
    """
    proposal = constraint.propose(first, second)
    if proposal is None:
        return None
    parts = [first, second]
    if arity > 2:
        parts, proposal = _extend_group(
            parts, proposal, domain_annotations, constraint, arity
        )
    return Candidate(tuple(part.name for part in parts), proposal)


def finalize_candidates(
    candidates: List[Candidate],
    arity: int,
    cap: Optional[int],
    rng: Optional[random.Random],
    interner: Optional[AnnotationInterner],
) -> List[Candidate]:
    """Dedupe (``arity > 2``) and cap-subsample a raw candidate list.

    Consumes ``rng`` exactly as the seed ``enumerate_candidates`` did,
    so a maintained pool finalizing per step leaves the shared RNG in
    the same state as fresh enumeration would.
    """
    if arity > 2:
        candidates = _dedupe(candidates, interner)
    if cap is not None and len(candidates) > cap:
        sampler = rng if rng is not None else random.Random(0)
        candidates = sampler.sample(candidates, cap)
        candidates.sort(key=lambda candidate: candidate.parts)
    return candidates


def _extend_group(
    parts: List[Annotation],
    proposal: MergeProposal,
    pool: Sequence[Annotation],
    constraint: MergeConstraint,
    arity: int,
) -> Tuple[List[Annotation], MergeProposal]:
    """Greedily grow a pair to ``arity`` members under the constraint."""
    chosen = {part.name for part in parts}
    representative = virtual_summary(parts, proposal)
    for annotation in pool:
        if len(parts) >= arity:
            break
        if annotation.name in chosen:
            continue
        extended = constraint.propose(representative, annotation)
        if extended is None:
            continue
        parts = parts + [annotation]
        chosen.add(annotation.name)
        proposal = extended
        representative = virtual_summary(parts, proposal)
    return parts, proposal


def _dedupe(
    candidates: List[Candidate], interner: Optional[AnnotationInterner] = None
) -> List[Candidate]:
    """Drop duplicate part sets; emit survivors in name-sorted order.

    With an interner, identity is keyed on sorted interned-id tuples
    (int hashing instead of re-hashing the name strings) while the
    output is still ordered by the name-space key -- candidate order
    must not depend on interning order, or the scoring modes of the
    differential suite would disagree.
    """
    if interner is None:
        seen: Dict[Tuple[str, ...], Candidate] = {}
        for candidate in candidates:
            key = tuple(sorted(candidate.parts))
            seen.setdefault(key, candidate)
        return [seen[key] for key in sorted(seen)]
    # Non-inserting lookups only: this also runs on the pool's
    # invalidate-on-failure fallback, and a failure path must not grow
    # the session interner (the annotation universe is no longer static
    # once streaming ingest lands mid-run).  Names the interner has not
    # seen yet key on themselves; the (tag, key) pairs keep int ids and
    # name strings sortable together.
    by_ids: Dict[Tuple, Tuple[Tuple[str, ...], Candidate]] = {}
    for candidate in candidates:
        id_key = tuple(
            sorted(
                (0, interned) if interned is not None else (1, name)
                for name in candidate.parts
                for interned in (interner.lookup(name),)
            )
        )
        if id_key not in by_ids:
            by_ids[id_key] = (tuple(sorted(candidate.parts)), candidate)
    return [
        candidate
        for _, candidate in sorted(by_ids.values(), key=lambda entry: entry[0])
    ]
