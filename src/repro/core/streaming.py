"""Streaming provenance ingest: append-only deltas and summary repair.

Provenance rarely arrives all at once -- new ratings stream in, new
users register, a user already summarized turns out to be a spammer.
This module gives those events a first-class shape:

* :class:`ProvenanceDelta` -- an *append-only* extension of a
  provenance instance: new annotations, new monomials (terms), new
  valuations for the class, and *extensions* of existing valuations
  (their false set grows -- e.g. a spam flag on an already-known
  user).  Deltas never remove or rewrite existing provenance; that
  invariant is what makes the interned IR arena growable in place
  (:meth:`~repro.provenance.ir.TermStore.append_delta`) and the
  summary-repair machinery sound.
* :func:`apply_delta` -- extends a :class:`~repro.provenance
  .tensor_sum.TensorSum` with the delta's terms (congruent merging
  applies exactly as a from-scratch construction would).
* :func:`extend_valuations` -- applies a delta's valuation extensions
  to a valuation class, preserving positions, labels and weights (the
  prefix-stability the equivalence-partition repair keys on).
* :class:`SummaryRepairState` -- what one summarization run hands the
  next so it can *repair* rather than recompute: the equivalence
  partition (per-annotation truth signatures), the step-0 candidate
  pool, and the scoring engine's step-0 measurement checkpoint.

The repair contract, proven by ``tests/core/test_streaming_repair.py``
over a differential grid: a repaired run's output -- expression,
mapping, step records, distances -- is *bit-identical* to a
from-scratch run over the post-delta instance (with aligned summary
naming).  Repair only skips re-deriving state the delta provably does
not touch; every skipped derivation is replayed exactly by
construction (see docs/ALGORITHM.md on Prop 4.2.1 locality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..provenance.annotations import Annotation
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation import Valuation
from ..provenance.valuation_classes import ExplicitValuations, ValuationClass
from .equivalence import EquivalencePartition


@dataclass(frozen=True)
class ProvenanceDelta:
    """One append-only batch of new provenance.

    Parameters
    ----------
    annotations:
        Fresh annotations (new users, movies, ...).  Must not collide
        with existing names -- deltas append, they never redefine.
    terms:
        Fresh provenance terms referencing existing and/or delta
        annotations.
    valuations:
        Fresh valuations appended to the valuation class (classes
        derived from the universe, e.g. Cancel-Single-Annotation,
        grow implicitly with ``annotations`` instead).
    extend_valuations:
        Valuation label → annotation names newly added to that
        valuation's *false* set.  This is the only way a delta touches
        existing state, and it is truth-monotone per valuation: names
        flip true → false, never back.
    """

    annotations: Tuple[Annotation, ...] = ()
    terms: Tuple[Term, ...] = ()
    valuations: Tuple[Valuation, ...] = ()
    extend_valuations: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "annotations", tuple(self.annotations))
        object.__setattr__(self, "terms", tuple(self.terms))
        object.__setattr__(self, "valuations", tuple(self.valuations))
        object.__setattr__(
            self,
            "extend_valuations",
            {
                label: tuple(names)
                for label, names in dict(self.extend_valuations).items()
            },
        )

    def is_empty(self) -> bool:
        return not (
            self.annotations
            or self.terms
            or self.valuations
            or self.extend_valuations
        )

    def flipped(self) -> Dict[str, Tuple[str, ...]]:
        """Valuation label → names whose truth the delta flipped."""
        return dict(self.extend_valuations)

    def describe(self) -> str:
        return (
            f"delta(+{len(self.annotations)} annotations, "
            f"+{len(self.terms)} terms, +{len(self.valuations)} valuations, "
            f"{len(self.extend_valuations)} extended)"
        )


def apply_delta(expression: TensorSum, delta: ProvenanceDelta) -> TensorSum:
    """The expression extended with the delta's terms.

    Existing terms keep their order (congruent merging is
    first-occurrence-stable), so any state keyed on the surviving
    terms -- scorer indexes, candidate neighborhoods -- diffs cleanly
    against the extended expression.
    """
    if not delta.terms:
        return expression
    return TensorSum(tuple(expression.terms) + delta.terms, expression.monoid)


def extend_valuations(
    valuations: ValuationClass, delta: ProvenanceDelta
) -> ValuationClass:
    """Apply the delta's valuation changes to a class.

    Extended valuations are replaced *in place* (same position, same
    label, same weight, false set grown via
    :meth:`~repro.provenance.valuation.Valuation.cancelling`); fresh
    valuations are appended.  The old class's labels therefore stay a
    prefix of the new class's -- the invariant
    :meth:`EquivalencePartition.repair` requires.  Unknown labels in
    ``extend_valuations`` raise ``KeyError`` (a delta must not
    silently miss its target).
    """
    extensions = dict(delta.extend_valuations)
    if not extensions and not delta.valuations:
        return valuations
    rebuilt: List[Valuation] = []
    for valuation in valuations:
        extra = extensions.pop(str(valuation), None)
        rebuilt.append(
            valuation.cancelling(extra) if extra else valuation
        )
    if extensions:
        raise KeyError(
            f"delta extends unknown valuation labels: {sorted(extensions)}"
        )
    rebuilt.extend(delta.valuations)
    extended = ExplicitValuations(rebuilt)
    extended.name = valuations.name
    return extended


@dataclass
class SummaryRepairState:
    """What a summarization run leaves behind for the next ingest.

    All three components are *derived* state -- dropping any of them
    (or the whole object) only costs recomputation, never correctness:

    * ``partition`` -- per-annotation truth signatures over this run's
      original annotations and valuations
      (:class:`~repro.core.equivalence.EquivalencePartition`);
    * ``expression`` -- the step-0 expression (post equivalence
      grouping) the pool and checkpoint were derived against;
    * ``pool_raw`` -- the raw step-0 candidate list in fresh-generation
      order (``None`` when the run used no pool or never reached the
      greedy loop);
    * ``checkpoint`` -- the scoring engine's step-0 measurement
      snapshot (``None`` when the step's path cannot seed repair:
      lazy selection, sampled kernel, naive fallback).

    The state holds live in-memory objects and is intentionally not
    serialized; a resumed session rebuilds it on its first run.
    """

    partition: Optional[EquivalencePartition] = None
    expression: Optional[object] = None
    pool_raw: Optional[list] = None
    checkpoint: Optional[dict] = None
