"""Liveness payload for ``GET /healthz`` (and anything else that asks).

Deliberately cheap and lock-free: a health probe must answer even when
a long summarization holds the session lock, so the payload reads only
process-global state (uptime, pid, observability switches) plus
whatever harmless extras the caller passes in.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Mapping, Optional

from . import metrics, resources, tracing

#: Process start reference (monotonic, set at first import).
_STARTED = time.monotonic()


def uptime_seconds() -> float:
    """Seconds since this module was first imported."""
    return time.monotonic() - _STARTED


def _active_kernel() -> str:
    """The active scoring kernel backend name.

    Imported lazily: ``repro.core`` depends on this package, so the
    reverse import must not run at module-initialization time.
    """
    try:
        from ..core import kernels

        return kernels.active_backend()
    except Exception:
        return "unknown"


def health_payload(extra: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
    """The ``/healthz`` body: static process facts plus caller extras."""
    payload: Dict[str, object] = {
        "status": "ok",
        "uptime_seconds": round(uptime_seconds(), 3),
        "pid": os.getpid(),
        "python": sys.version.split()[0],
        "metrics_enabled": metrics.ENABLED,
        "tracing_enabled": tracing.is_enabled(),
        "kernel": _active_kernel(),
        "metric_families": len(metrics.REGISTRY.names()),
        # Serving-tier aggregates: how many sessions this process holds
        # and how much arena growth they are (jointly) responsible for.
        "active_sessions": resources.REGISTRY.count(),
        "sessions_arena_bytes": resources.REGISTRY.total_arena_bytes(),
    }
    if extra:
        payload.update(extra)
    return payload
