"""Continuous sampling profiler (stdlib-only, ``REPRO_PROFILE``).

A production serving tier needs to answer "*where* is the latency
budget going" without redeploying instrumented code.  This module
provides a wall-clock sampling profiler in the same zero-cost-when-
disabled style as the rest of :mod:`repro.observability`: a background
daemon thread wakes ``hz`` times per second, walks every live thread's
frame stack via :func:`sys._current_frames`, and aggregates the stacks
into a collapsed-stack table (the input format of Brendan Gregg's
``flamegraph.pl``) plus a nested flamegraph JSON tree.

Span attribution: each sample also records the innermost open tracing
span of the sampled thread (:func:`repro.observability.tracing
.active_span_name`), so a profile taken while tracing is enabled says
not just "``fast_distance`` burned 40% of wall clock" but "…and 90% of
that was under ``score_candidates``".  With tracing disabled, samples
are simply unattributed -- the profiler never turns tracing on.

Surfaces:

* ``repro summarize --profile FILE`` profiles one run and writes the
  JSON payload;
* ``GET /debug/profile`` on the PROX server returns the continuous
  profiler's snapshot when ``REPRO_PROFILE=on`` (or ``=<hz>``), and
  otherwise takes a bounded on-demand burst sample
  (``?seconds=0.5&hz=97``) so operators can profile a live process
  that was started without the flag.

Zero-cost contract: nothing here runs unless a profiler is explicitly
started.  ``REPRO_PROFILE`` is **off by default**; when off, no thread
is spawned and no call site pays anything.  Sampling itself never
mutates program state, so summarizer output is byte-identical with the
profiler running (asserted by ``tests/observability
/test_instrumentation_off.py``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from . import tracing as _tracing

_OFF_WORDS = frozenset({"", "0", "off", "false", "no", "disabled"})
_ON_WORDS = frozenset({"1", "on", "true", "yes", "enabled"})

#: Default sampling rate.  A prime frequency avoids phase-locking with
#: periodic work (timers, GC cycles) that round rates alias against.
DEFAULT_HZ = 97.0

#: Hard bounds for on-demand burst sampling via ``GET /debug/profile``.
MAX_BURST_SECONDS = 5.0
MAX_HZ = 1000.0


def configured_hz(env: Optional[str] = None) -> Optional[float]:
    """The sampling rate ``REPRO_PROFILE`` asks for, or ``None`` if off.

    ``off``/``0``/unset disable; ``on``/``true`` select
    :data:`DEFAULT_HZ`; a number selects that rate (clamped to
    ``(0, MAX_HZ]``).
    """
    if env is None:
        env = os.environ.get("REPRO_PROFILE", "")
    word = env.strip().lower()
    if word in _OFF_WORDS:
        return None
    if word in _ON_WORDS:
        return DEFAULT_HZ
    try:
        hz = float(word)
    except ValueError:
        raise ValueError(
            f"REPRO_PROFILE must be 'on', 'off' or a sampling rate in Hz, "
            f"got {env!r}"
        ) from None
    if hz <= 0:
        return None
    return min(hz, MAX_HZ)


def enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for continuous profiling."""
    return configured_hz() is not None


def _frame_label(frame) -> str:
    """One collapsed-stack frame: ``module:function``."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class Profiler:
    """A wall-clock sampling profiler over every thread of the process.

    Start/stop it around a region (or leave it running for the life of
    a server); :meth:`snapshot` is safe to call at any time, including
    while sampling continues.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stack_depth: int = 64,
        max_unique_stacks: int = 4096,
    ):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = min(float(hz), MAX_HZ)
        self.max_stack_depth = int(max_stack_depth)
        self.max_unique_stacks = int(max_unique_stacks)
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._span_counts: Dict[str, int] = {}
        self._samples = 0
        self._truncated = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._active_seconds = 0.0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "Profiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "Profiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5)
        self._thread = None
        if self._started_at is not None:
            self._active_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def sample_once(self) -> None:
        """Take one sample of every live thread (exposed for tests)."""
        my_ident = threading.get_ident()
        frames = sys._current_frames()
        _tracing.prune_active_stacks(frames.keys())
        rows: List[Tuple[Tuple[str, ...], Optional[str]]] = []
        for thread_id, frame in frames.items():
            if thread_id == my_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_stack_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            rows.append((tuple(stack), _tracing.active_span_name(thread_id)))
        del frames  # drop frame references promptly
        with self._lock:
            for stack, span_name in rows:
                if (
                    stack not in self._counts
                    and len(self._counts) >= self.max_unique_stacks
                ):
                    self._truncated += 1
                    stack = ("<overflow>",)
                self._counts[stack] = self._counts.get(stack, 0) + 1
                if span_name is not None:
                    self._span_counts[span_name] = (
                        self._span_counts.get(span_name, 0) + 1
                    )
                self._samples += 1

    # -- reporting ---------------------------------------------------------

    def _duration(self) -> float:
        active = self._active_seconds
        if self._started_at is not None:
            active += time.perf_counter() - self._started_at
        return active

    def collapsed(self) -> Dict[str, int]:
        """``"frame;frame;frame" -> samples`` (flamegraph.pl input)."""
        with self._lock:
            return {
                ";".join(stack): count
                for stack, count in sorted(self._counts.items())
            }

    def collapsed_text(self) -> str:
        """The collapsed table as newline-separated ``stack count`` rows."""
        return "\n".join(
            f"{stack} {count}" for stack, count in self.collapsed().items()
        )

    def flamegraph(self) -> Dict[str, object]:
        """A nested ``{name, value, children}`` tree (d3-flamegraph form).

        Every node's ``value`` is the total samples at or below it, so
        the tree renders directly as icicle/flame charts.
        """
        with self._lock:
            items = sorted(self._counts.items())
        root: Dict[str, object] = {"name": "root", "value": 0, "children": []}
        for stack, count in items:
            root["value"] += count
            node = root
            for frame in stack:
                children: List[Dict[str, object]] = node["children"]
                for child in children:
                    if child["name"] == frame:
                        node = child
                        break
                else:
                    child = {"name": frame, "value": 0, "children": []}
                    children.append(child)
                    node = child
                node["value"] += count
        return root

    def span_attribution(self) -> Dict[str, int]:
        """Samples per innermost open tracing span (may be empty)."""
        with self._lock:
            return dict(sorted(self._span_counts.items()))

    def snapshot(self) -> Dict[str, object]:
        """The JSON payload of ``--profile`` / ``GET /debug/profile``."""
        with self._lock:
            samples = self._samples
            truncated = self._truncated
            unique = len(self._counts)
        return {
            "hz": self.hz,
            "running": self.running,
            "duration_seconds": round(self._duration(), 6),
            "samples": samples,
            "unique_stacks": unique,
            "truncated_stacks": truncated,
            "collapsed": self.collapsed(),
            "flamegraph": self.flamegraph(),
            "spans": self.span_attribution(),
        }


#: The process-wide continuous profiler (``REPRO_PROFILE=on``); started
#: lazily by the first caller of :func:`ensure_global`.
_GLOBAL: Optional[Profiler] = None
_GLOBAL_LOCK = threading.Lock()


def ensure_global() -> Optional[Profiler]:
    """Start (once) and return the env-configured continuous profiler.

    Returns ``None`` -- and starts nothing -- when ``REPRO_PROFILE`` is
    off, preserving the zero-cost-when-disabled contract.
    """
    hz = configured_hz()
    if hz is None:
        return None
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = Profiler(hz=hz).start()
        return _GLOBAL


def global_profiler() -> Optional[Profiler]:
    """The running continuous profiler, if any (no side effects)."""
    return _GLOBAL


def burst_sample(seconds: float = 0.5, hz: float = DEFAULT_HZ) -> Dict[str, object]:
    """A bounded on-demand profile (the ``REPRO_PROFILE=off`` fallback).

    Samples every thread for ``seconds`` (clamped to
    :data:`MAX_BURST_SECONDS`) at ``hz`` and returns the snapshot.
    """
    seconds = max(0.0, min(float(seconds), MAX_BURST_SECONDS))
    profiler = Profiler(hz=hz)
    with profiler:
        time.sleep(seconds)
    payload = profiler.snapshot()
    payload["burst"] = True
    return payload
