"""Structured logging for the pipeline (stdlib ``logging``, key=value).

Every module logs through a child of the ``repro`` logger, configured
once with a ``key=value`` line formatter::

    ts=2026-08-06T12:00:00 level=INFO logger=repro.prox.server \
        http_request method=GET path=/metrics status=200 seconds=0.0012

Call sites embed their fields in the *message* with lazy ``%``
placeholders (``logger.info("http_request method=%s status=%d", m,
s)``) so a silenced level never pays for string formatting -- the
stdlib defers ``getMessage()`` until a handler accepts the record.

Knobs:

* ``REPRO_LOG_LEVEL`` -- ``debug`` / ``info`` / ``warning`` (default) /
  ``error`` / ``critical``; resolved once at first use.
* :func:`configure` -- explicit (re)configuration, e.g. for tests or
  the ``repro serve`` command.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO, Optional

#: Root of the package's logger hierarchy.
ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_configured = False


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... <message>`` one-line records."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        line = (
            f"ts={self.formatTime(record, '%Y-%m-%dT%H:%M:%S')} "
            f"level={record.levelname} logger={record.name} {message}"
        )
        if record.exc_info:
            exception = self.formatException(record.exc_info)
            line = f"{line} exception={json.dumps(exception)}"
        return line


def quote(value: object) -> str:
    """Render one field value; JSON-quotes anything with spaces/quotes."""
    text = str(value)
    if not text or any(ch in text for ch in ' "=\n\t'):
        return json.dumps(text, ensure_ascii=False)
    return text


def fields(**kw: object) -> str:
    """Render trailing ``key=value`` fields (non-hot-path convenience)."""
    return " ".join(f"{key}={quote(value)}" for key, value in kw.items())


def resolve_level(name: Optional[str] = None) -> int:
    """Numeric level for a name (falls back to ``REPRO_LOG_LEVEL``)."""
    if name is None:
        name = os.environ.get("REPRO_LOG_LEVEL", "warning")
    return _LEVELS.get(str(name).strip().lower(), logging.WARNING)


def configure(
    level: Optional[str] = None,
    stream: Optional[IO[str]] = None,
    force: bool = False,
) -> logging.Logger:
    """Attach the key=value handler to the ``repro`` root logger.

    Idempotent: later calls only adjust the level unless ``force`` is
    given (which replaces the handler -- used by tests to capture a
    stream).
    """
    global _configured
    root = logging.getLogger(ROOT_NAME)
    if not _configured or force:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        root.handlers[:] = [handler]
        root.propagate = False
        _configured = True
        root.setLevel(resolve_level(level))
    elif level is not None:
        root.setLevel(resolve_level(level))
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A configured logger under the ``repro`` hierarchy."""
    configure()
    return logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)
