"""Latency SLO targets and tail-sampled slow-request retention.

The PROX premise is trading accuracy for *interactive* latency, so the
serving tier declares its latency budget explicitly and observes it
end to end:

* :class:`SloPolicy` -- per-endpoint latency targets (seconds) with a
  default for unlisted routes.  The PROX server checks every request
  against its target and counts violations in
  ``prox_slo_breaches_total{scope=...}``; the summarizer does the same
  for whole runs when ``SummarizationConfig.slo_seconds`` is set
  (``scope="summarize_run"``).
* :class:`SlowRequestLog` -- a bounded ring buffer that retains detail
  only for requests that breached their target (tail sampling: the
  interesting traces are the slow ones, and the ring bounds memory no
  matter how many there are).  When tracing is enabled each entry
  carries the request's full span tree, so ``GET /debug/slow_requests``
  answers "*why* was this request slow" -- including, via the tracing
  layer's error attributes, "because it raised".

Zero-cost contract: breach *counting* rides the existing
``REPRO_METRICS`` guard; span *retention* only happens when
``REPRO_TRACE`` is on.  The ring itself stores plain dicts and is
bounded by ``ring_size``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from . import metrics as _metrics

#: Default per-endpoint latency targets, in seconds.  Summarization is
#: the expensive interactive operation (§4-5 trade accuracy to keep it
#: tolerable); views and probes must stay snappy.
DEFAULT_TARGETS: Dict[str, float] = {
    "/summarize": 2.0,
    "/ingest": 0.5,
    "/evaluate": 1.0,
    "/select": 0.5,
    "/titles": 0.25,
    "/summary/expression": 0.25,
    "/summary/groups": 0.5,
    "/healthz": 0.1,
    "/metrics": 0.25,
}

SLO_BREACHES = _metrics.counter(
    "prox_slo_breaches_total",
    "Requests (or summarization runs) that exceeded their latency SLO.",
    labelnames=("scope",),
)


@dataclass(frozen=True)
class SloPolicy:
    """Declared latency targets for the serving tier.

    ``targets`` maps route -> seconds; ``default_seconds`` covers
    unlisted routes.  A request slower than its target is a breach; a
    breach is retained in the slow-request ring (with its span tree if
    tracing is on).
    """

    targets: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TARGETS)
    )
    default_seconds: float = 1.0
    ring_size: int = 64

    def __post_init__(self) -> None:
        if self.default_seconds <= 0:
            raise ValueError("default_seconds must be positive")
        for path, seconds in self.targets.items():
            if seconds <= 0:
                raise ValueError(f"SLO target for {path!r} must be positive")
        if self.ring_size < 1:
            raise ValueError("ring_size must be at least 1")

    def target(self, path: str) -> float:
        return self.targets.get(path, self.default_seconds)

    def describe(self) -> Dict[str, object]:
        return {
            "targets_seconds": dict(sorted(self.targets.items())),
            "default_seconds": self.default_seconds,
            "ring_size": self.ring_size,
        }


def record_breach(scope: str) -> None:
    """Count one SLO breach (``REPRO_METRICS``-guarded)."""
    if _metrics.ENABLED:
        SLO_BREACHES.inc(scope=scope)


class SlowRequestLog:
    """Bounded, thread-safe ring of tail-sampled slow requests."""

    def __init__(self, ring_size: int = 64):
        self._ring: Deque[Dict[str, object]] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._total = 0

    def record(
        self,
        method: str,
        path: str,
        status: int,
        seconds: float,
        target_seconds: float,
        trace: Optional[Dict[str, object]] = None,
    ) -> None:
        entry: Dict[str, object] = {
            "method": method,
            "path": path,
            "status": status,
            "seconds": round(seconds, 6),
            "target_seconds": target_seconds,
            "recorded_at": time.time(),
        }
        if trace is not None:
            entry["trace"] = trace
        with self._lock:
            self._ring.append(entry)
            self._total += 1

    def snapshot(self) -> List[Dict[str, object]]:
        """Retained entries, most recent last."""
        with self._lock:
            return list(self._ring)

    @property
    def total_recorded(self) -> int:
        """Breaches seen over the process lifetime (ring may have fewer)."""
        with self._lock:
            return self._total

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
