"""Hierarchical tracing spans with monotonic timings.

One summarization run produces a span tree::

    summarize
    ├── step[1]
    │   └── score_candidates   (path, workers, n_candidates, seconds)
    ├── step[2]
    │   └── score_candidates
    └── ...

Spans are context managers; entering pushes onto a thread-local stack
(so concurrent server requests trace independently), exiting records
the monotonic duration and attaches the span to its parent.  When a
*root* span closes, the finished tree is parked where
:func:`take_trace` can collect it -- the ``repro summarize --trace``
CLI flag dumps it as JSON.

Zero-cost contract: tracing is **off by default** (enable with
``REPRO_TRACE=on`` or :func:`set_enabled`).  While disabled,
:func:`span` returns the shared :data:`NULL_SPAN` before touching its
format arguments, so a hot call site writes
``span("step[%d]", k)`` -- the ``%`` formatting only happens when a
trace is actually being recorded, and attribute writes via
:meth:`Span.set` degrade to no-op method calls.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

_ON_WORDS = frozenset({"1", "on", "true", "yes", "enabled"})

_enabled: bool = os.environ.get("REPRO_TRACE", "off").strip().lower() in _ON_WORDS

_local = threading.local()


def is_enabled() -> bool:
    """Whether spans are currently being recorded (this process)."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn span recording on or off; clears nothing already recorded."""
    global _enabled
    _enabled = bool(flag)


#: Per-thread span stacks, keyed by thread ident, registered the first
#: time a thread opens a span.  The sampling profiler reads a *foreign*
#: thread's innermost span name here to attribute wall-clock samples to
#: spans (:func:`active_span_name`); the lists are mutated in place by
#: their owning threads, so readers only ever see a consistent snapshot
#: under the GIL.  One dict write per thread lifetime -- negligible.
_ACTIVE_STACKS: Dict[int, List["Span"]] = {}


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
        _ACTIVE_STACKS[threading.get_ident()] = stack
    return stack


def active_span_name(thread_id: int) -> Optional[str]:
    """The innermost open span name of *any* thread (profiler hook).

    Best-effort and lock-free: the owning thread may pop concurrently,
    in which case the sample is simply unattributed.
    """
    stack = _ACTIVE_STACKS.get(thread_id)
    if not stack:
        return None
    try:
        return stack[-1].name
    except IndexError:  # pragma: no cover - owner popped mid-read
        return None


def prune_active_stacks(live_thread_ids) -> None:
    """Drop stack registrations for threads no longer alive."""
    live = set(live_thread_ids)
    for thread_id in list(_ACTIVE_STACKS):
        if thread_id not in live:
            _ACTIVE_STACKS.pop(thread_id, None)


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attributes", "children", "duration", "_start")

    def __init__(self, name: str):
        self.name = name
        self.attributes: Dict[str, object] = {}
        self.children: List["Span"] = []
        self.duration: float = 0.0
        self._start: float = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (overwrites)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        _stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start
        if exc_type is not None:
            # Errored spans carry the exception so slow-request dumps
            # distinguish "slow because it failed" from plain latency.
            self.attributes["error"] = True
            self.attributes["error_type"] = exc_type.__name__
            self.attributes["error_message"] = str(exc)
        stack = _stack()
        # Tolerate enable/disable mid-span: only pop if we are on top.
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            _local.last_trace = self
        return False

    def to_dict(self, base: Optional[float] = None) -> Dict[str, object]:
        """JSON-ready form; offsets are relative to the tree's root."""
        if base is None:
            base = self._start
        node: Dict[str, object] = {
            "name": self.name,
            "offset_seconds": max(0.0, self._start - base),
            "duration_seconds": self.duration,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["children"] = [child.to_dict(base) for child in self.children]
        return node

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, *fmt_args: object, **attributes: object):
    """Open a span named ``name`` (``name % fmt_args`` when args given).

    Hot call sites pass lazy ``%`` arguments instead of pre-formatted
    strings so a disabled tracer never pays for string interpolation.
    """
    if not _enabled:
        return NULL_SPAN
    if fmt_args:
        name = name % fmt_args
    opened = Span(name)
    if attributes:
        opened.attributes.update(attributes)
    return opened


def current() -> Optional[Span]:
    """The innermost open span of this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def last_trace() -> Optional[Span]:
    """The most recent completed root span of this thread (kept)."""
    return getattr(_local, "last_trace", None)


def take_trace() -> Optional[Span]:
    """The most recent completed root span of this thread (cleared)."""
    trace = getattr(_local, "last_trace", None)
    _local.last_trace = None
    return trace
