"""End-to-end observability for the PROX pipeline.

Three independent, dependency-free facilities (DESIGN.md
"Observability"):

* :mod:`repro.observability.metrics` -- counters, gauges and
  fixed-bucket histograms in a process-wide registry, rendered in
  Prometheus text format by ``GET /metrics`` on the PROX server.
  On by default; ``REPRO_METRICS=off`` disables.
* :mod:`repro.observability.tracing` -- hierarchical spans with
  monotonic timings (``summarize > step[k] > score_candidates``),
  dumped as JSON via ``repro summarize --trace``.  Off by default;
  ``REPRO_TRACE=on`` enables.
* :mod:`repro.observability.log` -- structured key=value logging on
  the stdlib ``logging`` hierarchy under ``repro.*``;
  ``REPRO_LOG_LEVEL`` sets the level (default ``warning``).

Serving-tier SLO observability layers on top (docs/OPERATIONS.md):

* :mod:`repro.observability.profiling` -- stdlib sampling profiler
  (``REPRO_PROFILE``) producing collapsed stacks / flamegraph JSON,
  with samples attributed to the active tracing span; exposed by
  ``repro summarize --profile`` and ``GET /debug/profile``.
* :mod:`repro.observability.resources` -- per-session resource
  accounting (arena bytes, interned annotations, pool size, work
  counters) behind ``GET /sessions/<id>/stats``, labeled session
  gauges and the eviction advisor.
* :mod:`repro.observability.slo` -- declared per-endpoint latency
  targets, the ``prox_slo_breaches_total`` counter and the bounded
  tail-sampled slow-request ring behind ``GET /debug/slow_requests``.

All instrumentation is zero-cost when disabled: call sites guard on
module-level flags and never pre-format strings for a switched-off
sink.  :mod:`repro.observability.health` builds the lock-free
``GET /healthz`` payload.
"""

from . import health, log, metrics, profiling, resources, slo, tracing
from .health import health_payload, uptime_seconds
from .profiling import Profiler
from .resources import ResourceRegistry, SessionAccount
from .slo import SloPolicy, SlowRequestLog
from .log import KeyValueFormatter, configure as configure_logging, fields, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from .tracing import NULL_SPAN, Span, current, is_enabled, last_trace, set_enabled, span, take_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "Span",
    "configure_logging",
    "counter",
    "current",
    "fields",
    "gauge",
    "get_logger",
    "health",
    "health_payload",
    "histogram",
    "is_enabled",
    "last_trace",
    "log",
    "metrics",
    "profiling",
    "Profiler",
    "resources",
    "ResourceRegistry",
    "SessionAccount",
    "set_enabled",
    "slo",
    "SloPolicy",
    "SlowRequestLog",
    "span",
    "take_trace",
    "tracing",
    "uptime_seconds",
]
