"""End-to-end observability for the PROX pipeline.

Three independent, dependency-free facilities (DESIGN.md
"Observability"):

* :mod:`repro.observability.metrics` -- counters, gauges and
  fixed-bucket histograms in a process-wide registry, rendered in
  Prometheus text format by ``GET /metrics`` on the PROX server.
  On by default; ``REPRO_METRICS=off`` disables.
* :mod:`repro.observability.tracing` -- hierarchical spans with
  monotonic timings (``summarize > step[k] > score_candidates``),
  dumped as JSON via ``repro summarize --trace``.  Off by default;
  ``REPRO_TRACE=on`` enables.
* :mod:`repro.observability.log` -- structured key=value logging on
  the stdlib ``logging`` hierarchy under ``repro.*``;
  ``REPRO_LOG_LEVEL`` sets the level (default ``warning``).

All instrumentation is zero-cost when disabled: call sites guard on
module-level flags and never pre-format strings for a switched-off
sink.  :mod:`repro.observability.health` builds the lock-free
``GET /healthz`` payload.
"""

from . import health, log, metrics, tracing
from .health import health_payload, uptime_seconds
from .log import KeyValueFormatter, configure as configure_logging, fields, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from .tracing import NULL_SPAN, Span, current, is_enabled, last_trace, set_enabled, span, take_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "Span",
    "configure_logging",
    "counter",
    "current",
    "fields",
    "gauge",
    "get_logger",
    "health",
    "health_payload",
    "histogram",
    "is_enabled",
    "last_trace",
    "log",
    "metrics",
    "set_enabled",
    "span",
    "take_trace",
    "tracing",
    "uptime_seconds",
]
