"""Dependency-free metrics registry with Prometheus text exposition.

The reproduction's north star is a production service, and a service
that cannot be scraped cannot be operated.  This module provides the
three Prometheus metric kinds the pipeline needs -- :class:`Counter`,
:class:`Gauge` and :class:`Histogram` (fixed buckets) -- behind a
thread-safe :class:`MetricsRegistry`, rendered in the Prometheus text
exposition format (version 0.0.4) by :meth:`MetricsRegistry.render`.
No third-party client library is required (or allowed -- the container
ships only the stdlib toolchain).

Hot-path contract: instrumented call sites guard with the module-level
:data:`ENABLED` flag (``if _metrics.ENABLED: counter.inc()``), so a
disabled build pays one attribute read per site and nothing else.  The
flag defaults to on (metric updates are dict operations, far cheaper
than the expression evaluations they count) and can be switched off
with ``REPRO_METRICS=off`` or :func:`set_enabled`.

Module-level convenience constructors (:func:`counter`, :func:`gauge`,
:func:`histogram`) register into the process-wide :data:`REGISTRY`
that ``GET /metrics`` on the PROX server exposes; they are idempotent
so instrumented modules can be re-imported freely.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Prometheus exposition-spec grammars.  The former check
#: (``name.isalnum()`` modulo ``_``/``:``) accepted Unicode letters and
#: names starting with a digit, and label names were never validated at
#: all -- both render scrapes the Prometheus text parser rejects.
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds -- sized for the pipeline's
#: step/scoring/request latencies (sub-millisecond to tens of seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_OFF_WORDS = frozenset({"0", "off", "false", "no", "disabled"})

#: Read by instrumented call sites as ``_metrics.ENABLED`` (always via
#: the module attribute, never ``from ... import ENABLED`` -- the flag
#: is mutable).  Controlled by ``REPRO_METRICS`` and :func:`set_enabled`.
ENABLED: bool = os.environ.get("REPRO_METRICS", "on").strip().lower() not in _OFF_WORDS


def set_enabled(flag: bool) -> None:
    """Switch metric collection on or off process-wide."""
    global ENABLED
    ENABLED = bool(flag)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if value == as_int and abs(value) < 1e15:
        return str(as_int)
    return repr(float(value))


def _label_suffix(labelnames: Sequence[str], labelvalues: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared machinery: name validation, label keys, locking."""

    kind = ""

    #: Label names the exposition format claims for itself on this kind.
    reserved_labels: frozenset = frozenset()

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        if not _METRIC_NAME.match(name or ""):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
            if label in self.reserved_labels:
                raise ValueError(
                    f"label name {label!r} is reserved on {self.kind} metrics"
                )
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if not self.labelnames:
            if labels:
                raise ValueError(f"{self.name} takes no labels, got {sorted(labels)}")
            return ()
        try:
            return tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as missing:
            raise ValueError(
                f"{self.name} requires labels {self.labelnames}, missing {missing}"
            ) from None

    def samples(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def remove(self, **labels: object) -> None:
        """Drop one labeled series (e.g. an evicted session's gauges).

        Removing an absent series is a no-op; the family itself stays
        registered.
        """
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)

    def expose(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self.samples())
        return lines


class Counter(_Metric):
    """Monotonically increasing count (renders 0 when never touched)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_label_suffix(self.labelnames, key)} {_format_value(value)}"
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that can go up and down (workers in flight, last variance)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_label_suffix(self.labelnames, key)} {_format_value(value)}"
            for key, value in items
        ]


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative ``_bucket`` / ``_sum`` / ``_count``)."""

    kind = "histogram"
    #: ``le`` is the bucket-bound label; a user label of the same name
    #: would emit two ``le=`` pairs on every ``_bucket`` sample.
    reserved_labels = frozenset({"le"})

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b != b for b in bounds):  # NaN guard
            raise ValueError("histogram bounds must be finite numbers")
        self.buckets = bounds
        #: key -> (per-bucket counts ..., +Inf count, sum)
        self._values: Dict[Tuple[str, ...], List[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            cells = self._values.get(key)
            if cells is None:
                cells = self._values[key] = [0.0] * (len(self.buckets) + 2)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    cells[index] += 1.0
                    break
            else:
                cells[len(self.buckets)] += 1.0
            cells[-1] += value

    def count(self, **labels: object) -> int:
        cells = self._values.get(self._key(labels))
        return int(sum(cells[:-1])) if cells else 0

    def sum(self, **labels: object) -> float:
        cells = self._values.get(self._key(labels))
        return cells[-1] if cells else 0.0

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted((key, list(cells)) for key, cells in self._values.items())
        if not items and not self.labelnames:
            items = [((), [0.0] * (len(self.buckets) + 2))]
        lines: List[str] = []
        bucket_names = self.labelnames + ("le",)
        for key, cells in items:
            cumulative = 0.0
            for bound, count in zip(self.buckets, cells):
                cumulative += count
                suffix = _label_suffix(bucket_names, key + (_format_value(bound),))
                lines.append(f"{self.name}_bucket{suffix} {_format_value(cumulative)}")
            cumulative += cells[len(self.buckets)]
            suffix = _label_suffix(bucket_names, key + ("+Inf",))
            lines.append(f"{self.name}_bucket{suffix} {_format_value(cumulative)}")
            plain = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(cells[-1])}")
            lines.append(f"{self.name}_count{plain} {_format_value(cumulative)}")
        return lines


class MetricsRegistry:
    """Named metric families, rendered together for one scrape."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _obtain(self, cls, name: str, help: str, labelnames: Sequence[str], **extra):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"type or label set"
                    )
                return existing
            metric = cls(name, help, labelnames, **extra)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._obtain(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._obtain(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._obtain(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every family (test isolation; families stay registered)."""
        for metric in self._metrics.values():
            metric.reset()

    def render(self) -> str:
        """One scrape: every family in registration order, trailing newline."""
        lines: List[str] = []
        with self._lock:
            families = list(self._metrics.values())
        for metric in families:
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide registry that ``GET /metrics`` exposes.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str,
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    return REGISTRY.histogram(name, help, labelnames, buckets=buckets)
