"""Per-session resource accounting and the eviction advisor.

Roadmap item 1 shards sessions across workers and sheds load under
memory pressure; both decisions need to know *which session holds
what*.  This module keeps one :class:`SessionAccount` per live
:class:`~repro.prox.session.ProxSession` in a process-wide
:class:`ResourceRegistry`:

* **retained memory** -- arena bytes attributed to the session (the
  growth of the process :class:`~repro.provenance.ir.TermStore` during
  this session's summarize/ingest calls), interned-annotation count
  and carried candidate-pool size;
* **work counters** -- summarize runs and their cumulative seconds,
  ingested deltas, repair seeded/invalidated totals;
* **freshness** -- monotonic created/last-active stamps, so idle
  sessions rank first for eviction.

Every account is exported as labeled gauges
(``prox_session_arena_bytes{session=...}`` et al.) behind the usual
``REPRO_METRICS`` guard, and as JSON via ``GET /sessions`` and
``GET /sessions/<id>/stats`` on the PROX server.  The registry itself
is always on: it is the data the serving API returns, not optional
instrumentation, and its cost is a handful of attribute writes per
HTTP request -- never per candidate or per term.

The **eviction advisor** (:meth:`ResourceRegistry.eviction_ranking`)
ranks sessions by retained bytes inflated by idleness::

    score = retained_bytes * (1 + idle_seconds / IDLE_HALF_LIFE)

so under memory pressure an operator (or an autoscaler watching
``/metrics``) sheds the coldest-heaviest session first.  The ranking
is advice -- nothing here terminates sessions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import metrics as _metrics

#: Idle seconds that double a session's eviction score.
IDLE_HALF_LIFE_SECONDS = 300.0

#: Rough retained-bytes cost of one interned annotation (id slot,
#: string, reverse-map entry) and one carried pool candidate (tuple,
#: measurement floats) -- used only for ranking, never reported as
#: exact bytes.
_INTERNED_COST = 64
_POOL_ENTRY_COST = 120

_SESSIONS_ACTIVE = _metrics.gauge(
    "prox_sessions_active",
    "Live PROX sessions registered in this process.",
)
_SESSION_ARENA = _metrics.gauge(
    "prox_session_arena_bytes",
    "Term-arena growth attributed to each live session.",
    labelnames=("session",),
)
_SESSION_INTERNED = _metrics.gauge(
    "prox_session_interned_annotations",
    "Interned annotation ids held by each live session.",
    labelnames=("session",),
)
_SESSION_POOL = _metrics.gauge(
    "prox_session_pool_candidates",
    "Carried candidate-pool entries held by each live session.",
    labelnames=("session",),
)
_SESSION_SECONDS = _metrics.gauge(
    "prox_session_summarize_seconds_total",
    "Cumulative summarization seconds spent by each live session.",
    labelnames=("session",),
)


@dataclass
class SessionAccount:
    """Resource and work totals of one live session."""

    session_id: str
    created_at: float = field(default_factory=time.monotonic)
    last_active: float = field(default_factory=time.monotonic)
    summarize_runs: int = 0
    summarize_seconds: float = 0.0
    repaired_runs: int = 0
    repair_seeded: int = 0
    repair_invalidated: int = 0
    ingested_deltas: int = 0
    arena_bytes: int = 0
    interned_annotations: int = 0
    pool_candidates: int = 0
    selected_size: int = 0
    summary_size: int = 0

    # -- hooks called by ProxSession --------------------------------------

    def touch(self) -> None:
        self.last_active = time.monotonic()

    def record_select(self, selected_size: int) -> None:
        self.selected_size = int(selected_size)
        self.touch()
        self._publish()

    def record_ingest(self, arena_growth: int, selected_size: int) -> None:
        self.ingested_deltas += 1
        self.arena_bytes += max(0, int(arena_growth))
        self.selected_size = int(selected_size)
        self.touch()
        self._publish()

    def record_summarize(
        self,
        seconds: float,
        arena_growth: int,
        interned_annotations: int,
        pool_candidates: int,
        summary_size: int,
        repaired: bool = False,
        repair_seeded: int = 0,
        repair_invalidated: int = 0,
    ) -> None:
        self.summarize_runs += 1
        self.summarize_seconds += float(seconds)
        self.arena_bytes += max(0, int(arena_growth))
        self.interned_annotations = int(interned_annotations)
        self.pool_candidates = int(pool_candidates)
        self.summary_size = int(summary_size)
        if repaired:
            self.repaired_runs += 1
        self.repair_seeded += int(repair_seeded)
        self.repair_invalidated += int(repair_invalidated)
        self.touch()
        self._publish()

    # -- reporting ---------------------------------------------------------

    def idle_seconds(self) -> float:
        return max(0.0, time.monotonic() - self.last_active)

    def age_seconds(self) -> float:
        return max(0.0, time.monotonic() - self.created_at)

    def retained_bytes(self) -> int:
        """The eviction-relevant retained-memory estimate."""
        return (
            self.arena_bytes
            + self.interned_annotations * _INTERNED_COST
            + self.pool_candidates * _POOL_ENTRY_COST
        )

    def eviction_score(self) -> float:
        return self.retained_bytes() * (
            1.0 + self.idle_seconds() / IDLE_HALF_LIFE_SECONDS
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "age_seconds": round(self.age_seconds(), 3),
            "idle_seconds": round(self.idle_seconds(), 3),
            "summarize_runs": self.summarize_runs,
            "summarize_seconds": round(self.summarize_seconds, 6),
            "repaired_runs": self.repaired_runs,
            "repair_seeded": self.repair_seeded,
            "repair_invalidated": self.repair_invalidated,
            "ingested_deltas": self.ingested_deltas,
            "arena_bytes": self.arena_bytes,
            "interned_annotations": self.interned_annotations,
            "pool_candidates": self.pool_candidates,
            "selected_size": self.selected_size,
            "summary_size": self.summary_size,
            "retained_bytes": self.retained_bytes(),
            "eviction_score": round(self.eviction_score(), 3),
        }

    def _publish(self) -> None:
        if not _metrics.ENABLED:
            return
        _SESSION_ARENA.set(self.arena_bytes, session=self.session_id)
        _SESSION_INTERNED.set(self.interned_annotations, session=self.session_id)
        _SESSION_POOL.set(self.pool_candidates, session=self.session_id)
        _SESSION_SECONDS.set(self.summarize_seconds, session=self.session_id)


class ResourceRegistry:
    """Thread-safe process-wide table of live session accounts."""

    def __init__(self) -> None:
        self._accounts: Dict[str, SessionAccount] = {}
        self._lock = threading.Lock()
        self._next_id = 0

    def register(self, session_id: Optional[str] = None) -> SessionAccount:
        """Create (and gauge-publish) an account for a new session."""
        with self._lock:
            if session_id is None:
                self._next_id += 1
                session_id = f"s{self._next_id}"
            if session_id in self._accounts:
                raise ValueError(f"session id {session_id!r} already registered")
            account = SessionAccount(session_id=session_id)
            self._accounts[session_id] = account
            count = len(self._accounts)
        if _metrics.ENABLED:
            _SESSIONS_ACTIVE.set(count)
        account._publish()
        return account

    def unregister(self, session_id: str) -> None:
        """Drop an account and its labeled gauge series (idempotent)."""
        with self._lock:
            self._accounts.pop(session_id, None)
            count = len(self._accounts)
        for gauge in (
            _SESSION_ARENA,
            _SESSION_INTERNED,
            _SESSION_POOL,
            _SESSION_SECONDS,
        ):
            gauge.remove(session=session_id)
        if _metrics.ENABLED:
            _SESSIONS_ACTIVE.set(count)

    def get(self, session_id: str) -> Optional[SessionAccount]:
        with self._lock:
            return self._accounts.get(session_id)

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._accounts)

    def count(self) -> int:
        with self._lock:
            return len(self._accounts)

    def total_arena_bytes(self) -> int:
        with self._lock:
            return sum(a.arena_bytes for a in self._accounts.values())

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            accounts = list(self._accounts.values())
        return [account.to_dict() for account in sorted(
            accounts, key=lambda a: a.session_id
        )]

    def eviction_ranking(self) -> List[Dict[str, object]]:
        """Sessions ordered most-evictable first, with reasons."""
        with self._lock:
            accounts = list(self._accounts.values())
        ranked = sorted(
            accounts, key=lambda a: (-a.eviction_score(), a.session_id)
        )
        rows: List[Dict[str, object]] = []
        for account in ranked:
            reasons = []
            if account.retained_bytes():
                reasons.append(f"retains ~{account.retained_bytes()} bytes")
            idle = account.idle_seconds()
            if idle >= IDLE_HALF_LIFE_SECONDS:
                reasons.append(f"idle {idle:.0f}s")
            if not reasons:
                reasons.append("negligible footprint")
            rows.append(
                {
                    "session_id": account.session_id,
                    "eviction_score": round(account.eviction_score(), 3),
                    "retained_bytes": account.retained_bytes(),
                    "idle_seconds": round(idle, 3),
                    "reasons": reasons,
                }
            )
        return rows


#: The process-wide registry ``GET /sessions`` serves.
REGISTRY = ResourceRegistry()
