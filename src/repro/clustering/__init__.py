"""Agglomerative hierarchical clustering -- the thesis's baseline (§6.2)."""

from .dissimilarity import (
    jaccard_dissimilarity,
    pearson_correlation,
    pearson_dissimilarity,
)
from .features import (
    FeatureVector,
    attribute_dissimilarity,
    feature_dissimilarity,
    feature_vectors,
)
from .hac import LINKAGES, AgglomerativeClustering, Merge, dendrogram

__all__ = [
    "AgglomerativeClustering",
    "FeatureVector",
    "attribute_dissimilarity",
    "feature_dissimilarity",
    "LINKAGES",
    "Merge",
    "dendrogram",
    "feature_vectors",
    "jaccard_dissimilarity",
    "pearson_correlation",
    "pearson_dissimilarity",
]
