"""Agglomerative hierarchical clustering, from scratch (§6.2).

The thesis's Clustering baseline uses the HAC Java library; we
implement the same algorithm natively.  HAC starts from singleton
clusters and repeatedly merges the pair of clusters with the smallest
linkage dissimilarity.  All seven linkage criteria listed in §6.2 are
supported through Lance-Williams update coefficients:

=================  =============================================================
linkage            dissimilarity between merged cluster ``(i ∪ j)`` and ``k``
=================  =============================================================
single             ``min(d_ik, d_jk)``
complete           ``max(d_ik, d_jk)``
average            size-weighted average of ``d_ik`` and ``d_jk`` (UPGMA)
weighted_average   plain average (WPGMA; "sizes assumed equal")
centroid           distance of centroids (UPGMC)
median             distance of weighted centroids (WPGMC)
ward               minimal increase of within-cluster sum of squares
=================  =============================================================

The implementation works on a dissimilarity matrix (callable), so any
measure -- including the Pearson-correlation dissimilarity of
:mod:`repro.clustering.dissimilarity` -- plugs in, and it accepts a
merge predicate so the thesis's semantic constraints restrict the
dendrogram exactly as they restrict Algorithm 1 ("we do not allow two
clusters to merge if the users that belong to these clusters do not
have at least one attribute in common").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

#: linkage name → Lance-Williams coefficient function
#: (n_i, n_j, n_k) → (alpha_i, alpha_j, beta, gamma)
_LANCE_WILLIAMS: Dict[str, Callable[[int, int, int], Tuple[float, float, float, float]]] = {
    "single": lambda ni, nj, nk: (0.5, 0.5, 0.0, -0.5),
    "complete": lambda ni, nj, nk: (0.5, 0.5, 0.0, 0.5),
    "average": lambda ni, nj, nk: (ni / (ni + nj), nj / (ni + nj), 0.0, 0.0),
    "weighted_average": lambda ni, nj, nk: (0.5, 0.5, 0.0, 0.0),
    "centroid": lambda ni, nj, nk: (
        ni / (ni + nj),
        nj / (ni + nj),
        -(ni * nj) / ((ni + nj) ** 2),
        0.0,
    ),
    "median": lambda ni, nj, nk: (0.5, 0.5, -0.25, 0.0),
    "ward": lambda ni, nj, nk: (
        (ni + nk) / (ni + nj + nk),
        (nj + nk) / (ni + nj + nk),
        -nk / (ni + nj + nk),
        0.0,
    ),
}

#: The §6.2 linkage criteria, in the order the thesis lists them.
LINKAGES: Tuple[str, ...] = tuple(_LANCE_WILLIAMS)


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: clusters ``first`` and ``second`` → ``new``.

    ``members`` is the merged cluster's item-index set and
    ``dissimilarity`` the linkage value at which the merge happened.
    """

    first: int
    second: int
    new: int
    dissimilarity: float
    members: FrozenSet[int]


class AgglomerativeClustering:
    """Bottom-up clustering over ``n`` items.

    Parameters
    ----------
    n:
        Number of items (clusters 0..n-1 start as singletons).
    dissimilarity:
        ``(i, j) -> float`` over item indexes.
    linkage:
        One of :data:`LINKAGES`.
    allowed:
        Optional merge predicate over member sets; pairs it rejects are
        never merged (the semantic constraints of §6.2).
    """

    def __init__(
        self,
        n: int,
        dissimilarity: Callable[[int, int], float],
        linkage: str = "single",
        allowed: Optional[Callable[[FrozenSet[int], FrozenSet[int]], bool]] = None,
    ):
        if linkage not in _LANCE_WILLIAMS:
            raise ValueError(
                f"unknown linkage {linkage!r}; expected one of {LINKAGES}"
            )
        if n < 1:
            raise ValueError("need at least one item")
        self.n = n
        self.linkage = linkage
        self.allowed = allowed
        self._coefficients = _LANCE_WILLIAMS[linkage]
        # Current clusters: id → member item indexes.
        self._members: Dict[int, FrozenSet[int]] = {
            index: frozenset((index,)) for index in range(n)
        }
        # Pairwise dissimilarities between current clusters.
        self._dist: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            for j in range(i + 1, n):
                self._dist[(i, j)] = float(dissimilarity(i, j))
        self._next_id = n

    # -- queries -----------------------------------------------------------------

    def clusters(self) -> Dict[int, FrozenSet[int]]:
        """Current cluster id → members."""
        return dict(self._members)

    def _pair_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _pair_distance(self, a: int, b: int) -> float:
        return self._dist[self._pair_key(a, b)]

    # -- the algorithm -------------------------------------------------------------

    def merge_once(self) -> Optional[Merge]:
        """Perform the best allowed merge; ``None`` when nothing merges.

        Picks the pair with minimal linkage dissimilarity among pairs
        the predicate allows (ties broken by cluster ids for
        determinism), merges it and updates all distances via the
        Lance-Williams recurrence.
        """
        ids = sorted(self._members)
        best: Optional[Tuple[float, int, int]] = None
        for position, first in enumerate(ids):
            for second in ids[position + 1:]:
                value = self._pair_distance(first, second)
                if math.isinf(value):
                    continue
                if self.allowed is not None and not self.allowed(
                    self._members[first], self._members[second]
                ):
                    continue
                if best is None or value < best[0]:
                    best = (value, first, second)
        if best is None:
            return None
        value, first, second = best
        merged_members = self._members[first] | self._members[second]
        new_id = self._next_id
        self._next_id += 1

        size_first = len(self._members[first])
        size_second = len(self._members[second])
        for other in ids:
            if other in (first, second):
                continue
            alpha_i, alpha_j, beta, gamma = self._coefficients(
                size_first, size_second, len(self._members[other])
            )
            d_ik = self._pair_distance(first, other)
            d_jk = self._pair_distance(second, other)
            d_ij = value
            updated = (
                alpha_i * d_ik
                + alpha_j * d_jk
                + beta * d_ij
                + gamma * abs(d_ik - d_jk)
            )
            self._dist[self._pair_key(new_id, other)] = updated

        for other in ids:
            self._dist.pop(self._pair_key(first, other), None)
            self._dist.pop(self._pair_key(second, other), None)
        del self._members[first]
        del self._members[second]
        self._members[new_id] = merged_members
        return Merge(first, second, new_id, value, merged_members)

    def run(self, until_clusters: int = 1) -> List[Merge]:
        """Merge until ``until_clusters`` remain (or nothing merges)."""
        if until_clusters < 1:
            raise ValueError("until_clusters must be at least 1")
        merges: List[Merge] = []
        while len(self._members) > until_clusters:
            merge = self.merge_once()
            if merge is None:
                break
            merges.append(merge)
        return merges


def dendrogram(
    n: int,
    dissimilarity: Callable[[int, int], float],
    linkage: str = "single",
    allowed: Optional[Callable[[FrozenSet[int], FrozenSet[int]], bool]] = None,
) -> List[Merge]:
    """Full merge sequence (as far as the constraints permit)."""
    return AgglomerativeClustering(n, dissimilarity, linkage, allowed).run(1)
