"""Feature-vector construction for the Clustering baseline (§6.2).

The thesis builds, per user, a vector of identifying attributes plus a
sparse ratings vector ``(MovieTitle_1 = Rating_1, ...)``; per Wikipedia
page, the taxonomy ancestors plus a sparse editor vector
``(UID_1 = NumMajorEdits_1, ...)``.  Both shapes are derived directly
from the provenance expression here, so the baseline sees exactly the
data Algorithm 1 sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..provenance.annotations import AnnotationUniverse
from ..provenance.tensor_sum import TensorSum
from .dissimilarity import pearson_dissimilarity


@dataclass(frozen=True)
class FeatureVector:
    """One observation for clustering.

    ``ident`` is the annotation name; ``attributes`` its semantic
    attributes (used by the merge constraints); ``ratings`` the sparse
    numeric profile (movie → rating, editor → edit count, ...) the
    dissimilarity measure compares.
    """

    ident: str
    attributes: Mapping[str, object]
    ratings: Mapping[str, float]


def feature_vectors(
    expression: TensorSum,
    universe: AnnotationUniverse,
    domain: str,
    key_domain: Optional[str] = None,
) -> List[FeatureVector]:
    """Feature vectors for all ``domain`` annotations in ``expression``.

    The sparse profile key of each term is the term's *group* (the
    movie a rating aggregates into) unless ``key_domain`` names another
    annotation domain -- Wikipedia pages, which are themselves the
    groups, are profiled by their *editors* (``key_domain="user"``).
    Values of colliding keys add up (a user editing the same page twice
    contributes its total).
    """
    profiles: Dict[str, Dict[str, float]] = {}
    for term in expression.terms:
        for name in term.annotations:
            annotation = universe[name]
            if annotation.domain != domain:
                continue
            key = _profile_key(term, name, universe, key_domain)
            if key is None:
                continue
            bucket = profiles.setdefault(name, {})
            bucket[key] = bucket.get(key, 0.0) + term.value
    vectors = []
    for name in sorted(profiles):
        annotation = universe[name]
        vectors.append(
            FeatureVector(
                ident=name,
                attributes=dict(annotation.attributes),
                ratings=dict(profiles[name]),
            )
        )
    return vectors


def attribute_dissimilarity(
    first: Mapping[str, object], second: Mapping[str, object]
) -> float:
    """Fraction of attributes (over the union) with differing values."""
    keys = set(first) | set(second)
    if not keys:
        return 0.0
    differing = sum(1 for key in keys if first.get(key) != second.get(key))
    return differing / len(keys)


def feature_dissimilarity(
    first: FeatureVector,
    second: FeatureVector,
    attribute_weight: float = 0.5,
) -> float:
    """The §6.2 dissimilarity over full feature vectors.

    The thesis's feature vectors carry both the identifying attributes
    (gender, age range, ...) and the sparse ratings profile, and its
    measure uses Pearson correlation "as a measure of similarity
    between the ratings vectors, that the feature vectors include as a
    single feature" -- i.e. one feature among the attributes.  We
    combine the two parts linearly: attribute mismatch fraction and
    Pearson dissimilarity of the profiles.
    """
    if not 0.0 <= attribute_weight <= 1.0:
        raise ValueError("attribute_weight must be in [0, 1]")
    attributes = attribute_dissimilarity(first.attributes, second.attributes)
    ratings = pearson_dissimilarity(first.ratings, second.ratings)
    return attribute_weight * attributes + (1.0 - attribute_weight) * ratings


def _profile_key(
    term,
    owner: str,
    universe: AnnotationUniverse,
    key_domain: Optional[str],
) -> Optional[str]:
    if key_domain is None:
        return term.group
    for name in term.annotations:
        if name == owner:
            continue
        if universe[name].domain == key_domain:
            return name
    return None
