"""Dissimilarity measures for the Clustering baseline (§6.2).

The thesis associates each user (or page) with a feature vector whose
last feature is a sparse ratings/edits vector, and measures similarity
between two vectors with the Pearson Correlation Coefficient over the
ratings they share -- the classic collaborative-filtering measure.
Dissimilarity is ``(1 - r) / 2``, mapping perfect correlation to 0 and
perfect anti-correlation to 1.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional


def pearson_correlation(
    first: Mapping[str, float], second: Mapping[str, float]
) -> Optional[float]:
    """Pearson correlation over the keys the two sparse vectors share.

    Returns ``None`` when fewer than two common keys exist or either
    restriction is constant (the coefficient is undefined there).
    """
    common = sorted(set(first) & set(second))
    if len(common) < 2:
        return None
    xs = [first[key] for key in common]
    ys = [second[key] for key in common]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0:
        # Constant restrictions, including variances that underflow.
        return None
    return min(1.0, max(-1.0, cov / denominator))


def pearson_dissimilarity(
    first: Mapping[str, float],
    second: Mapping[str, float],
    undefined: float = 0.75,
) -> float:
    """``(1 - r) / 2`` over shared keys, in ``[0, 1]``.

    Pairs with an undefined coefficient (too little overlap) get the
    pessimistic-but-not-maximal ``undefined`` value, so users with no
    common movies cluster late but are not forbidden from clustering
    (the semantic constraints, not the metric, decide admissibility).
    """
    correlation = pearson_correlation(first, second)
    if correlation is None:
        return undefined
    # Clamp: float rounding can push |r| infinitesimally past 1.
    return min(1.0, max(0.0, (1.0 - correlation) / 2.0))


def jaccard_dissimilarity(
    first: Mapping[str, float], second: Mapping[str, float]
) -> float:
    """``1 - |keys∩| / |keys∪|`` -- a set-overlap alternative used by
    the clustering ablation (pages sharing editors cluster early)."""
    keys_first = set(first)
    keys_second = set(second)
    union = keys_first | keys_second
    if not union:
        return 1.0
    return 1.0 - len(keys_first & keys_second) / len(union)
