"""Common shape of the three provenance datasets (Ch. 5, Table 5.1).

A :class:`DatasetInstance` bundles a generated provenance expression
with everything Table 5.1 specifies for its dataset: the annotation
universe, default valuation class, VAL-FUNC, ``φ`` combiners, merge
constraints, optional taxonomy, and the feature specs the Clustering
baseline uses.  ``instance.problem()`` turns it into the
:class:`~repro.core.problem.SummarizationProblem` Algorithm 1 and the
baselines consume.

Because summarizers register summary annotations into the universe,
each algorithm run should receive a *fresh* instance; the generators
are fully seeded, so regenerating is cheap and exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..core.baselines import ClusterDomainSpec
from ..core.combiners import DomainCombiners
from ..core.constraints import MergeConstraint
from ..core.problem import SummarizationProblem
from ..provenance.annotations import AnnotationUniverse
from ..provenance.valuation_classes import ValuationClass
from ..taxonomy.dag import Taxonomy


@dataclass
class DatasetInstance:
    """One generated provenance expression plus its Table 5.1 row."""

    name: str
    expression: object
    universe: AnnotationUniverse
    valuations: ValuationClass
    val_func: object
    combiners: DomainCombiners
    constraint: MergeConstraint
    taxonomy: Optional[Taxonomy] = None
    cluster_specs: Sequence[ClusterDomainSpec] = ()
    metadata: Dict[str, object] = field(default_factory=dict)

    def problem(
        self, valuations: Optional[ValuationClass] = None
    ) -> SummarizationProblem:
        """The summarization problem this instance poses.

        ``valuations`` overrides the dataset's default valuation class
        (the experiments switch between Cancel-Single-Annotation and
        Cancel-Single-Attribute).
        """
        return SummarizationProblem(
            expression=self.expression,
            universe=self.universe,
            valuations=valuations if valuations is not None else self.valuations,
            val_func=self.val_func,
            combiners=self.combiners,
            constraint=self.constraint,
            taxonomy=self.taxonomy,
            description=self.name,
        )

    def describe_row(self) -> Dict[str, str]:
        """This dataset's Table 5.1 row."""
        return {
            "Type": self.name,
            "Structure": str(self.metadata.get("structure", "")),
            "Mapping Constraints": self.constraint.describe(),
            "Aggregation": str(self.metadata.get("aggregation", "")),
            "Valuations Classes": self.valuations.name,
            "φ Functions": self.combiners.describe(),
            "VAL-FUNC": getattr(
                self.val_func, "name", type(self.val_func).__name__
            ),
        }


def format_table_5_1(rows: Sequence[Dict[str, str]]) -> str:
    """Render Table 5.1 rows as an aligned text table."""
    if not rows:
        return "(no datasets)"
    headers = list(rows[0])
    widths = {
        header: max(len(header), *(len(str(row[header])) for row in rows))
        for header in headers
    }
    lines = [
        " | ".join(header.ljust(widths[header]) for header in headers),
        "-+-".join("-" * widths[header] for header in headers),
    ]
    for row in rows:
        lines.append(
            " | ".join(str(row[header]).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
