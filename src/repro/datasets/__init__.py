"""Provenance dataset builders of Chapter 5 (Table 5.1)."""

from .base import DatasetInstance, format_table_5_1
from .ddp import (
    MAX_COST_PER_TRANSITION,
    MAX_TRANSITIONS_PER_EXECUTION,
    DDPConfig,
    generate_ddp,
)
from .loaders import load_movielens_100k, load_wikipedia_edits
from .movielens import (
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from .wikipedia import WikipediaConfig, generate_wikipedia

__all__ = [
    "DDPConfig",
    "DatasetInstance",
    "MAX_COST_PER_TRANSITION",
    "MAX_TRANSITIONS_PER_EXECUTION",
    "MovieLensConfig",
    "MovieLensDeltaConfig",
    "WikipediaConfig",
    "format_table_5_1",
    "generate_ddp",
    "generate_movielens",
    "generate_movielens_deltas",
    "generate_wikipedia",
    "load_movielens_100k",
    "load_wikipedia_edits",
]
