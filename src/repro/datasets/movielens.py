"""Synthetic MovieLens provenance (§5.1 item 1, Table 5.1 row 1).

The thesis summarizes provenance of aggregated MovieLens ratings with
the structure::

    (UserID_1 · MovieTitle_1 · MovieYear_1) ⊗ (Rating_1, 1) ⊕
    (UserID_2 · MovieTitle_2 · MovieYear_2) ⊗ (Rating_2, 1) ⊕ ...

We cannot ship the MovieLens dump, but the algorithm only consumes the
expression above plus user attributes and merge constraints, so a
seeded generator with MovieLens-100k attribute marginals (gender ~71%
male; the seven MovieLens age buckets; the 21 occupation labels)
substitutes faithfully -- see DESIGN.md.

Users carry gender / age-range / occupation / zip-code attributes (the
Table 5.1 mapping constraints); movie-title annotations carry genre /
year / decade and year annotations carry the decade, so the PROX
system can also merge movie annotations as in Figures 7.3/7.7.  The
*experiments* merge users only, matching Table 5.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.baselines import ClusterDomainSpec
from ..core.combiners import DomainCombiners
from ..core.constraints import DomainConstraints, SharedAttribute
from ..core.streaming import ProvenanceDelta
from ..core.val_funcs import EuclideanDistance
from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.monoids import monoid_by_name
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    ValuationClass,
)
from .base import DatasetInstance

#: MovieLens-100k gender marginal.
_GENDERS: Tuple[Tuple[str, float], ...] = (("M", 0.71), ("F", 0.29))

#: The MovieLens age buckets.
_AGE_RANGES: Tuple[str, ...] = (
    "Under 18", "18-24", "25-34", "35-44", "45-49", "50-55", "56+",
)

#: The 21 MovieLens occupation labels.
_OCCUPATIONS: Tuple[str, ...] = (
    "academic/educator", "artist", "clerical/admin", "college/grad student",
    "customer service", "doctor/health care", "executive/managerial",
    "farmer", "homemaker", "K-12 student", "lawyer", "programmer",
    "retired", "sales/marketing", "scientist", "self-employed",
    "technician/engineer", "tradesman/craftsman", "unemployed", "writer",
    "other",
)

_GENRES: Tuple[str, ...] = (
    "drama", "comedy", "action", "thriller", "romance", "sci-fi",
    "horror", "documentary", "animation", "crime",
)

_TITLE_STEMS: Tuple[str, ...] = (
    "Match Point", "Blue Jasmine", "Party Girl", "Bye Bye Love", "Sleepover",
    "Man of the House", "Friday", "The Fury", "Near Dark", "Titanic",
    "Raise the Titanic", "Remember the Titans", "Annie Hall", "Clerks",
    "Heat", "Casino", "Twister", "Fargo", "Scream", "Contact",
)


@dataclass(frozen=True)
class MovieLensConfig:
    """Knobs of the synthetic MovieLens provenance generator."""

    n_users: int = 30
    n_movies: int = 12
    min_ratings_per_user: int = 3
    max_ratings_per_user: int = 7
    aggregation: str = "MAX"
    valuation_class: str = "attribute"
    constraint_attributes: Tuple[str, ...] = (
        "gender", "age_range", "occupation", "zip_region",
    )
    n_zip_regions: int = 6
    include_movie_merges: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 2 or self.n_movies < 1:
            raise ValueError("need at least 2 users and 1 movie")
        if self.min_ratings_per_user < 1:
            raise ValueError("users must rate at least one movie")
        if self.max_ratings_per_user < self.min_ratings_per_user:
            raise ValueError("max_ratings_per_user < min_ratings_per_user")
        if self.valuation_class not in ("annotation", "attribute"):
            raise ValueError(
                "valuation_class must be 'annotation' or 'attribute'"
            )


def _weighted_choice(rng: random.Random, options) -> str:
    roll = rng.random()
    cumulative = 0.0
    for value, weight in options:
        cumulative += weight
        if roll <= cumulative:
            return value
    return options[-1][0]


def generate_movielens(config: MovieLensConfig = MovieLensConfig()) -> DatasetInstance:
    """Generate one MovieLens provenance instance.

    Deterministic in ``config.seed``: the same config always yields the
    same expression, universe and valuation class.
    """
    rng = random.Random(config.seed)
    universe = AnnotationUniverse()

    users: List[Annotation] = []
    for index in range(config.n_users):
        users.append(
            universe.register(
                Annotation(
                    name=f"UID{100 + index}",
                    domain="user",
                    attributes={
                        "gender": _weighted_choice(rng, _GENDERS),
                        "age_range": rng.choice(_AGE_RANGES),
                        "occupation": rng.choice(_OCCUPATIONS),
                        "zip_region": f"Z{rng.randrange(config.n_zip_regions)}",
                    },
                )
            )
        )

    movies: List[Annotation] = []
    years: Dict[int, Annotation] = {}
    for index in range(config.n_movies):
        stem = _TITLE_STEMS[index % len(_TITLE_STEMS)]
        title = stem if index < len(_TITLE_STEMS) else f"{stem} {index // len(_TITLE_STEMS) + 1}"
        year = rng.randrange(1970, 2010)
        if year not in years:
            years[year] = universe.register(
                Annotation(
                    name=f"Y{year}",
                    domain="year",
                    attributes={"decade": f"{year // 10 * 10}s"},
                )
            )
        movies.append(
            universe.register(
                Annotation(
                    name=title,
                    domain="movie",
                    attributes={
                        "genre": rng.choice(_GENRES),
                        "year": year,
                        "decade": f"{year // 10 * 10}s",
                    },
                )
            )
        )

    monoid = monoid_by_name(config.aggregation)
    quality = {movie.name: rng.uniform(2.0, 4.5) for movie in movies}
    terms: List[Term] = []
    for user in users:
        bias = rng.uniform(-1.0, 1.0)
        count = rng.randint(config.min_ratings_per_user, config.max_ratings_per_user)
        rated = rng.sample(movies, min(count, len(movies)))
        for movie in rated:
            rating = round(
                min(5.0, max(1.0, quality[movie.name] + bias + rng.uniform(-1.0, 1.0)))
            )
            year_annotation = years[movie.attributes["year"]]
            terms.append(
                Term(
                    annotations=tuple(
                        sorted((user.name, movie.name, year_annotation.name))
                    ),
                    value=float(rating),
                    count=1,
                    group=movie.name,
                )
            )
    expression = TensorSum(terms, monoid)

    valuations = _valuation_class(config, universe)
    per_domain = {"user": SharedAttribute(config.constraint_attributes)}
    if config.include_movie_merges:
        per_domain["movie"] = SharedAttribute(("genre", "decade"))
        per_domain["year"] = SharedAttribute(("decade",))
    constraint = DomainConstraints(per_domain)

    return DatasetInstance(
        name="Movies",
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=EuclideanDistance(monoid),
        combiners=DomainCombiners(),
        constraint=constraint,
        taxonomy=None,
        cluster_specs=(ClusterDomainSpec("user"),),
        metadata={
            "structure": "(UserID·MovieTitle·MovieYear) ⊗ (Rating, 1) ⊕ ...",
            "aggregation": config.aggregation,
            "config": config,
            "n_terms": len(expression),
        },
    )


@dataclass(frozen=True)
class MovieLensDeltaConfig:
    """Knobs of the synthetic streaming-delta generator."""

    n_deltas: int = 10
    min_ratings_per_delta: int = 1
    max_ratings_per_delta: int = 3
    #: Every k-th delta also introduces a new movie (0 = never).
    new_movie_every: int = 4
    #: Every k-th delta spam-flags a pair of existing users instead of
    #: adding a user: both users' cancel-valuations are extended with
    #: the other, so their truth signatures -- previously distinct --
    #: can fall into one equivalence class (0 = never).
    spam_flag_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_deltas < 1:
            raise ValueError("need at least one delta")
        if self.min_ratings_per_delta < 1:
            raise ValueError("deltas must add at least one rating")
        if self.max_ratings_per_delta < self.min_ratings_per_delta:
            raise ValueError("max_ratings_per_delta < min_ratings_per_delta")


def generate_movielens_deltas(
    instance: DatasetInstance,
    config: MovieLensDeltaConfig = MovieLensDeltaConfig(),
) -> List[ProvenanceDelta]:
    """A stream of append-only deltas extending ``instance``.

    Each delta registers one new user with a handful of ratings over
    the existing movie catalogue; every ``new_movie_every``-th delta
    also premieres a new movie (reusing the year annotation when the
    year is already known); every ``spam_flag_every``-th delta instead
    flags two existing users as mutually-suspect spammers by extending
    each one's cancel-valuation with the other.  Deterministic in
    ``config.seed`` and consistent with the instance: names never
    collide with the generated universe or with each other.
    """
    rng = random.Random(config.seed)
    universe = instance.universe
    users = [a.name for a in universe if a.domain == "user" and not a.is_summary]
    movies = {
        a.name: a for a in universe if a.domain == "movie" and not a.is_summary
    }
    years = {
        int(a.name[1:]): a.name
        for a in universe
        if a.domain == "year" and not a.is_summary
    }
    next_user = 100 + len(users)
    next_movie = 0

    deltas: List[ProvenanceDelta] = []
    for index in range(config.n_deltas):
        if (
            config.spam_flag_every
            and (index + 1) % config.spam_flag_every == 0
            and len(users) >= 2
        ):
            first, second = rng.sample(users, 2)
            deltas.append(
                ProvenanceDelta(
                    extend_valuations={
                        f"cancel {first}": (second,),
                        f"cancel {second}": (first,),
                    }
                )
            )
            continue

        annotations: List[Annotation] = []
        terms: List[Term] = []
        user = Annotation(
            name=f"UID{next_user}",
            domain="user",
            attributes={
                "gender": _weighted_choice(rng, _GENDERS),
                "age_range": rng.choice(_AGE_RANGES),
                "occupation": rng.choice(_OCCUPATIONS),
                "zip_region": f"Z{rng.randrange(6)}",
            },
        )
        next_user += 1
        annotations.append(user)
        users.append(user.name)

        if config.new_movie_every and (index + 1) % config.new_movie_every == 0:
            title = f"Premiere {next_movie + 1}"
            next_movie += 1
            year = rng.randrange(1970, 2010)
            year_name = years.get(year)
            if year_name is None:
                year_name = f"Y{year}"
                if year_name not in universe:
                    annotations.append(
                        Annotation(
                            name=year_name,
                            domain="year",
                            attributes={"decade": f"{year // 10 * 10}s"},
                        )
                    )
                years[year] = year_name
            movie = Annotation(
                name=title,
                domain="movie",
                attributes={
                    "genre": rng.choice(_GENRES),
                    "year": year,
                    "decade": f"{year // 10 * 10}s",
                },
            )
            annotations.append(movie)
            movies[movie.name] = movie
            terms.append(
                Term(
                    annotations=tuple(sorted((user.name, movie.name, year_name))),
                    value=float(rng.randint(1, 5)),
                    count=1,
                    group=movie.name,
                )
            )

        count = rng.randint(
            config.min_ratings_per_delta, config.max_ratings_per_delta
        )
        catalogue = sorted(movies)
        for title in rng.sample(catalogue, min(count, len(catalogue))):
            movie = movies[title]
            year_name = years[movie.attributes["year"]]
            term = Term(
                annotations=tuple(sorted((user.name, title, year_name))),
                value=float(rng.randint(1, 5)),
                count=1,
                group=title,
            )
            if term not in terms:
                terms.append(term)
        deltas.append(ProvenanceDelta(annotations=annotations, terms=terms))
    return deltas


def _valuation_class(
    config: MovieLensConfig, universe: AnnotationUniverse
) -> ValuationClass:
    if config.valuation_class == "annotation":
        return CancelSingleAnnotation(universe, domains=("user",))
    return CancelSingleAttribute(
        universe,
        attributes=config.constraint_attributes,
        domains=("user",),
    )
