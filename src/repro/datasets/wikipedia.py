"""Synthetic Wikipedia edit provenance (§5.1 item 2, Table 5.1 row 2).

The thesis collected user edits through the MediaWiki API and
constrained page merges by the YAGO taxonomy.  Structure::

    (Username_1 · PageTitle_1) ⊗ (EditType_1, 1) ⊕ ...

where EditType is 0 (minor) or 1 (major), aggregated with SUM (per
page: the number of major edits).  User annotations carry
isRegistered / gender / contribution level; page annotations carry
their WordNet concept, and merges of pages must share a taxonomy
ancestor.  Distance uses only valuations consistent with the taxonomy
(Example 5.2.1).

Substitutions (DESIGN.md): edits are generated with a Zipf-like skew
over users (a few top contributors make most edits, as on real wikis);
pages are instances of the leaf concepts of the built-in WordNet
person fragment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.baselines import ClusterDomainSpec
from ..core.combiners import DomainCombiners
from ..core.constraints import (
    DomainConstraints,
    SharedAttribute,
    TaxonomyAncestor,
)
from ..core.val_funcs import EuclideanDistance
from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.monoids import SUM
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    TaxonomyConsistent,
    ValuationClass,
)
from ..taxonomy.dag import Taxonomy
from ..taxonomy.wordnet_fragment import wordnet_person_fragment
from .base import DatasetInstance

_USERNAME_STEMS: Tuple[str, ...] = (
    "SalubriousToxin", "Dubulge", "DrBackInTheStreet", "JasperTheFriendlyPunk",
    "Ebyabe", "Smalljim", "QuietRevision", "EditorAtLarge", "Wikignome",
    "RecentChanger", "TypoTamer", "CiteNeeded", "InfoboxFan", "RedLinkFixer",
    "StubSorter", "VandalWatcher", "CatFixer", "MergeProposer", "PageMover",
    "TalkPageSage",
)

_PAGE_STEMS: Dict[str, Tuple[str, ...]] = {
    "wordnet_singer": ("Adele", "Celine Dion", "Freddie Mercury", "Nina Simone"),
    "wordnet_guitarist": ("Lori Black", "Alec Baillie", "Jimi Hendrix", "Nile Rodgers"),
    "wordnet_pianist": ("Glenn Gould", "Nina Keys", "Art Tatum"),
    "wordnet_violinist": ("Itzhak Perlman", "Hilary Hahn"),
    "wordnet_actor": ("Ingrid Bergman", "Toshiro Mifune", "Setsuko Hara"),
    "wordnet_dancer": ("Martha Graham", "Rudolf Nureyev"),
    "wordnet_comedian": ("Buster Keaton", "Gilda Radner"),
    "wordnet_physicist": ("Emmy Noether", "Lise Meitner", "Paul Dirac"),
    "wordnet_chemist": ("Rosalind Franklin", "Linus Pauling"),
    "wordnet_biologist": ("Barbara McClintock", "Carl Linnaeus"),
    "wordnet_novelist": ("Chinua Achebe", "Ursula Le Guin", "Italo Calvino"),
    "wordnet_poet": ("Wislawa Szymborska", "Pablo Neruda"),
    "wordnet_footballer": ("Marta Vieira", "Ferenc Puskas"),
    "wordnet_swimmer": ("Dawn Fraser", "Duke Kahanamoku"),
}


@dataclass(frozen=True)
class WikipediaConfig:
    """Knobs of the synthetic Wikipedia provenance generator."""

    n_users: int = 18
    n_pages: int = 14
    min_edits_per_user: int = 2
    max_edits_per_user: int = 6
    major_edit_probability: float = 0.6
    valuation_class: str = "annotation"
    max_taxonomy_distance: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 2 or self.n_pages < 2:
            raise ValueError("need at least 2 users and 2 pages")
        if not 0.0 <= self.major_edit_probability <= 1.0:
            raise ValueError("major_edit_probability must be a probability")
        if self.valuation_class not in ("annotation", "attribute"):
            raise ValueError("valuation_class must be 'annotation' or 'attribute'")


def generate_wikipedia(
    config: WikipediaConfig = WikipediaConfig(),
) -> DatasetInstance:
    """Generate one Wikipedia provenance instance (seeded)."""
    rng = random.Random(config.seed)
    universe = AnnotationUniverse()
    taxonomy = wordnet_person_fragment()

    # Pages: round-robin over the concept stems so several pages share
    # a parent concept (merges must be possible).
    pages: List[Annotation] = []
    concept_names = [c for c in _PAGE_STEMS if c in taxonomy]
    pool: List[Tuple[str, str]] = [
        (title, concept)
        for concept in concept_names
        for title in _PAGE_STEMS[concept]
    ]
    rng.shuffle(pool)
    for index in range(config.n_pages):
        title, concept = pool[index % len(pool)]
        name = title if index < len(pool) else f"{title} ({index})"
        pages.append(
            universe.register(
                Annotation(
                    name=name,
                    domain="page",
                    attributes={"concept": concept},
                    concept=concept,
                )
            )
        )

    # Users with a Zipf-like activity skew; contribution level derives
    # from the planned edit volume, as on real wikis.
    users: List[Annotation] = []
    planned_edits: Dict[str, int] = {}
    for index in range(config.n_users):
        stem = _USERNAME_STEMS[index % len(_USERNAME_STEMS)]
        name = stem if index < len(_USERNAME_STEMS) else f"{stem}{index}"
        rank = index + 1
        base = config.max_edits_per_user / rank ** 0.5
        edits = max(config.min_edits_per_user, min(config.max_edits_per_user, round(base)))
        planned_edits[name] = edits
        if edits >= config.max_edits_per_user - 1:
            level = "Top-Contributor"
        elif edits >= config.min_edits_per_user + 1:
            level = "Reviewer"
        else:
            level = "Novice"
        users.append(
            universe.register(
                Annotation(
                    name=name,
                    domain="user",
                    attributes={
                        "is_registered": rng.random() < 0.8,
                        "gender": rng.choice(("M", "F")),
                        "contribution_level": level,
                    },
                )
            )
        )

    terms: List[Term] = []
    for user in users:
        edited = rng.sample(pages, min(planned_edits[user.name], len(pages)))
        for page in edited:
            edit_type = 1.0 if rng.random() < config.major_edit_probability else 0.0
            terms.append(
                Term(
                    annotations=tuple(sorted((user.name, page.name))),
                    value=edit_type,
                    count=1,
                    group=page.name,
                )
            )
    expression = TensorSum(terms, SUM)

    valuations = _valuation_class(config, universe, taxonomy, pages)
    constraint = DomainConstraints(
        {
            "user": SharedAttribute(
                ("is_registered", "gender", "contribution_level")
            ),
            "page": TaxonomyAncestor(
                taxonomy, max_distance=config.max_taxonomy_distance
            ),
        }
    )

    return DatasetInstance(
        name="Wikipedia",
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=EuclideanDistance(SUM),
        combiners=DomainCombiners(),
        constraint=constraint,
        taxonomy=taxonomy,
        cluster_specs=(
            ClusterDomainSpec("user"),
            ClusterDomainSpec("page", key_domain="user"),
        ),
        metadata={
            "structure": "(Username·PageTitle) ⊗ (EditType, 1) ⊕ ...",
            "aggregation": "SUM",
            "config": config,
            "n_terms": len(expression),
        },
    )


def _valuation_class(
    config: WikipediaConfig,
    universe: AnnotationUniverse,
    taxonomy: Taxonomy,
    pages: Sequence[Annotation],
) -> ValuationClass:
    if config.valuation_class == "annotation":
        inner: ValuationClass = CancelSingleAnnotation(
            universe, domains=("user", "page")
        )
    else:
        inner = CancelSingleAttribute(
            universe,
            attributes=("is_registered", "gender", "contribution_level", "concept"),
        )
    concepts_of = {
        page.name: taxonomy.ancestors(page.concept) for page in pages if page.concept
    }
    return TaxonomyConsistent(inner, concepts_of, taxonomy.parent_map())
