"""Loaders for real dataset dumps (MovieLens-100k format, edit TSVs).

The generators in this package substitute for data we cannot ship
(DESIGN.md); when a user *does* have the real files, these loaders
build exactly the same provenance structures from them, so everything
downstream -- summarization, baselines, experiments, PROX -- works
unchanged on real data.

Supported formats:

* **MovieLens-100k**: ``u.user`` (``id|age|gender|occupation|zip``),
  ``u.item`` (``id|title|release date|...|19 genre flags``) and
  ``u.data`` (``user \\t item \\t rating \\t timestamp``).
* **Wikipedia-style edit TSV**: ``username \\t page_title \\t concept
  \\t edit_type`` with an optional header line.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import tracing as _tracing
from ..core.baselines import ClusterDomainSpec
from ..core.combiners import DomainCombiners
from ..core.constraints import DomainConstraints, SharedAttribute, TaxonomyAncestor
from ..core.val_funcs import EuclideanDistance
from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.monoids import SUM, monoid_by_name
from ..provenance.tensor_sum import TensorSum, Term
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    TaxonomyConsistent,
)
from ..taxonomy.dag import Taxonomy
from .base import DatasetInstance

_LOG = _log.get_logger("datasets.loaders")
_DATASET_LOADS = _metrics.counter(
    "prox_dataset_loads_total",
    "Dataset instances built from real dumps, by loader.",
    labelnames=("loader",),
)

#: The 19 MovieLens-100k genre flag names, in file order.
ML_GENRES: Tuple[str, ...] = (
    "unknown", "Action", "Adventure", "Animation", "Children's", "Comedy",
    "Crime", "Documentary", "Drama", "Fantasy", "Film-Noir", "Horror",
    "Musical", "Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
)

_ML_AGE_RANGES = (
    (18, "Under 18"), (25, "18-24"), (35, "25-34"), (45, "35-44"),
    (50, "45-49"), (56, "50-55"), (1000, "56+"),
)


def _age_range(age: int) -> str:
    for bound, label in _ML_AGE_RANGES:
        if age < bound:
            return label
    return "56+"


def load_movielens_100k(
    directory: Union[str, Path],
    max_ratings: Optional[int] = None,
    aggregation: str = "MAX",
    valuation_class: str = "attribute",
) -> DatasetInstance:
    """Build a MovieLens provenance instance from a 100k-format dump.

    Produces the Table 5.1 structure
    ``(UserID · MovieTitle · MovieYear) ⊗ (Rating, 1) ⊕ ...`` with the
    real attribute values.  ``max_ratings`` truncates ``u.data`` (the
    full dump yields a 300k-size expression; summarize a selection).
    """
    span = _tracing.span("load_movielens_100k")
    with span:
        instance = _load_movielens_100k(
            directory, max_ratings, aggregation, valuation_class
        )
        span.set("source", str(directory))
        span.set("n_terms", len(instance.expression))
        span.set("size", instance.expression.size())
    if _metrics.ENABLED:
        _DATASET_LOADS.inc(loader="movielens_100k")
    _LOG.info(
        "dataset_loaded loader=movielens_100k source=%s n_terms=%d size=%d",
        directory,
        len(instance.expression),
        instance.expression.size(),
    )
    return instance


def _load_movielens_100k(
    directory: Union[str, Path],
    max_ratings: Optional[int],
    aggregation: str,
    valuation_class: str,
) -> DatasetInstance:
    directory = Path(directory)
    for required in ("u.user", "u.item", "u.data"):
        if not (directory / required).exists():
            raise FileNotFoundError(f"{directory / required} not found")

    universe = AnnotationUniverse()
    with open(directory / "u.user", encoding="utf-8") as handle:
        for line in handle:
            fields = line.rstrip("\n").split("|")
            if len(fields) < 5:
                continue
            user_id, age, gender, occupation, zip_code = fields[:5]
            universe.register(
                Annotation(
                    name=f"UID{user_id}",
                    domain="user",
                    attributes={
                        "gender": gender,
                        "age_range": _age_range(int(age)),
                        "occupation": occupation,
                        "zip_region": zip_code[:1],
                    },
                )
            )

    titles: Dict[str, str] = {}
    years: Dict[str, Annotation] = {}
    with open(directory / "u.item", encoding="latin-1") as handle:
        for line in handle:
            fields = line.rstrip("\n").split("|")
            if len(fields) < 5 + len(ML_GENRES):
                continue
            item_id, title, release = fields[0], fields[1], fields[2]
            year = release.rsplit("-", 1)[-1] if release else "unknown"
            flags = fields[-len(ML_GENRES):]
            genres = [
                name for name, flag in zip(ML_GENRES, flags) if flag == "1"
            ]
            genre = genres[0] if genres else "unknown"
            titles[item_id] = title
            year_name = f"Y{year}"
            if year_name not in years:
                decade = (
                    f"{int(year) // 10 * 10}s" if year.isdigit() else "unknown"
                )
                years[year_name] = universe.register(
                    Annotation(year_name, "year", {"decade": decade})
                )
            universe.register(
                Annotation(
                    name=title,
                    domain="movie",
                    attributes={
                        "genre": genre,
                        "year": int(year) if year.isdigit() else 0,
                        "decade": f"{int(year) // 10 * 10}s"
                        if year.isdigit()
                        else "unknown",
                        "_year_annotation": year_name,
                    },
                )
            )

    monoid = monoid_by_name(aggregation)
    terms: List[Term] = []
    with open(directory / "u.data", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            if max_ratings is not None and index >= max_ratings:
                break
            fields = line.split()
            if len(fields) < 3:
                continue
            user_id, item_id, rating = fields[0], fields[1], fields[2]
            title = titles.get(item_id)
            user_name = f"UID{user_id}"
            if title is None or user_name not in universe:
                continue
            year_name = universe[title].attributes["_year_annotation"]
            terms.append(
                Term(
                    annotations=tuple(sorted((user_name, title, year_name))),
                    value=float(rating),
                    count=1,
                    group=title,
                )
            )
    expression = TensorSum(terms, monoid)

    constraint_attributes = ("gender", "age_range", "occupation", "zip_region")
    if valuation_class == "annotation":
        valuations = CancelSingleAnnotation(universe, domains=("user",))
    else:
        valuations = CancelSingleAttribute(
            universe, attributes=constraint_attributes, domains=("user",)
        )
    return DatasetInstance(
        name="Movies (MovieLens-100k)",
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=EuclideanDistance(monoid),
        combiners=DomainCombiners(),
        constraint=DomainConstraints(
            {"user": SharedAttribute(constraint_attributes)}
        ),
        cluster_specs=(ClusterDomainSpec("user"),),
        metadata={
            "structure": "(UserID·MovieTitle·MovieYear) ⊗ (Rating, 1) ⊕ ...",
            "aggregation": aggregation,
            "source": str(directory),
            "n_terms": len(expression),
        },
    )


def load_wikipedia_edits(
    path: Union[str, Path],
    taxonomy: Taxonomy,
    max_taxonomy_distance: float = 0.5,
) -> DatasetInstance:
    """Build a Wikipedia provenance instance from an edit TSV.

    Columns: ``username``, ``page_title``, ``concept`` (a taxonomy
    concept the page instantiates) and ``edit_type`` (0 minor /
    1 major).  A header line starting with ``username`` is skipped.
    User contribution levels are derived from edit counts, as the
    thesis derives them from the MediaWiki statistics.
    """
    span = _tracing.span("load_wikipedia_edits")
    with span:
        instance = _load_wikipedia_edits(path, taxonomy, max_taxonomy_distance)
        span.set("source", str(path))
        span.set("n_terms", len(instance.expression))
        span.set("size", instance.expression.size())
    if _metrics.ENABLED:
        _DATASET_LOADS.inc(loader="wikipedia_edits")
    _LOG.info(
        "dataset_loaded loader=wikipedia_edits source=%s n_terms=%d size=%d",
        path,
        len(instance.expression),
        instance.expression.size(),
    )
    return instance


def _load_wikipedia_edits(
    path: Union[str, Path],
    taxonomy: Taxonomy,
    max_taxonomy_distance: float,
) -> DatasetInstance:
    path = Path(path)
    rows: List[Tuple[str, str, str, float]] = []
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        for fields in reader:
            if not fields or fields[0] == "username":
                continue
            if len(fields) < 4:
                raise ValueError(
                    f"{path}: expected 4 tab-separated columns, got {fields!r}"
                )
            username, page, concept, edit_type = fields[:4]
            if concept not in taxonomy:
                raise ValueError(f"{path}: unknown taxonomy concept {concept!r}")
            rows.append((username, page, concept, float(edit_type)))
    if not rows:
        raise ValueError(f"{path} contains no edits")

    universe = AnnotationUniverse()
    edit_counts: Dict[str, int] = {}
    for username, _, _, _ in rows:
        edit_counts[username] = edit_counts.get(username, 0) + 1
    threshold_top = max(edit_counts.values()) * 2 // 3

    for username, count in edit_counts.items():
        if count >= max(2, threshold_top):
            level = "Top-Contributor"
        elif count >= 2:
            level = "Reviewer"
        else:
            level = "Novice"
        universe.register(
            Annotation(
                username,
                "user",
                {"is_registered": True, "contribution_level": level},
            )
        )
    for _, page, concept, _ in rows:
        if page not in universe:
            universe.register(
                Annotation(page, "page", {"concept": concept}, concept=concept)
            )

    terms = [
        Term(tuple(sorted((username, page))), edit_type, count=1, group=page)
        for username, page, _, edit_type in rows
    ]
    expression = TensorSum(terms, SUM)

    concepts_of = {
        page.name: taxonomy.ancestors(page.concept)
        for page in universe.in_domain("page")
        if page.concept
    }
    valuations = TaxonomyConsistent(
        CancelSingleAnnotation(universe, domains=("user", "page")),
        concepts_of,
        taxonomy.parent_map(),
    )
    return DatasetInstance(
        name="Wikipedia (edit dump)",
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=EuclideanDistance(SUM),
        combiners=DomainCombiners(),
        constraint=DomainConstraints(
            {
                "user": SharedAttribute(("is_registered", "contribution_level")),
                "page": TaxonomyAncestor(taxonomy, max_distance=max_taxonomy_distance),
            }
        ),
        taxonomy=taxonomy,
        cluster_specs=(
            ClusterDomainSpec("user"),
            ClusterDomainSpec("page", key_domain="user"),
        ),
        metadata={
            "structure": "(Username·PageTitle) ⊗ (EditType, 1) ⊕ ...",
            "aggregation": "SUM",
            "source": str(path),
            "n_terms": len(expression),
        },
    )
