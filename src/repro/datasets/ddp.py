"""Synthetic Data-Dependent Process provenance (§5.1 item 3, Example 5.2.2).

A DDP provenance expression sums over *executions*, each a product of
transitions: user-dependent ``⟨c_k, 1⟩`` (cost variable, effort up to
10) and database-dependent ``⟨0, [d_i · d_j] ≠ 0⟩`` / ``= 0`` guards.
Evaluation lives in the tropical semiring; the VAL-FUNC is the cost
difference of Example 5.2.2 with the 10 × 5 infeasibility penalty.

Generator design (DESIGN.md substitution).  The thesis generated DDP
expressions "based on the structure described in [17]" -- executions of
a state machine share structure because they traverse the same states.
We model that with *templates*: each template fixes a sequence of
transition slots (a cost slot drawing from one cost bucket, or a DB
slot drawing from one relation), and every execution instantiates the
template with concrete variables.  Mapping two same-bucket cost
variables (or same-relation DB variables) to one new variable can then
make two instantiations *equal*, at which point the sum of executions
deduplicates and the provenance size drops -- exactly the dynamics of
the thesis's worked example.

Merge constraints (Table 5.1): cost variables sharing a cost bucket
("more or less the same cost") may merge; database variables sharing a
source relation may merge.  ``φ`` combiners: logical OR for DB
variables, MAX for cost variables.  The Cancel-Single-Attribute
valuation class cancels by *exact* cost (cost variables) and by key
range (DB variables) -- both finer than the merge constraints, so
merges trade real distance for size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.combiners import MAXC, OR, DomainCombiners
from ..core.constraints import DomainConstraints, SharedAttribute
from ..core.val_funcs import DDPCostDifference
from ..provenance.annotations import Annotation, AnnotationUniverse
from ..provenance.ddp_expression import (
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
)
from ..provenance.valuation_classes import (
    CancelSingleAnnotation,
    CancelSingleAttribute,
    ValuationClass,
)
from .base import DatasetInstance

#: Table 5.1 / Example 5.2.2 constants: the maximum cost of a single
#: transition and the maximum number of transitions per execution.
MAX_COST_PER_TRANSITION = 10.0
MAX_TRANSITIONS_PER_EXECUTION = 5


@dataclass(frozen=True)
class DDPConfig:
    """Knobs of the DDP provenance generator."""

    n_templates: int = 4
    executions_per_template: int = 5
    min_transitions: int = 2
    max_transitions: int = MAX_TRANSITIONS_PER_EXECUTION
    n_db_vars: int = 12
    n_cost_vars: int = 14
    n_relations: int = 3
    n_key_ranges: int = 4
    n_cost_buckets: int = 3
    equality_guard_probability: float = 0.2
    valuation_class: str = "attribute"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_templates < 1 or self.executions_per_template < 1:
            raise ValueError("need at least one template and one execution")
        if not 1 <= self.min_transitions <= self.max_transitions:
            raise ValueError("invalid transition bounds")
        if self.max_transitions > MAX_TRANSITIONS_PER_EXECUTION:
            raise ValueError(
                f"executions have at most {MAX_TRANSITIONS_PER_EXECUTION} "
                f"transitions (Example 5.2.2)"
            )
        if self.valuation_class not in ("annotation", "attribute"):
            raise ValueError("valuation_class must be 'annotation' or 'attribute'")


def generate_ddp(config: DDPConfig = DDPConfig()) -> DatasetInstance:
    """Generate one DDP provenance instance (seeded)."""
    rng = random.Random(config.seed)
    universe = AnnotationUniverse()

    bucket_width = MAX_COST_PER_TRANSITION / config.n_cost_buckets
    cost_by_bucket: Dict[int, List[Annotation]] = {}
    for index in range(config.n_cost_vars):
        bucket = index % config.n_cost_buckets
        low = bucket * bucket_width
        cost = round(rng.uniform(max(1.0, low), low + bucket_width), 1)
        annotation = universe.register(
            Annotation(
                name=f"c{index + 1}",
                domain="cost",
                attributes={"cost_bucket": f"B{bucket}", "cost": cost},
            )
        )
        cost_by_bucket.setdefault(bucket, []).append(annotation)

    db_by_relation: Dict[int, List[Annotation]] = {}
    for index in range(config.n_db_vars):
        relation = index % config.n_relations
        annotation = universe.register(
            Annotation(
                name=f"d{index + 1}",
                domain="db",
                attributes={
                    "relation": f"R{relation}",
                    "key_range": f"K{rng.randrange(config.n_key_ranges)}",
                },
            )
        )
        db_by_relation.setdefault(relation, []).append(annotation)

    # Templates: a fixed slot sequence; executions instantiate slots
    # with concrete variables from the slot's pool.
    executions: List[Execution] = []
    for _ in range(config.n_templates):
        length = rng.randint(config.min_transitions, config.max_transitions)
        slots: List[Tuple[str, int, str]] = []
        for position in range(length):
            if position % 2 == 0:
                slots.append(("cost", rng.randrange(config.n_cost_buckets), ""))
            else:
                op = (
                    "=="
                    if rng.random() < config.equality_guard_probability
                    else "!="
                )
                slots.append(("db", rng.randrange(config.n_relations), op))
        for _ in range(config.executions_per_template):
            transitions: List[object] = []
            for kind, pool_index, op in slots:
                if kind == "cost":
                    var = rng.choice(cost_by_bucket[pool_index])
                    transitions.append(
                        CostTransition(var.name, float(var.attributes["cost"]))
                    )
                else:
                    pool = db_by_relation[pool_index]
                    if len(pool) >= 2:
                        first, second = rng.sample(pool, 2)
                    else:
                        first = second = pool[0]
                    transitions.append(
                        DBTransition(tuple(sorted({first.name, second.name})), op)
                    )
            executions.append(Execution(transitions))
    expression = DDPExpression(executions)

    if config.valuation_class == "annotation":
        valuations: ValuationClass = CancelSingleAnnotation(universe)
    else:
        # Finer-grained than the merge constraints (exact cost vs cost
        # bucket; key range vs relation), so within-bucket merges have
        # genuine distance cost.
        valuations = CancelSingleAttribute(
            universe, attributes=("cost", "key_range")
        )

    constraint = DomainConstraints(
        {
            "cost": SharedAttribute(("cost_bucket",)),
            "db": SharedAttribute(("relation",)),
        }
    )

    return DatasetInstance(
        name="DDP",
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=DDPCostDifference(
            MAX_COST_PER_TRANSITION, MAX_TRANSITIONS_PER_EXECUTION
        ),
        combiners=DomainCombiners(default=OR, per_domain={"cost": MAXC}),
        constraint=constraint,
        taxonomy=None,
        cluster_specs=(),  # §6.1: no meaningful feature vectors for DDPs
        metadata={
            "structure": "⟨c1,1⟩·⟨0,[d1·d2]≠0⟩ + ⟨0,[d2·d3]=0⟩·⟨c2,1⟩ + ...",
            "aggregation": "tropical (min, +)",
            "config": config,
            "n_executions": len(expression.executions),
        },
    )
