"""repro -- reproduction of *PROX: Approximated Summarization of Data Provenance*.

The package implements the full PROX stack:

* :mod:`repro.provenance` -- the semiring provenance model with
  aggregates (Chapter 2).
* :mod:`repro.db` / :mod:`repro.workflow` -- a provenance-aware
  relational layer and the workflow engine of Figure 2.1.
* :mod:`repro.taxonomy` -- YAGO/WordNet-style taxonomy with Wu-Palmer
  relatedness.
* :mod:`repro.core` -- the summarization algorithm (Algorithm 1), its
  distance machinery, and the Random/Clustering baselines.
* :mod:`repro.clustering` -- agglomerative hierarchical clustering
  (the paper's competitor, built from scratch).
* :mod:`repro.datasets` -- MovieLens / Wikipedia / DDP provenance
  builders (Table 5.1).
* :mod:`repro.experiments` -- harness regenerating every figure of
  Chapter 6.
* :mod:`repro.prox` -- the PROX system services (Chapter 7).
* :mod:`repro.observability` -- metrics (``/metrics``), hierarchical
  tracing spans and structured logging across the whole pipeline.

Quickstart::

    from repro.datasets import MovieLensConfig, generate_movielens
    from repro.core import Summarizer, SummarizationConfig

    instance = generate_movielens(MovieLensConfig(seed=7))
    result = Summarizer(instance.problem(), SummarizationConfig(
        w_dist=0.5, max_steps=20)).run()
    print(result.summary_expression)
"""

__version__ = "1.0.0"
