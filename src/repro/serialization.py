"""JSON (de)serialization of provenance expressions and summaries.

Provenance is long-lived by nature -- it documents how data was derived
-- so a provenance library must be able to persist its expressions and
the summaries computed from them.  This module round-trips:

* :class:`~repro.provenance.annotations.Annotation` /
  :class:`~repro.provenance.annotations.AnnotationUniverse`;
* :class:`~repro.provenance.tensor_sum.TensorSum` (terms, guards and
  aggregation monoid);
* :class:`~repro.provenance.ddp_expression.DDPExpression`;
* summaries: a :class:`~repro.core.summarize.SummarizationResult`'s
  portable part (summary expression + cumulative mapping + groups).

The format is a versioned plain-JSON object; ``load_expression``
dispatches on the recorded ``kind``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Mapping, Union

from .core.summarize import SummarizationResult
from .provenance.annotations import Annotation, AnnotationUniverse
from .provenance.ddp_expression import (
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
)
from .provenance.monoids import monoid_by_name
from .provenance.tensor_sum import Guard, TensorSum, Term

FORMAT_VERSION = 1

Expression = Union[TensorSum, DDPExpression]


class SerializationError(ValueError):
    """Raised on malformed or unsupported payloads."""


# -- annotations ---------------------------------------------------------------


def annotation_to_dict(annotation: Annotation) -> Dict[str, Any]:
    return {
        "name": annotation.name,
        "domain": annotation.domain,
        "attributes": dict(annotation.attributes),
        "concept": annotation.concept,
        "members": sorted(annotation.members),
    }


def annotation_from_dict(data: Mapping[str, Any]) -> Annotation:
    try:
        return Annotation(
            name=data["name"],
            domain=data["domain"],
            attributes=dict(data.get("attributes", {})),
            concept=data.get("concept"),
            members=frozenset(data.get("members", ())),
        )
    except KeyError as missing:
        raise SerializationError(f"annotation payload missing {missing}") from None


def universe_to_dict(universe: AnnotationUniverse) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "universe",
        "annotations": [annotation_to_dict(annotation) for annotation in universe],
    }


def universe_from_dict(data: Mapping[str, Any]) -> AnnotationUniverse:
    _check(data, "universe")
    return AnnotationUniverse(
        annotation_from_dict(entry) for entry in data.get("annotations", ())
    )


# -- tensor sums ----------------------------------------------------------------


def _guard_to_dict(guard: Guard) -> Dict[str, Any]:
    return {
        "annotations": list(guard.annotations),
        "value": guard.value,
        "op": guard.op,
        "threshold": guard.threshold,
    }


def _guard_from_dict(data: Mapping[str, Any]) -> Guard:
    return Guard(
        tuple(data["annotations"]), data["value"], data["op"], data["threshold"]
    )


def tensor_sum_to_dict(expression: TensorSum) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "tensor_sum",
        "monoid": expression.monoid.name,
        "terms": [
            {
                "annotations": list(term.annotations),
                "value": term.value,
                "count": term.count,
                "group": term.group,
                "guards": [_guard_to_dict(guard) for guard in term.guards],
            }
            for term in expression.terms
        ],
    }


def tensor_sum_from_dict(data: Mapping[str, Any]) -> TensorSum:
    _check(data, "tensor_sum")
    try:
        monoid = monoid_by_name(data["monoid"])
        terms = [
            Term(
                annotations=tuple(entry["annotations"]),
                value=float(entry["value"]),
                count=int(entry.get("count", 1)),
                group=entry.get("group"),
                guards=tuple(
                    _guard_from_dict(guard) for guard in entry.get("guards", ())
                ),
            )
            for entry in data["terms"]
        ]
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed tensor_sum payload: {error}") from None
    return TensorSum(terms, monoid)


# -- DDP expressions ---------------------------------------------------------------


def ddp_to_dict(expression: DDPExpression) -> Dict[str, Any]:
    executions = []
    for execution in expression.executions:
        transitions = []
        for transition in execution.transitions:
            if isinstance(transition, CostTransition):
                transitions.append(
                    {"kind": "cost", "var": transition.var, "cost": transition.cost}
                )
            else:
                transitions.append(
                    {
                        "kind": "db",
                        "vars": list(transition.vars),
                        "op": transition.op,
                    }
                )
        executions.append(transitions)
    return {"version": FORMAT_VERSION, "kind": "ddp", "executions": executions}


def ddp_from_dict(data: Mapping[str, Any]) -> DDPExpression:
    _check(data, "ddp")
    executions = []
    try:
        for transitions in data["executions"]:
            parsed = []
            for transition in transitions:
                if transition["kind"] == "cost":
                    parsed.append(
                        CostTransition(transition["var"], float(transition["cost"]))
                    )
                elif transition["kind"] == "db":
                    parsed.append(
                        DBTransition(tuple(transition["vars"]), transition["op"])
                    )
                else:
                    raise SerializationError(
                        f"unknown transition kind {transition['kind']!r}"
                    )
            executions.append(Execution(parsed))
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed ddp payload: {error}") from None
    return DDPExpression(executions)


# -- generic expression dispatch ----------------------------------------------------


def expression_to_dict(expression: Expression) -> Dict[str, Any]:
    if isinstance(expression, TensorSum):
        return tensor_sum_to_dict(expression)
    if isinstance(expression, DDPExpression):
        return ddp_to_dict(expression)
    raise SerializationError(
        f"cannot serialize expression of type {type(expression).__name__}"
    )


def expression_from_dict(data: Mapping[str, Any]) -> Expression:
    kind = data.get("kind")
    if kind == "tensor_sum":
        return tensor_sum_from_dict(data)
    if kind == "ddp":
        return ddp_from_dict(data)
    raise SerializationError(f"unknown expression kind {kind!r}")


# -- summaries ---------------------------------------------------------------------------


def summary_to_dict(result: SummarizationResult) -> Dict[str, Any]:
    """The portable part of a summarization result.

    Enough to *use* the summary later (approximate provisioning needs
    the expression, the cumulative mapping and the summary annotations'
    membership); step telemetry is not persisted.
    """
    summary_annotations = [
        annotation_to_dict(result.universe[name])
        for name in sorted(set(result.mapping.values()))
        if result.universe[name].is_summary
    ]
    return {
        "version": FORMAT_VERSION,
        "kind": "summary",
        "expression": expression_to_dict(result.summary_expression),
        "mapping": result.mapping.as_dict(),
        "summary_annotations": summary_annotations,
        "final_size": result.final_size,
        "final_distance": result.final_distance.normalized,
        "stop_reason": result.stop_reason,
    }


def summary_from_dict(data: Mapping[str, Any]):
    """Load a persisted summary.

    Returns ``(expression, mapping_dict, annotations)`` where
    ``annotations`` are the summary annotations to re-register into a
    universe before lifting valuations.
    """
    _check(data, "summary")
    expression = expression_from_dict(data["expression"])
    mapping = dict(data["mapping"])
    annotations = [
        annotation_from_dict(entry) for entry in data.get("summary_annotations", ())
    ]
    return expression, mapping, annotations


# -- file helpers ---------------------------------------------------------------------------


def dump(payload: Dict[str, Any], target: IO[str]) -> None:
    json.dump(payload, target, ensure_ascii=False, indent=2, sort_keys=True)


def dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, ensure_ascii=False, sort_keys=True)


def load_expression(source: Union[str, IO[str]]) -> Expression:
    data = json.loads(source) if isinstance(source, str) else json.load(source)
    return expression_from_dict(data)


def _check(data: Mapping[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise SerializationError(
            f"expected kind {kind!r}, got {data.get('kind')!r}"
        )
    version = data.get("version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"payload version {version} is newer than supported {FORMAT_VERSION}"
        )
