"""JSON (de)serialization of provenance expressions and summaries.

Provenance is long-lived by nature -- it documents how data was derived
-- so a provenance library must be able to persist its expressions and
the summaries computed from them.  This module round-trips:

* :class:`~repro.provenance.annotations.Annotation` /
  :class:`~repro.provenance.annotations.AnnotationUniverse`;
* :class:`~repro.provenance.tensor_sum.TensorSum` (terms, guards and
  aggregation monoid);
* :class:`~repro.provenance.ddp_expression.DDPExpression`;
* summaries: a :class:`~repro.core.summarize.SummarizationResult`'s
  portable part (summary expression + cumulative mapping + groups).

The format is a versioned plain-JSON object; ``load_expression``
dispatches on the recorded ``kind``.

Format version 2 adds the compact columnar encodings of the interned
IR (:mod:`repro.provenance.ir`): a ``term_store`` payload persists an
arena -- interned annotation names in id order plus the flat
``(annotation-id, exponent)`` pair array and its monomial bounds --
as either JSON columns or a packed little-endian binary blob, and a
``polynomial`` payload persists one polynomial against a *local*
mini-arena (ids re-densified to the monomials it actually uses), so
polynomials round-trip independently of any process-wide store.
Version-1 payloads still load.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple, Union

from .core.streaming import ProvenanceDelta
from .core.summarize import SummarizationResult
from .provenance.annotations import Annotation, AnnotationUniverse
from .provenance.ddp_expression import (
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
)
from .provenance.ir import AnnotationInterner, TermStore
from .provenance.monoids import monoid_by_name
from .provenance.polynomial import Polynomial
from .provenance.tensor_sum import Guard, TensorSum, Term
from .provenance.valuation import Valuation

FORMAT_VERSION = 2

Expression = Union[TensorSum, DDPExpression]


class SerializationError(ValueError):
    """Raised on malformed or unsupported payloads."""


# -- annotations ---------------------------------------------------------------


def annotation_to_dict(annotation: Annotation) -> Dict[str, Any]:
    return {
        "name": annotation.name,
        "domain": annotation.domain,
        "attributes": dict(annotation.attributes),
        "concept": annotation.concept,
        "members": sorted(annotation.members),
    }


def annotation_from_dict(data: Mapping[str, Any]) -> Annotation:
    try:
        return Annotation(
            name=data["name"],
            domain=data["domain"],
            attributes=dict(data.get("attributes", {})),
            concept=data.get("concept"),
            members=frozenset(data.get("members", ())),
        )
    except KeyError as missing:
        raise SerializationError(f"annotation payload missing {missing}") from None


def universe_to_dict(universe: AnnotationUniverse) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "universe",
        "annotations": [annotation_to_dict(annotation) for annotation in universe],
    }


def universe_from_dict(data: Mapping[str, Any]) -> AnnotationUniverse:
    _check(data, "universe")
    return AnnotationUniverse(
        annotation_from_dict(entry) for entry in data.get("annotations", ())
    )


# -- tensor sums ----------------------------------------------------------------


def _guard_to_dict(guard: Guard) -> Dict[str, Any]:
    return {
        "annotations": list(guard.annotations),
        "value": guard.value,
        "op": guard.op,
        "threshold": guard.threshold,
    }


def _guard_from_dict(data: Mapping[str, Any]) -> Guard:
    return Guard(
        tuple(data["annotations"]), data["value"], data["op"], data["threshold"]
    )


def _term_to_dict(term: Term) -> Dict[str, Any]:
    return {
        "annotations": list(term.annotations),
        "value": term.value,
        "count": term.count,
        "group": term.group,
        "guards": [_guard_to_dict(guard) for guard in term.guards],
    }


def _term_from_dict(entry: Mapping[str, Any]) -> Term:
    return Term(
        annotations=tuple(entry["annotations"]),
        value=float(entry["value"]),
        count=int(entry.get("count", 1)),
        group=entry.get("group"),
        guards=tuple(
            _guard_from_dict(guard) for guard in entry.get("guards", ())
        ),
    )


def tensor_sum_to_dict(expression: TensorSum) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "tensor_sum",
        "monoid": expression.monoid.name,
        "terms": [_term_to_dict(term) for term in expression.terms],
    }


def tensor_sum_from_dict(data: Mapping[str, Any]) -> TensorSum:
    _check(data, "tensor_sum")
    try:
        monoid = monoid_by_name(data["monoid"])
        terms = [_term_from_dict(entry) for entry in data["terms"]]
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed tensor_sum payload: {error}") from None
    return TensorSum(terms, monoid)


# -- streaming deltas -----------------------------------------------------------


def valuation_to_dict(valuation: Valuation) -> Dict[str, Any]:
    return {
        "assignment": dict(valuation.assignment),
        "default": valuation.default,
        "weight": valuation.weight,
        "label": valuation.label,
    }


def valuation_from_dict(data: Mapping[str, Any]) -> Valuation:
    try:
        return Valuation(
            assignment={
                name: float(value)
                for name, value in dict(data.get("assignment", {})).items()
            },
            default=float(data.get("default", 1.0)),
            weight=float(data.get("weight", 1.0)),
            label=str(data.get("label", "")),
        )
    except (TypeError, ValueError) as error:
        raise SerializationError(f"malformed valuation payload: {error}") from None


def delta_to_dict(delta: ProvenanceDelta) -> Dict[str, Any]:
    """Wire encoding of one append-only streaming delta."""
    return {
        "version": FORMAT_VERSION,
        "kind": "delta",
        "annotations": [
            annotation_to_dict(annotation) for annotation in delta.annotations
        ],
        "terms": [_term_to_dict(term) for term in delta.terms],
        "valuations": [
            valuation_to_dict(valuation) for valuation in delta.valuations
        ],
        "extend_valuations": {
            label: list(names)
            for label, names in delta.extend_valuations.items()
        },
    }


def delta_from_dict(data: Mapping[str, Any]) -> ProvenanceDelta:
    _check(data, "delta")
    try:
        return ProvenanceDelta(
            annotations=tuple(
                annotation_from_dict(entry)
                for entry in data.get("annotations", ())
            ),
            terms=tuple(
                _term_from_dict(entry) for entry in data.get("terms", ())
            ),
            valuations=tuple(
                valuation_from_dict(entry)
                for entry in data.get("valuations", ())
            ),
            extend_valuations={
                label: tuple(names)
                for label, names in dict(
                    data.get("extend_valuations", {})
                ).items()
            },
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed delta payload: {error}") from None


# -- DDP expressions ---------------------------------------------------------------


def ddp_to_dict(expression: DDPExpression) -> Dict[str, Any]:
    executions = []
    for execution in expression.executions:
        transitions = []
        for transition in execution.transitions:
            if isinstance(transition, CostTransition):
                transitions.append(
                    {"kind": "cost", "var": transition.var, "cost": transition.cost}
                )
            else:
                transitions.append(
                    {
                        "kind": "db",
                        "vars": list(transition.vars),
                        "op": transition.op,
                    }
                )
        executions.append(transitions)
    return {"version": FORMAT_VERSION, "kind": "ddp", "executions": executions}


def ddp_from_dict(data: Mapping[str, Any]) -> DDPExpression:
    _check(data, "ddp")
    executions = []
    try:
        for transitions in data["executions"]:
            parsed = []
            for transition in transitions:
                if transition["kind"] == "cost":
                    parsed.append(
                        CostTransition(transition["var"], float(transition["cost"]))
                    )
                elif transition["kind"] == "db":
                    parsed.append(
                        DBTransition(tuple(transition["vars"]), transition["op"])
                    )
                else:
                    raise SerializationError(
                        f"unknown transition kind {transition['kind']!r}"
                    )
            executions.append(Execution(parsed))
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed ddp payload: {error}") from None
    return DDPExpression(executions)


# -- generic expression dispatch ----------------------------------------------------


def expression_to_dict(expression: Expression) -> Dict[str, Any]:
    if isinstance(expression, TensorSum):
        return tensor_sum_to_dict(expression)
    if isinstance(expression, DDPExpression):
        return ddp_to_dict(expression)
    raise SerializationError(
        f"cannot serialize expression of type {type(expression).__name__}"
    )


def expression_from_dict(data: Mapping[str, Any]) -> Expression:
    kind = data.get("kind")
    if kind == "tensor_sum":
        return tensor_sum_from_dict(data)
    if kind == "ddp":
        return ddp_from_dict(data)
    raise SerializationError(f"unknown expression kind {kind!r}")


# -- summaries ---------------------------------------------------------------------------


def summary_to_dict(result: SummarizationResult) -> Dict[str, Any]:
    """The portable part of a summarization result.

    Enough to *use* the summary later (approximate provisioning needs
    the expression, the cumulative mapping and the summary annotations'
    membership); step telemetry is not persisted.
    """
    summary_annotations = [
        annotation_to_dict(result.universe[name])
        for name in sorted(set(result.mapping.values()))
        if result.universe[name].is_summary
    ]
    return {
        "version": FORMAT_VERSION,
        "kind": "summary",
        "expression": expression_to_dict(result.summary_expression),
        "mapping": result.mapping.as_dict(),
        "summary_annotations": summary_annotations,
        "final_size": result.final_size,
        "final_distance": result.final_distance.normalized,
        "stop_reason": result.stop_reason,
    }


def summary_from_dict(data: Mapping[str, Any]):
    """Load a persisted summary.

    Returns ``(expression, mapping_dict, annotations)`` where
    ``annotations`` are the summary annotations to re-register into a
    universe before lifting valuations.
    """
    _check(data, "summary")
    expression = expression_from_dict(data["expression"])
    mapping = dict(data["mapping"])
    annotations = [
        annotation_from_dict(entry) for entry in data.get("summary_annotations", ())
    ]
    return expression, mapping, annotations


# -- interned IR: term stores and polynomials (format version 2) ---------------

#: Magic prefix of the packed binary arena encoding.
_ARENA_MAGIC = b"PROXIR"


def term_store_to_dict(store: TermStore) -> Dict[str, Any]:
    """Columnar JSON encoding of an arena: names + flat pair columns."""
    return {
        "version": FORMAT_VERSION,
        "kind": "term_store",
        "annotations": list(store.interner),
        "pair_data": list(store._pair_data),
        "bounds": list(store._bounds),
    }


def term_store_from_dict(data: Mapping[str, Any]) -> TermStore:
    _check(data, "term_store")
    try:
        names = list(data["annotations"])
        pair_data = [int(value) for value in data["pair_data"]]
        bounds = [int(value) for value in data["bounds"]]
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed term_store payload: {error}") from None
    return _rebuild_store(names, pair_data, bounds)


def term_store_to_bytes(store: TermStore) -> bytes:
    """Packed little-endian binary encoding of an arena.

    Layout: ``PROXIR`` magic, u16 version, u32 name-block length, the
    NUL-separated UTF-8 name block, u64 pair count, u64 bound count,
    then the two int64 columns.  Dense and endian-stable -- the compact
    on-disk form for session snapshots.
    """
    names_blob = b"\x00".join(
        name.encode("utf-8") for name in store.interner
    )
    pair_data = store._pair_data
    bounds = store._bounds
    header = _ARENA_MAGIC + struct.pack(
        "<HIQQ", FORMAT_VERSION, len(names_blob), len(pair_data), len(bounds)
    )
    return (
        header
        + names_blob
        + struct.pack(f"<{len(pair_data)}q", *pair_data)
        + struct.pack(f"<{len(bounds)}q", *bounds)
    )


def term_store_from_bytes(blob: bytes) -> TermStore:
    if not blob.startswith(_ARENA_MAGIC):
        raise SerializationError("not a packed arena payload (bad magic)")
    offset = len(_ARENA_MAGIC)
    try:
        version, names_len, n_pairs, n_bounds = struct.unpack_from(
            "<HIQQ", blob, offset
        )
        offset += struct.calcsize("<HIQQ")
        if version > FORMAT_VERSION:
            raise SerializationError(
                f"payload version {version} is newer than supported {FORMAT_VERSION}"
            )
        names_blob = blob[offset : offset + names_len]
        offset += names_len
        names = (
            [part.decode("utf-8") for part in names_blob.split(b"\x00")]
            if names_blob
            else []
        )
        pair_data = list(struct.unpack_from(f"<{n_pairs}q", blob, offset))
        offset += 8 * n_pairs
        bounds = list(struct.unpack_from(f"<{n_bounds}q", blob, offset))
    except struct.error as error:
        raise SerializationError(f"truncated arena payload: {error}") from None
    return _rebuild_store(names, pair_data, bounds)


def _rebuild_store(
    names: List[str], pair_data: List[int], bounds: List[int]
) -> TermStore:
    """Re-intern a persisted arena (monomial ids are preserved)."""
    if not bounds or bounds[0] != 0:
        raise SerializationError("arena bounds must start at 0")
    if bounds[-1] != len(pair_data):
        raise SerializationError("arena bounds do not cover the pair data")
    store = TermStore(AnnotationInterner(names))
    n_names = len(names)
    for mono in range(1, len(bounds) - 1):
        start, end = bounds[mono], bounds[mono + 1]
        if end < start or (end - start) % 2:
            raise SerializationError(f"malformed monomial slice at id {mono}")
        flat = tuple(pair_data[start:end])
        for ann_id, exponent in zip(flat[0::2], flat[1::2]):
            if not 0 <= ann_id < n_names:
                raise SerializationError(
                    f"monomial {mono} references unknown annotation id {ann_id}"
                )
            if exponent <= 0:
                raise SerializationError(
                    f"monomial {mono} has non-positive exponent {exponent}"
                )
        if store.intern_monomial(flat) != mono:
            raise SerializationError(
                f"arena monomials are not canonical/deduplicated at id {mono}"
            )
    return store


# -- mmap-able arena snapshots (format version 3) -------------------------------
#
# The v2 ``PROXIR`` blob above is compact but *parse-on-load*: every
# int64 is unpacked into Python objects.  The arena *snapshot* layout
# below is the zero-copy extension the serving tier evicts and
# rehydrates sessions through: every block sits at an 8-byte-aligned
# offset, so a loader can ``mmap`` the file and hand the pair/bounds/
# sizes blocks to :meth:`repro.provenance.ir.TermStore.from_buffers`
# as ``memoryview('q')``s -- restore touches no monomial bytes at all.
#
# Layout (all offsets 8-aligned)::
#
#     0   magic  b"PROXAR03"
#     8   <QQQQQ> names_len, n_pairs, n_bounds, n_sizes, flags
#     48  name block   names_len bytes of NUL-separated UTF-8, padded to 8
#     .   pair block   n_pairs  * int64 (native order; flags bit 0 = LE)
#     .   bounds block n_bounds * int64
#     .   sizes block  n_sizes  * int64
#
# ``flags`` bit 0 records the writer's endianness; a reader on the
# other endianness falls back to an eager (copying) decode.

_ARENA_SNAPSHOT_MAGIC = b"PROXAR03"
_ARENA_SNAPSHOT_HEADER = "<QQQQQ"
_FLAG_LITTLE_ENDIAN = 1


def _pad8(length: int) -> int:
    return (-length) % 8


def _int64_bytes(column) -> bytes:
    """Native-order packed bytes of an arena column (array or IntColumn)."""
    if isinstance(column, array):
        return column.tobytes()
    return array("q", iter(column)).tobytes()


def arena_snapshot_bytes(store: TermStore) -> bytes:
    """The word-aligned, mmap-able snapshot encoding of an arena.

    Re-snapshotting a store loaded by :func:`load_arena_snapshot` (with
    no intervening appends) is byte-identical -- the golden round-trip
    the serving tier's eviction path relies on.
    """
    names_blob = b"\x00".join(name.encode("utf-8") for name in store.interner)
    pair_bytes = _int64_bytes(store._pair_data)
    bounds_bytes = _int64_bytes(store._bounds)
    sizes_bytes = _int64_bytes(store._mono_sizes)
    flags = _FLAG_LITTLE_ENDIAN if sys.byteorder == "little" else 0
    parts = [
        _ARENA_SNAPSHOT_MAGIC,
        struct.pack(
            _ARENA_SNAPSHOT_HEADER,
            len(names_blob),
            len(pair_bytes) // 8,
            len(bounds_bytes) // 8,
            len(sizes_bytes) // 8,
            flags,
        ),
        names_blob,
        b"\x00" * _pad8(len(names_blob)),
        pair_bytes,
        bounds_bytes,
        sizes_bytes,
    ]
    return b"".join(parts)


def arena_snapshot_length(buffer, offset: int = 0) -> int:
    """Total byte length of the snapshot starting at ``offset``."""
    names_len, n_pairs, n_bounds, n_sizes, _ = struct.unpack_from(
        _ARENA_SNAPSHOT_HEADER, buffer, offset + len(_ARENA_SNAPSHOT_MAGIC)
    )
    header = len(_ARENA_SNAPSHOT_MAGIC) + struct.calcsize(_ARENA_SNAPSHOT_HEADER)
    return header + names_len + _pad8(names_len) + 8 * (n_pairs + n_bounds + n_sizes)


def arena_from_buffer(buffer: memoryview, offset: int = 0) -> TermStore:
    """Wrap one arena snapshot inside ``buffer`` without copying it.

    ``buffer`` is typically a ``memoryview`` over an ``mmap``; the
    returned store's pair/bounds/sizes columns read straight from it
    (appends go to a private tail -- see
    :class:`repro.provenance.ir.IntColumn`).  ``offset`` must be
    8-aligned relative to the mapping.
    """
    if bytes(buffer[offset : offset + len(_ARENA_SNAPSHOT_MAGIC)]) != (
        _ARENA_SNAPSHOT_MAGIC
    ):
        raise SerializationError("not an arena snapshot (bad magic)")
    header_at = offset + len(_ARENA_SNAPSHOT_MAGIC)
    try:
        names_len, n_pairs, n_bounds, n_sizes, flags = struct.unpack_from(
            _ARENA_SNAPSHOT_HEADER, buffer, header_at
        )
    except struct.error as error:
        raise SerializationError(f"truncated arena snapshot: {error}") from None
    cursor = header_at + struct.calcsize(_ARENA_SNAPSHOT_HEADER)
    names_blob = bytes(buffer[cursor : cursor + names_len])
    if len(names_blob) != names_len:
        raise SerializationError("truncated arena snapshot name block")
    cursor += names_len + _pad8(names_len)
    writer_little = bool(flags & _FLAG_LITTLE_ENDIAN)
    if writer_little != (sys.byteorder == "little"):
        # Cross-endian snapshot: fall back to an eager decode (correct,
        # but copying) through the v2 rebuild path.
        endian = "<" if writer_little else ">"
        pair_data = list(
            struct.unpack_from(f"{endian}{n_pairs}q", buffer, cursor)
        )
        bounds = list(
            struct.unpack_from(f"{endian}{n_bounds}q", buffer, cursor + 8 * n_pairs)
        )
        names = (
            [part.decode("utf-8") for part in names_blob.split(b"\x00")]
            if names_blob
            else []
        )
        return _rebuild_store(names, pair_data, bounds)
    end_pairs = cursor + 8 * n_pairs
    end_bounds = end_pairs + 8 * n_bounds
    end_sizes = end_bounds + 8 * n_sizes
    if end_sizes > len(buffer):
        raise SerializationError("truncated arena snapshot blocks")
    pair_base = buffer[cursor:end_pairs].cast("q")
    bounds_base = buffer[end_pairs:end_bounds].cast("q")
    sizes_base = buffer[end_bounds:end_sizes].cast("q")
    try:
        return TermStore.from_buffers(names_blob, pair_base, bounds_base, sizes_base)
    except ValueError as error:
        raise SerializationError(str(error)) from None


def write_arena_snapshot(store: TermStore, path: Union[str, os.PathLike]) -> int:
    """Write one arena snapshot file; returns the byte count."""
    blob = arena_snapshot_bytes(store)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_arena_snapshot(path: Union[str, os.PathLike]) -> TermStore:
    """mmap an arena snapshot file and wrap it zero-copy.

    The mapping stays alive for as long as the returned store's column
    views reference it; the file descriptor is closed immediately.
    """
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return arena_from_buffer(memoryview(mapped))


# -- session snapshots ----------------------------------------------------------
#
# One file per evicted session: a JSON meta document (the replayable
# event log -- dataset recipe, selection, ingested deltas, last
# summarize request) followed by the session interner's name block and
# the word-aligned arena snapshot, both at 8-aligned offsets so
# restore can mmap the file once and wrap every block read-only.

_SESSION_SNAPSHOT_MAGIC = b"PROXSN01"
_SESSION_SNAPSHOT_HEADER = "<QQQ"


def write_session_snapshot(
    path: Union[str, os.PathLike],
    meta: Dict[str, Any],
    interner_names: Optional[List[str]] = None,
    store: Optional[TermStore] = None,
) -> int:
    """Write a session snapshot; returns the byte count."""
    meta_blob = json.dumps(meta, ensure_ascii=False, sort_keys=True).encode("utf-8")
    names_blob = (
        b"\x00".join(name.encode("utf-8") for name in interner_names)
        if interner_names
        else b""
    )
    arena_blob = arena_snapshot_bytes(store) if store is not None else b""
    parts = [
        _SESSION_SNAPSHOT_MAGIC,
        struct.pack(
            _SESSION_SNAPSHOT_HEADER, len(meta_blob), len(names_blob), len(arena_blob)
        ),
        meta_blob,
        b"\x00" * _pad8(len(meta_blob)),
        names_blob,
        b"\x00" * _pad8(len(names_blob)),
        arena_blob,
    ]
    blob = b"".join(parts)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_session_snapshot(
    path: Union[str, os.PathLike],
) -> Tuple[Dict[str, Any], bytes, Optional[TermStore]]:
    """mmap a session snapshot: ``(meta, interner name blob, store)``.

    The meta document and interner block are materialized (they are
    small); the arena -- the bulk of the file -- is wrapped zero-copy.
    ``store`` is ``None`` when the snapshot carried no arena (legacy
    IR mode).
    """
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    buffer = memoryview(mapped)
    if bytes(buffer[: len(_SESSION_SNAPSHOT_MAGIC)]) != _SESSION_SNAPSHOT_MAGIC:
        raise SerializationError("not a session snapshot (bad magic)")
    try:
        meta_len, names_len, arena_len = struct.unpack_from(
            _SESSION_SNAPSHOT_HEADER, buffer, len(_SESSION_SNAPSHOT_MAGIC)
        )
    except struct.error as error:
        raise SerializationError(f"truncated session snapshot: {error}") from None
    cursor = len(_SESSION_SNAPSHOT_MAGIC) + struct.calcsize(_SESSION_SNAPSHOT_HEADER)
    try:
        meta = json.loads(bytes(buffer[cursor : cursor + meta_len]))
    except json.JSONDecodeError as error:
        raise SerializationError(f"malformed session meta: {error}") from None
    cursor += meta_len + _pad8(meta_len)
    names_blob = bytes(buffer[cursor : cursor + names_len])
    cursor += names_len + _pad8(names_len)
    store = arena_from_buffer(buffer, cursor) if arena_len else None
    return meta, names_blob, store


def polynomial_to_dict(polynomial: Polynomial) -> Dict[str, Any]:
    """Columnar encoding of one polynomial against a local mini-arena.

    Annotation and monomial ids are re-densified to the polynomial's
    own support, so the payload is independent of whatever process-wide
    store produced it (and of ``REPRO_IR`` mode entirely).
    """
    local_names: List[str] = []
    name_ids: Dict[str, int] = {}
    pair_data: List[int] = []
    bounds = [0]
    mono_ids: List[int] = []
    coefficients: List[int] = []
    for monomial, coefficient in sorted(polynomial.terms().items()):
        id_pairs = []
        for name, exponent in monomial:
            local = name_ids.get(name)
            if local is None:
                local = name_ids[name] = len(local_names)
                local_names.append(name)
            id_pairs.append((local, exponent))
        for local, exponent in sorted(id_pairs):
            pair_data.append(local)
            pair_data.append(exponent)
        bounds.append(len(pair_data))
        mono_ids.append(len(mono_ids))
        coefficients.append(coefficient)
    return {
        "version": FORMAT_VERSION,
        "kind": "polynomial",
        "annotations": local_names,
        "pair_data": pair_data,
        "bounds": bounds,
        "monomials": mono_ids,
        "coefficients": coefficients,
    }


def polynomial_from_dict(data: Mapping[str, Any]) -> Polynomial:
    _check(data, "polynomial")
    try:
        names = list(data["annotations"])
        pair_data = list(data["pair_data"])
        bounds = list(data["bounds"])
        mono_ids = list(data["monomials"])
        coefficients = list(data["coefficients"])
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed polynomial payload: {error}") from None
    if len(mono_ids) != len(coefficients):
        raise SerializationError("monomial and coefficient columns differ in length")
    terms: Dict[Any, int] = {}
    try:
        for mono, coefficient in zip(mono_ids, coefficients):
            start, end = bounds[mono], bounds[mono + 1]
            monomial = tuple(
                sorted(
                    (names[pair_data[i]], pair_data[i + 1])
                    for i in range(start, end, 2)
                )
            )
            terms[monomial] = terms.get(monomial, 0) + int(coefficient)
    except IndexError as error:
        raise SerializationError(f"malformed polynomial payload: {error}") from None
    return Polynomial(terms)


# -- file helpers ---------------------------------------------------------------------------


def dump(payload: Dict[str, Any], target: IO[str]) -> None:
    json.dump(payload, target, ensure_ascii=False, indent=2, sort_keys=True)


def dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, ensure_ascii=False, sort_keys=True)


def load_expression(source: Union[str, IO[str]]) -> Expression:
    data = json.loads(source) if isinstance(source, str) else json.load(source)
    return expression_from_dict(data)


def _check(data: Mapping[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise SerializationError(
            f"expected kind {kind!r}, got {data.get('kind')!r}"
        )
    version = data.get("version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"payload version {version} is newer than supported {FORMAT_VERSION}"
        )
