"""ASCII line charts for experiment series.

The thesis presents its evaluation as line plots; terminal
reproductions deserve at least a sketch of the same curves.  The
renderer places one mark per series on a character grid with y-axis
labels, so a bench's output can show the figure's *shape* directly:

    0.0220 |                                        r
           |  r    r    r     r
    0.0165 |  c    c    c     c    c     r
           |  p
    0.0110 |       p    p
           |                  p
    0.0055 |
           |                       p
    0.0000 +-----------------------------------------
             0.00 0.25 0.50 0.75 1.00    (wDist)

Pure string manipulation, no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def render_chart(
    series: Mapping[str, Series],
    width: int = 48,
    height: int = 12,
    x_label: str = "",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render named series as an ASCII chart.

    Each series is marked with the first character of its name;
    collisions show ``*``.  ``y_range`` defaults to the data's span
    (padded so flat lines stay visible).
    """
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    if y_range is not None:
        y_low, y_high = y_range
    else:
        y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        pad = abs(y_high) * 0.1 or 1.0
        y_low, y_high = y_low - pad, y_high + pad

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        row = height - 1 - row
        current = grid[row][column]
        grid[row][column] = mark if current in (" ", mark) else "*"

    for name, values in series.items():
        mark = name[0] if name else "?"
        for x, y in values:
            place(x, y, mark)

    label_width = max(
        len(f"{y_low:.4g}"), len(f"{y_high:.4g}"), len(f"{(y_low + y_high) / 2:.4g}")
    )
    lines = []
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_high:.4g}"
        elif index == height - 1:
            label = f"{y_low:.4g}"
        elif index == height // 2:
            label = f"{(y_low + y_high) / 2:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = f"{'':>{label_width}} +" + "-" * width
    lines.append(axis)
    footer_parts = [f"x: {x_low:.4g} … {x_high:.4g}"]
    if x_label:
        footer_parts.append(f"({x_label})")
    footer_parts.append(
        "marks: " + ", ".join(f"{name[0]}={name}" for name in series)
    )
    lines.append(f"{'':>{label_width}}  " + "  ".join(footer_parts))
    return "\n".join(lines)


def chart_from_rows(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    split_by: str,
    **kwargs,
) -> str:
    """Convenience: build the series dict from experiment rows."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        key = str(row[split_by])
        series.setdefault(key, []).append((float(row[x]), float(row[y])))
    for values in series.values():
        values.sort()
    return render_chart(series, x_label=x, **kwargs)
