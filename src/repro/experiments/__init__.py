"""Experiment harness regenerating every Chapter 6 figure."""

from .configs import (
    BENCH_WDIST_GRID,
    DEFAULT_SEEDS,
    MAX_STEPS,
    ddp_spec,
    movielens_spec,
    wikipedia_spec,
)
from .full_reproduction import reproduce_all
from .report import (
    all_passed,
    check_shapes,
    format_rows,
    mean_of,
    series,
    trend,
    weakly_monotone,
    write_csv,
)
from .runner import (
    ALGORITHMS,
    WDIST_GRID,
    DatasetSpec,
    execute,
    steps_experiment,
    target_dist_experiment,
    target_size_experiment,
    timing_experiment,
    usage_ratio,
    usage_time_experiment,
    wdist_experiment,
)

__all__ = [
    "ALGORITHMS",
    "BENCH_WDIST_GRID",
    "DEFAULT_SEEDS",
    "DatasetSpec",
    "MAX_STEPS",
    "WDIST_GRID",
    "all_passed",
    "check_shapes",
    "ddp_spec",
    "execute",
    "format_rows",
    "mean_of",
    "reproduce_all",
    "movielens_spec",
    "series",
    "steps_experiment",
    "target_dist_experiment",
    "target_size_experiment",
    "timing_experiment",
    "trend",
    "usage_ratio",
    "usage_time_experiment",
    "wdist_experiment",
    "weakly_monotone",
    "write_csv",
    "wikipedia_spec",
]
