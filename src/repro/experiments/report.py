"""Row formatting and shape checks for the Chapter 6 reproductions.

The reproduction cannot (and need not) match the thesis's absolute
numbers -- our datasets are synthetic substitutes -- but the *shapes*
of the figures must hold: who wins, which direction each curve moves,
where the tradeoffs appear.  :func:`check_shapes` encodes those
expectations as named predicates over experiment rows; the bench
targets print the verdicts and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render result rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0])

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(render(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = [
        "  ".join(column.ljust(widths[column]) for column in columns),
        "  ".join("-" * widths[column] for column in columns),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                render(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def series(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    where: Optional[Mapping[str, object]] = None,
) -> List[Tuple[object, float]]:
    """Extract an ``(x, y)`` series matching the ``where`` filter."""
    out = []
    for row in rows:
        if where and any(row.get(key) != value for key, value in where.items()):
            continue
        out.append((row[x], float(row[y])))
    out.sort(key=lambda pair: pair[0])
    return out


def mean_of(
    rows: Sequence[Mapping[str, object]],
    metric: str,
    where: Optional[Mapping[str, object]] = None,
) -> float:
    values = [pair[1] for pair in series(rows, metric, metric, where)]
    if not values:
        raise ValueError(f"no rows match {where!r}")
    return sum(values) / len(values)


def weakly_monotone(
    values: Sequence[float], direction: str, tolerance: float = 0.0
) -> bool:
    """Whether ``values`` are weakly increasing/decreasing up to noise.

    ``tolerance`` forgives small counter-movements (sampling noise and
    discrete step effects produce local wiggles in the thesis's plots
    too -- see the TARGET-SIZE discussion of the Random baseline in
    §6.5).
    """
    if direction not in ("increasing", "decreasing"):
        raise ValueError("direction must be 'increasing' or 'decreasing'")
    sign = 1.0 if direction == "increasing" else -1.0
    return all(
        sign * (after - before) >= -tolerance
        for before, after in zip(values, values[1:])
    )


def trend(values: Sequence[float]) -> float:
    """Last-minus-first; the direction a curve moves over its grid."""
    if len(values) < 2:
        return 0.0
    return values[-1] - values[0]


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write experiment rows as CSV (for external plotting)."""
    import csv

    if not rows:
        raise ValueError("cannot write an empty row set")
    if columns is None:
        columns = list(rows[0])
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})


ShapeCheck = Tuple[str, bool]


def check_shapes(checks: Sequence[ShapeCheck]) -> str:
    """Render shape-check verdicts; used by benches and EXPERIMENTS.md."""
    lines = []
    for description, passed in checks:
        marker = "OK  " if passed else "FAIL"
        lines.append(f"[{marker}] {description}")
    return "\n".join(lines)


def all_passed(checks: Sequence[ShapeCheck]) -> bool:
    return all(passed for _, passed in checks)
