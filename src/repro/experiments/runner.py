"""Experiment runner regenerating the measurements of Chapter 6.

Every figure of the thesis's evaluation is an average, over several
generated provenance expressions, of some property of the summaries
produced by the three algorithms (Prov-Approx / Clustering / Random).
This module provides:

* :func:`execute` -- run one algorithm on a freshly generated dataset
  instance;
* the per-experiment loops (``wdist_experiment``,
  ``target_size_experiment``, ``target_dist_experiment``,
  ``steps_experiment``, ``usage_time_experiment``,
  ``timing_experiment``) returning plain row dictionaries -- the same
  rows the thesis plots;
* :func:`usage_ratio` -- the Fig. 6.4 measurement: wall-clock ratio of
  evaluating random valuations on the summary vs the original.

Each run regenerates its dataset instance from the seed, because
summarizers register summary annotations into the instance's universe.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.baselines import ClusteringSummarizer, RandomSummarizer
from ..core.problem import SummarizationConfig
from ..core.summarize import SummarizationResult, Summarizer
from ..datasets.base import DatasetInstance
from ..observability import log as _log
from ..observability import metrics as _metrics
from ..observability import tracing as _tracing
from ..provenance.ddp_expression import DDPExpression

_LOG = _log.get_logger("experiments.runner")
_EXPERIMENT_RUNS = _metrics.counter(
    "prox_experiment_runs_total",
    "Single algorithm executions inside experiment loops, by algorithm.",
    labelnames=("algorithm",),
)

#: The three §6.1 algorithms.
ALGORITHMS = ("prov-approx", "clustering", "random")

#: The wDist grid the thesis sweeps (Figs 6.1a-6.3).
WDIST_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seedable dataset factory."""

    name: str
    factory: Callable[[int], DatasetInstance]


def execute(
    spec: DatasetSpec,
    algorithm: str,
    config: SummarizationConfig,
    seed: int,
    linkage: str = "single",
) -> SummarizationResult:
    """Run ``algorithm`` on a fresh instance generated from ``seed``."""
    span = _tracing.span("execute")
    with span:
        result = _execute(spec, algorithm, config, seed, linkage)
        span.set("dataset", spec.name)
        span.set("algorithm", algorithm)
        span.set("seed", seed)
        span.set("final_size", result.final_size)
    if _metrics.ENABLED:
        _EXPERIMENT_RUNS.inc(algorithm=algorithm)
    _LOG.debug(
        "experiment_run dataset=%s algorithm=%s seed=%d steps=%d "
        "final_size=%d seconds=%.3f",
        spec.name,
        algorithm,
        seed,
        result.n_steps,
        result.final_size,
        result.total_seconds,
    )
    return result


def _execute(
    spec: DatasetSpec,
    algorithm: str,
    config: SummarizationConfig,
    seed: int,
    linkage: str,
) -> SummarizationResult:
    instance = spec.factory(seed)
    problem = instance.problem()
    if algorithm == "prov-approx":
        return Summarizer(problem, config).run()
    if algorithm == "random":
        return RandomSummarizer(problem, config).run()
    if algorithm == "clustering":
        if not instance.cluster_specs:
            raise ValueError(
                f"dataset {spec.name!r} has no clustering feature specs "
                f"(the DDP dataset cannot be clustered, §6.1)"
            )
        return ClusteringSummarizer(
            problem, config, instance.cluster_specs, linkage=linkage
        ).run()
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def _algorithms_for(spec: DatasetSpec, requested: Optional[Sequence[str]]) -> List[str]:
    algorithms = list(requested) if requested is not None else list(ALGORITHMS)
    probe = spec.factory(0)
    if not probe.cluster_specs and "clustering" in algorithms:
        algorithms.remove("clustering")
    return algorithms


def _log_experiment(name: str, spec: DatasetSpec, rows) -> None:
    _LOG.info("experiment_done name=%s dataset=%s rows=%d", name, spec.name, len(rows))


def wdist_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    wdist_grid: Sequence[float] = WDIST_GRID,
    max_steps: int = 20,
    algorithms: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Figs 6.1a / 6.2a / 6.6a / 6.7a / 6.8a / 6.9a.

    Prov-Approx sweeps wDist; Clustering and Random ignore it, so they
    run once per seed and their average is reported flat across the
    grid (as in §6.4).
    """
    rows: List[Dict[str, object]] = []
    names = _algorithms_for(spec, algorithms)
    for algorithm in names:
        if algorithm == "prov-approx":
            for w_dist in wdist_grid:
                results = [
                    execute(
                        spec,
                        algorithm,
                        SummarizationConfig(w_dist=w_dist, max_steps=max_steps, seed=seed),
                        seed,
                    )
                    for seed in seeds
                ]
                rows.append(_mean_row(spec, algorithm, results, w_dist=w_dist))
        else:
            results = [
                execute(
                    spec,
                    algorithm,
                    SummarizationConfig(max_steps=max_steps, seed=seed),
                    seed,
                )
                for seed in seeds
            ]
            for w_dist in wdist_grid:
                rows.append(_mean_row(spec, algorithm, results, w_dist=w_dist))
    _log_experiment("wdist", spec, rows)
    return rows


def target_size_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    size_fractions: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    max_steps: int = 200,
    algorithms: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Figs 6.1b / 6.6b / 6.8b: distance when stopping at TARGET-SIZE.

    ``wDist = 1`` and ``TARGET-DIST = 1`` per §6.5; target sizes are
    expressed as fractions of each instance's original size so the
    sweep is scale-free across seeds.
    """
    rows: List[Dict[str, object]] = []
    names = _algorithms_for(spec, algorithms)
    for algorithm in names:
        for fraction in size_fractions:
            results = []
            for seed in seeds:
                original_size = spec.factory(seed).expression.size()
                target = max(1, int(original_size * fraction))
                results.append(
                    execute(
                        spec,
                        algorithm,
                        SummarizationConfig(
                            w_dist=1.0,
                            target_size=target,
                            max_steps=max_steps,
                            seed=seed,
                        ),
                        seed,
                    )
                )
            rows.append(
                _mean_row(spec, algorithm, results, target_size_fraction=fraction)
            )
    _log_experiment("target-size", spec, rows)
    return rows


def target_dist_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    target_dists: Sequence[float] = (0.01, 0.02, 0.03, 0.05, 0.08, 0.12),
    max_steps: int = 200,
    algorithms: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Figs 6.2b / 6.7b / 6.9b: size when stopping at TARGET-DIST.

    ``wDist = 0`` and ``TARGET-SIZE = 1`` per §6.6.
    """
    rows: List[Dict[str, object]] = []
    names = _algorithms_for(spec, algorithms)
    for algorithm in names:
        for target_dist in target_dists:
            results = [
                execute(
                    spec,
                    algorithm,
                    SummarizationConfig(
                        w_dist=0.0,
                        target_dist=target_dist,
                        max_steps=max_steps,
                        seed=seed,
                    ),
                    seed,
                )
                for seed in seeds
            ]
            rows.append(_mean_row(spec, algorithm, results, target_dist=target_dist))
    _log_experiment("target-dist", spec, rows)
    return rows


def steps_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    wdist_grid: Sequence[float] = WDIST_GRID,
    steps_grid: Sequence[int] = (20, 30, 40),
) -> List[Dict[str, object]]:
    """Fig 6.3: Prov-Approx distance and size for varying step budgets."""
    rows: List[Dict[str, object]] = []
    for max_steps in steps_grid:
        for w_dist in wdist_grid:
            results = [
                execute(
                    spec,
                    "prov-approx",
                    SummarizationConfig(w_dist=w_dist, max_steps=max_steps, seed=seed),
                    seed,
                )
                for seed in seeds
            ]
            rows.append(
                _mean_row(
                    spec, "prov-approx", results, w_dist=w_dist, max_steps=max_steps
                )
            )
    _log_experiment("steps", spec, rows)
    return rows


def usage_ratio(
    result: SummarizationResult,
    instance: DatasetInstance,
    n_valuations: int = 10,
    repeats: int = 30,
    seed: int = 0,
) -> float:
    """Fig 6.4 measurement: evaluation-time ratio summary / original.

    Draws ``n_valuations`` random valuations from the instance's class,
    evaluates each on the original and (lifted) on the summary with the
    cache-free scan evaluator, and returns the wall-clock ratio.
    ``repeats`` amortizes timer noise on these micro-evaluations.
    """
    rng = random.Random(seed)
    valuations = [instance.valuations.sample(rng) for _ in range(n_valuations)]
    original = result.original_expression
    summary = result.summary_expression
    combiners = instance.combiners

    original_names = sorted(original.annotation_names())
    original_truths = [valuation.truth_map(original_names) for valuation in valuations]
    summary_names = sorted(summary.annotation_names())
    lifted_truths = []
    for valuation in valuations:
        lifted = combiners.lift_valuation(valuation, result.mapping, result.universe)
        lifted_truths.append(lifted.truth_map(summary_names))

    def time_scan(expression, truths) -> float:
        started = time.perf_counter()
        for _ in range(repeats):
            for truth in truths:
                expression.evaluate_scan(truth)
        return time.perf_counter() - started

    time_original = time_scan(original, original_truths)
    time_summary = time_scan(summary, lifted_truths)
    if time_original <= 0:
        return 1.0
    return time_summary / time_original


def usage_time_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    wdist_grid: Sequence[float] = WDIST_GRID,
    steps_grid: Sequence[int] = (20, 30),
    n_valuations: int = 10,
    algorithms: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Fig 6.4: usage-time ratio as a function of wDist (20 / 30 steps)."""
    rows: List[Dict[str, object]] = []
    names = _algorithms_for(spec, algorithms)
    for max_steps in steps_grid:
        for algorithm in names:
            grid = wdist_grid if algorithm == "prov-approx" else [None]
            for w_dist in grid:
                ratios = []
                for seed in seeds:
                    config = SummarizationConfig(
                        w_dist=w_dist if w_dist is not None else 0.5,
                        max_steps=max_steps,
                        seed=seed,
                    )
                    instance = spec.factory(seed)
                    result = execute(spec, algorithm, config, seed)
                    ratios.append(
                        usage_ratio(
                            result, instance, n_valuations=n_valuations, seed=seed
                        )
                    )
                row = {
                    "dataset": spec.name,
                    "algorithm": algorithm,
                    "max_steps": max_steps,
                    "w_dist": w_dist,
                    "avg_usage_ratio": statistics.mean(ratios),
                }
                if algorithm != "prov-approx":
                    # §6.8: baselines are wDist-independent; report the
                    # average across the grid as a flat series.
                    for w in wdist_grid:
                        rows.append({**row, "w_dist": w})
                else:
                    rows.append(row)
    _log_experiment("usage", spec, rows)
    return rows


def timing_experiment(
    spec: DatasetSpec,
    seeds: Sequence[int],
    max_steps: int = 50,
) -> List[Dict[str, object]]:
    """Fig 6.5: per-candidate and per-step time vs expression size.

    Runs Prov-Approx with ``wDist = 1`` and a deep step budget; every
    step contributes a row keyed by the expression size at which the
    step ran, with the average candidate-measurement time and the
    step's total summarization time.
    """
    rows: List[Dict[str, object]] = []
    for seed in seeds:
        result = execute(
            spec,
            "prov-approx",
            SummarizationConfig(w_dist=1.0, max_steps=max_steps, seed=seed),
            seed,
        )
        sizes = result.size_trajectory()
        for record in result.steps:
            rows.append(
                {
                    "dataset": spec.name,
                    "seed": seed,
                    "step": record.step,
                    "size_before": sizes[record.step - 1]
                    if record.step - 1 < len(sizes)
                    else record.size_after,
                    "size_after": record.size_after,
                    "n_candidates": record.n_candidates,
                    "candidate_ms": record.candidate_seconds * 1e3,
                    "step_seconds": record.step_seconds,
                }
            )
    _log_experiment("timing", spec, rows)
    return rows


def _mean_row(
    spec: DatasetSpec,
    algorithm: str,
    results: Sequence[SummarizationResult],
    **extra: object,
) -> Dict[str, object]:
    row: Dict[str, object] = {"dataset": spec.name, "algorithm": algorithm}
    row.update(extra)
    row["avg_distance"] = statistics.mean(
        result.final_distance.normalized for result in results
    )
    row["avg_size"] = statistics.mean(result.final_size for result in results)
    row["avg_steps"] = statistics.mean(result.n_steps for result in results)
    row["avg_seconds"] = statistics.mean(result.total_seconds for result in results)
    row["runs"] = len(results)
    return row
