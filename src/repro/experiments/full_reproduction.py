"""One-call reproduction of the entire Chapter 6 evaluation.

The bench suite (`pytest benchmarks/ --benchmark-only`) runs trimmed
grids so every figure regenerates in ~2 minutes; this module runs the
*full* thesis grids (the 11-point wDist sweep, all three datasets,
all experiments) and writes a results directory:

    results/
      fig_6_1a.txt ... fig_6_9b.txt     the series + ASCII charts
      fig_6_1a.csv ...                  raw rows for external plotting
      SUMMARY.md                        one page of verdicts

Use ``profile="quick"`` (bench-sized grids) for smoke runs -- the
tests do -- and ``profile="full"`` to reproduce at paper scale
(tens of minutes).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .ascii_chart import chart_from_rows
from .configs import BENCH_WDIST_GRID, DEFAULT_SEEDS, MAX_STEPS
from .configs import ddp_spec, movielens_spec, wikipedia_spec
from .report import format_rows, write_csv
from .runner import (
    WDIST_GRID,
    DatasetSpec,
    steps_experiment,
    target_dist_experiment,
    target_size_experiment,
    timing_experiment,
    usage_time_experiment,
    wdist_experiment,
)

#: (figure id, dataset spec factory, experiment callable, chart config)
FigurePlan = Tuple[str, Callable[[], DatasetSpec], Callable, Optional[Dict[str, str]]]


def _plan(wdist_grid: Sequence[float], seeds: Sequence[int]) -> List[FigurePlan]:
    def wdist_for(spec_factory, max_steps):
        return lambda: wdist_experiment(
            spec_factory(), seeds=seeds, wdist_grid=wdist_grid, max_steps=max_steps
        )

    def tsize_for(spec_factory, fractions):
        return lambda: target_size_experiment(
            spec_factory(), seeds=seeds, size_fractions=fractions
        )

    def tdist_for(spec_factory, targets):
        return lambda: target_dist_experiment(
            spec_factory(), seeds=seeds, target_dists=targets
        )

    wdist_chart = {"x": "w_dist", "y": "avg_distance", "split_by": "algorithm"}
    size_chart = {"x": "w_dist", "y": "avg_size", "split_by": "algorithm"}
    return [
        ("fig_6_1a", movielens_spec, wdist_for(movielens_spec, MAX_STEPS["movielens"]), wdist_chart),
        ("fig_6_1b", movielens_spec, tsize_for(movielens_spec, (0.6, 0.7, 0.8, 0.9)), None),
        ("fig_6_2a", movielens_spec, wdist_for(movielens_spec, MAX_STEPS["movielens"]), size_chart),
        ("fig_6_2b", movielens_spec, tdist_for(movielens_spec, (0.005, 0.01, 0.02, 0.04)), None),
        (
            "fig_6_3",
            movielens_spec,
            lambda: steps_experiment(
                movielens_spec(), seeds=seeds, wdist_grid=wdist_grid,
                steps_grid=(20, 30, 40),
            ),
            None,
        ),
        (
            "fig_6_4",
            movielens_spec,
            lambda: usage_time_experiment(
                movielens_spec(), seeds=seeds, wdist_grid=wdist_grid,
                steps_grid=(20, 30),
            ),
            {"x": "w_dist", "y": "avg_usage_ratio", "split_by": "algorithm"},
        ),
        (
            "fig_6_5",
            movielens_spec,
            lambda: timing_experiment(movielens_spec(), seeds=seeds, max_steps=50),
            None,
        ),
        ("fig_6_6a", wikipedia_spec, wdist_for(wikipedia_spec, MAX_STEPS["wikipedia"]), wdist_chart),
        ("fig_6_6b", wikipedia_spec, tsize_for(wikipedia_spec, (0.5, 0.65, 0.8)), None),
        ("fig_6_7a", wikipedia_spec, wdist_for(wikipedia_spec, MAX_STEPS["wikipedia"]), size_chart),
        ("fig_6_7b", wikipedia_spec, tdist_for(wikipedia_spec, (0.02, 0.05, 0.1, 0.2)), None),
        ("fig_6_8a", ddp_spec, wdist_for(ddp_spec, MAX_STEPS["ddp"]), wdist_chart),
        ("fig_6_8b", ddp_spec, tsize_for(ddp_spec, (0.85, 0.92, 0.97)), None),
        ("fig_6_9a", ddp_spec, wdist_for(ddp_spec, MAX_STEPS["ddp"]), size_chart),
        ("fig_6_9b", ddp_spec, tdist_for(ddp_spec, (0.01, 0.03, 0.08, 0.15)), None),
    ]


def reproduce_all(
    out_dir: Union[str, Path],
    profile: str = "quick",
    figures: Optional[Sequence[str]] = None,
    log: Callable[[str], None] = print,
) -> Dict[str, List[Mapping[str, object]]]:
    """Run the Chapter 6 experiments and write a results directory.

    ``profile``: ``"quick"`` uses the bench grids (5-point wDist, 2
    seeds); ``"full"`` the thesis grids (11-point wDist, 3 seeds).
    ``figures`` optionally restricts to a subset of figure ids.
    Returns figure id → rows.
    """
    if profile == "quick":
        grid: Sequence[float] = BENCH_WDIST_GRID
        seeds: Sequence[int] = DEFAULT_SEEDS[:2]
    elif profile == "full":
        grid = WDIST_GRID
        seeds = DEFAULT_SEEDS
    else:
        raise ValueError("profile must be 'quick' or 'full'")

    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    results: Dict[str, List[Mapping[str, object]]] = {}
    summary_lines = [
        f"# Chapter 6 reproduction ({profile} profile)",
        "",
        "| figure | rows | seconds |",
        "|---|---|---|",
    ]
    for figure, _spec, runner, chart in _plan(grid, seeds):
        if figures is not None and figure not in figures:
            continue
        started = time.perf_counter()
        rows = runner()
        elapsed = time.perf_counter() - started
        results[figure] = rows
        body = format_rows(rows)
        if chart is not None:
            body += "\n\n" + chart_from_rows(rows, width=44, height=10, **chart)
        (out_path / f"{figure}.txt").write_text(f"=== {figure} ===\n{body}\n")
        write_csv(rows, out_path / f"{figure}.csv")
        summary_lines.append(f"| {figure} | {len(rows)} | {elapsed:.1f} |")
        log(f"{figure}: {len(rows)} rows in {elapsed:.1f}s")
    (out_path / "SUMMARY.md").write_text("\n".join(summary_lines) + "\n")
    return results
