"""Per-figure dataset specifications and parameter grids (Ch. 6).

Centralizes the experiment-scale dataset configurations so every bench
target and EXPERIMENTS.md regeneration uses identical settings.  The
scales are laptop-sized but preserve the dynamics the figures depend
on: the step budget binds before merge candidates are exhausted, and
the valuation classes are rich enough for distance to differentiate
the algorithms.
"""

from __future__ import annotations

from typing import Tuple

from ..datasets.ddp import DDPConfig, generate_ddp
from ..datasets.movielens import MovieLensConfig, generate_movielens
from ..datasets.wikipedia import WikipediaConfig, generate_wikipedia
from .runner import DatasetSpec

#: Seeds averaged over per experiment ("we generated multiple input
#: provenance expressions ... and averaged the results", Ch. 6).
DEFAULT_SEEDS: Tuple[int, ...] = (11, 23, 37)

#: Trimmed wDist grid used by the bench targets (the full 11-point grid
#: of Figs 6.1-6.3 is available via runner.WDIST_GRID).
BENCH_WDIST_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


def movielens_spec(
    valuation_class: str = "attribute", aggregation: str = "MAX"
) -> DatasetSpec:
    """MovieLens at experiment scale (Figs 6.1-6.5 use
    Cancel-Single-Attribute + MAX, §6.4)."""

    def factory(seed: int):
        return generate_movielens(
            MovieLensConfig(
                n_users=30,
                n_movies=12,
                valuation_class=valuation_class,
                aggregation=aggregation,
                seed=seed,
            )
        )

    return DatasetSpec(name="movielens", factory=factory)


def wikipedia_spec(valuation_class: str = "annotation") -> DatasetSpec:
    """Wikipedia at experiment scale (Figs 6.6-6.7 use
    Cancel-Single-Annotation + SUM, §6.10)."""

    def factory(seed: int):
        return generate_wikipedia(
            WikipediaConfig(
                n_users=18,
                n_pages=14,
                valuation_class=valuation_class,
                seed=seed,
            )
        )

    return DatasetSpec(name="wikipedia", factory=factory)


def ddp_spec(valuation_class: str = "attribute") -> DatasetSpec:
    """DDP at experiment scale (Figs 6.8-6.9 use
    Cancel-Single-Attribute, §6.10)."""

    def factory(seed: int):
        return generate_ddp(DDPConfig(valuation_class=valuation_class, seed=seed))

    return DatasetSpec(name="ddp", factory=factory)


#: Step budgets per dataset, as used in the thesis's figures.
MAX_STEPS = {"movielens": 20, "wikipedia": 20, "ddp": 10}
