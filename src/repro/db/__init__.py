"""Provenance-aware relational layer (K-relations + positive RA)."""

from .query import (
    aggregate,
    aggregate_having,
    combined_aggregate,
    guard,
    join,
    project,
    select,
    union,
)
from .relation import AnnotatedTuple, Database, Relation

__all__ = [
    "AnnotatedTuple",
    "Database",
    "Relation",
    "aggregate",
    "aggregate_having",
    "combined_aggregate",
    "guard",
    "join",
    "project",
    "select",
    "union",
]
