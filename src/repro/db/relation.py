"""K-relations: relations whose tuples carry provenance annotations.

The semiring framework annotates every tuple with an element of
``N[Ann]``; positive relational algebra then combines annotations with
``+`` (union / projection collapses) and ``*`` (join).  This module
provides the storage layer; :mod:`repro.db.query` provides the
operators.

Tuples are dictionaries (column → value) plus a provenance expression;
base-table tuples are typically annotated with a fresh
:class:`~repro.provenance.expressions.Var`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..provenance.expressions import ONE, ProvExpr, Var


@dataclass(frozen=True)
class AnnotatedTuple:
    """One tuple with its ``N[Ann]`` annotation."""

    values: Mapping[str, object]
    prov: ProvExpr = ONE

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, column: str) -> object:
        return self.values[column]

    def project(self, columns: Sequence[str]) -> Tuple[object, ...]:
        return tuple(self.values[column] for column in columns)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.values.items())
        return f"({inner}) @ {self.prov}"


class Relation:
    """A named K-relation with a fixed column list."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        tuples: Iterable[AnnotatedTuple] = (),
    ):
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._tuples: List[AnnotatedTuple] = []
        for annotated in tuples:
            self._check(annotated)
            self._tuples.append(annotated)

    def _check(self, annotated: AnnotatedTuple) -> None:
        missing = [column for column in self.columns if column not in annotated.values]
        if missing:
            raise ValueError(
                f"tuple for {self.name!r} is missing columns {missing}"
            )

    def add(
        self,
        values: Mapping[str, object],
        prov: Optional[ProvExpr] = None,
        annotation: Optional[str] = None,
    ) -> AnnotatedTuple:
        """Insert a tuple.

        ``annotation`` is shorthand for annotating with a fresh
        variable of that name; ``prov`` supplies a full expression;
        omitting both annotates with ``1`` (present, untracked).
        """
        if prov is not None and annotation is not None:
            raise ValueError("pass either prov or annotation, not both")
        if annotation is not None:
            prov = Var(annotation)
        annotated = AnnotatedTuple(values, prov if prov is not None else ONE)
        self._check(annotated)
        self._tuples.append(annotated)
        return annotated

    def __iter__(self) -> Iterator[AnnotatedTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def annotations(self) -> Tuple[str, ...]:
        """All annotation names appearing in the relation, sorted."""
        names: set = set()
        for annotated in self._tuples:
            names |= annotated.prov.annotation_names()
        return tuple(sorted(names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Relation {self.name}({', '.join(self.columns)}) with {len(self)} tuples>"


class Database:
    """The underlying persistent state the workflow operates on (§2.1)."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.put(relation)

    def put(self, relation: Relation) -> None:
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database: {', '.join(self.names())}>"
