"""Provenance-tracking positive relational algebra with aggregation.

Implements the query language of the semiring framework over
:class:`~repro.db.relation.Relation`:

* :func:`select` -- keeps annotations as-is;
* :func:`project` -- collapsing tuples *add* their annotations
  (alternative derivations);
* :func:`join` -- joined tuples *multiply* their annotations (joint
  use);
* :func:`union` -- same-schema tuples add;
* :func:`guard` -- multiplies each annotation by a comparison token
  ``[prov ⊗ value op threshold]``, the §2.2 device for aggregate
  results used in later selections (the "more than 2 reviews" rule of
  Example 2.1.1);
* :func:`aggregate` -- produces the tensor-paired aggregate values of
  [7]: one output tuple per group whose value column holds an
  :class:`~repro.provenance.expressions.AggSum`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..provenance.expressions import AggSum, Comparison, ProvExpr, Tensor, ZERO
from ..provenance.monoids import AggregationMonoid
from .relation import AnnotatedTuple, Relation


def select(
    relation: Relation,
    predicate: Callable[[Mapping[str, object]], bool],
    name: Optional[str] = None,
) -> Relation:
    """Tuples satisfying ``predicate``; annotations unchanged."""
    return Relation(
        name or f"σ({relation.name})",
        relation.columns,
        (t for t in relation if predicate(t.values)),
    )


def project(
    relation: Relation, columns: Sequence[str], name: Optional[str] = None
) -> Relation:
    """Projection; tuples that collapse add their annotations."""
    combined: Dict[Tuple[object, ...], ProvExpr] = {}
    order: List[Tuple[object, ...]] = []
    for annotated in relation:
        key = annotated.project(columns)
        if key in combined:
            combined[key] = (combined[key] + annotated.prov)
        else:
            combined[key] = annotated.prov
            order.append(key)
    return Relation(
        name or f"π({relation.name})",
        columns,
        (
            AnnotatedTuple(dict(zip(columns, key)), combined[key])
            for key in order
        ),
    )


def join(
    left: Relation,
    right: Relation,
    on: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Relation:
    """Natural join on ``on`` (default: shared columns); annotations multiply."""
    if on is None:
        on = [column for column in left.columns if column in right.columns]
    on = list(on)
    right_only = [column for column in right.columns if column not in left.columns]
    columns = list(left.columns) + right_only
    index: Dict[Tuple[object, ...], List[AnnotatedTuple]] = {}
    for annotated in right:
        index.setdefault(annotated.project(on), []).append(annotated)
    out: List[AnnotatedTuple] = []
    for annotated in left:
        for match in index.get(annotated.project(on), ()):
            values = dict(annotated.values)
            for column in right_only:
                values[column] = match.values[column]
            out.append(AnnotatedTuple(values, annotated.prov * match.prov))
    return Relation(name or f"({left.name} ⋈ {right.name})", columns, out)


def union(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Union of same-schema relations; duplicate tuples add annotations."""
    if tuple(left.columns) != tuple(right.columns):
        raise ValueError(
            f"union requires identical schemas; got {left.columns} vs {right.columns}"
        )
    combined: Dict[Tuple[object, ...], ProvExpr] = {}
    order: List[Tuple[object, ...]] = []
    for relation in (left, right):
        for annotated in relation:
            key = annotated.project(left.columns)
            if key in combined:
                combined[key] = combined[key] + annotated.prov
            else:
                combined[key] = annotated.prov
                order.append(key)
    return Relation(
        name or f"({left.name} ∪ {right.name})",
        left.columns,
        (
            AnnotatedTuple(dict(zip(left.columns, key)), combined[key])
            for key in order
        ),
    )


def guard(
    relation: Relation,
    guard_of: Callable[[Mapping[str, object]], Optional[Comparison]],
    name: Optional[str] = None,
) -> Relation:
    """Attach a comparison token to every tuple's annotation.

    ``guard_of`` returns the :class:`Comparison` to multiply in (or
    ``None`` to leave the tuple unguarded).  This models Example
    2.2.1's inequality terms ``[S_i · U_i ⊗ n > 2]`` gating each
    review on the reviewer's statistics.
    """
    out = []
    for annotated in relation:
        token = guard_of(annotated.values)
        prov = annotated.prov if token is None else annotated.prov * token
        if prov == ZERO:
            continue
        out.append(AnnotatedTuple(annotated.values, prov))
    return Relation(name or f"guard({relation.name})", relation.columns, out)


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    value_column: str,
    monoid: AggregationMonoid,
    name: Optional[str] = None,
    output_column: str = "agg",
) -> Relation:
    """Tensor-paired aggregation: one ``AggSum`` per group (§2.2).

    Each input tuple contributes the tensor
    ``annotation ⊗ (value, 1)``; the group key becomes the tensors'
    group so downstream evaluation yields per-group aggregates.
    """
    group_by = list(group_by)
    buckets: Dict[Tuple[object, ...], List[Tensor]] = {}
    order: List[Tuple[object, ...]] = []
    for annotated in relation:
        key = annotated.project(group_by)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(
            Tensor(
                annotated.prov,
                float(annotated.values[value_column]),
                1,
                group="|".join(str(part) for part in key),
            )
        )
    columns = group_by + [output_column]
    out = []
    for key in order:
        values = dict(zip(group_by, key))
        values[output_column] = AggSum(buckets[key], monoid).simplify()
        out.append(AnnotatedTuple(values))
    return Relation(name or f"γ({relation.name})", columns, out)


def aggregate_having(
    relation: Relation,
    group_by: Sequence[str],
    value_column: str,
    monoid: AggregationMonoid,
    op: str,
    threshold: float,
    name: Optional[str] = None,
) -> Relation:
    """Aggregation with a provenance-aware HAVING guard (§2.2).

    The semiring framework handles aggregate results used in further
    selections by keeping the comparison as an abstract token: each
    group's tuple is annotated with ``[prov ⊗ agg op threshold]`` where
    ``prov`` is the *joint* provenance of the group's contributions and
    ``agg`` the aggregate value.  Under a valuation the group survives
    exactly when its (re-evaluated) guard holds -- this is how
    Example 2.1.1's "more than 2 reviews" rule enters provenance.
    """
    group_by = list(group_by)
    buckets: Dict[Tuple[object, ...], List[AnnotatedTuple]] = {}
    order: List[Tuple[object, ...]] = []
    for annotated in relation:
        key = annotated.project(group_by)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(annotated)
    columns = group_by + ["agg"]
    out: List[AnnotatedTuple] = []
    for key in order:
        members = buckets[key]
        value = monoid.fold(float(t.values[value_column]) for t in members)
        joint: ProvExpr = members[0].prov
        for member in members[1:]:
            joint = joint * member.prov
        guard_token = Comparison(joint, value, op, threshold).simplify()
        if guard_token == ZERO:
            continue
        values = dict(zip(group_by, key))
        values["agg"] = value
        out.append(AnnotatedTuple(values, guard_token))
    return Relation(name or f"γ_having({relation.name})", columns, out)


def combined_aggregate(relation: Relation, output_column: str = "agg") -> AggSum:
    """Fuse a relation of per-group ``AggSum`` values into one expression.

    This is the formal sum ``⊕_M`` across movies of Example 4.2.3 --
    the whole selected provenance as a single summarizable expression.
    """
    tensors: List[Tensor] = []
    monoid: Optional[AggregationMonoid] = None
    for annotated in relation:
        agg = annotated.values[output_column]
        if not isinstance(agg, AggSum):
            raise TypeError(
                f"column {output_column!r} must hold AggSum values, got "
                f"{type(agg).__name__}"
            )
        if monoid is None:
            monoid = agg.monoid
        tensors.extend(agg.tensors)
    if monoid is None:
        raise ValueError("cannot combine an empty relation")
    return AggSum(tensors, monoid)
