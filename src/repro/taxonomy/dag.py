"""Taxonomy of concepts (``rdfs:subClassOf`` facts), YAGO-style.

The Wikipedia experiments constrain merges of page annotations to
pages sharing a taxonomy ancestor, and use Wu-Palmer relatedness over
the taxonomy to break ties between candidate merges (§3.2, §5.1).

The thesis uses the YAGO taxonomy, a tree-shaped fragment of WordNet
concepts.  We model a rooted tree (each concept has at most one
parent, a single root); that is all Wu-Palmer and the lowest-common-
ancestor queries need, and matches the WordNet hypernym paths the
thesis displays (singer → musician → performer → ... → entity).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Taxonomy:
    """A rooted concept tree with LCA and depth queries.

    Build with :meth:`add` (child, parent) facts; the unique concept
    without a parent is the root.  Queries memoize depths, so build
    fully before querying (adding after a query raises).
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._depth_cache: Optional[Dict[str, int]] = None

    # -- construction -------------------------------------------------------

    def add(self, concept: str, parent: Optional[str] = None) -> None:
        """Record ``concept subClassOf parent`` (``parent=None``: root)."""
        if self._depth_cache is not None:
            raise RuntimeError("taxonomy is frozen once queried")
        existing = self._parent.get(concept)
        if existing is not None and parent is not None and existing != parent:
            raise ValueError(
                f"concept {concept!r} already has parent {existing!r}; "
                f"a taxonomy tree allows one parent"
            )
        if parent is not None:
            self._parent[concept] = parent
            self._parent.setdefault(parent, None)
            self._children.setdefault(parent, []).append(concept)
        else:
            self._parent.setdefault(concept, None)
        self._children.setdefault(concept, [])

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "Taxonomy":
        """Build from ``(child, parent)`` pairs."""
        taxonomy = cls()
        for child, parent in edges:
            taxonomy.add(child, parent)
        return taxonomy

    # -- basic structure ------------------------------------------------------

    def __contains__(self, concept: str) -> bool:
        return concept in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    def parent(self, concept: str) -> Optional[str]:
        self._require(concept)
        return self._parent[concept]

    def children(self, concept: str) -> Tuple[str, ...]:
        self._require(concept)
        return tuple(self._children.get(concept, ()))

    def roots(self) -> Tuple[str, ...]:
        return tuple(
            concept for concept, parent in self._parent.items() if parent is None
        )

    def parent_map(self) -> Dict[str, Optional[str]]:
        """Concept → parent mapping (copy), as consumed by
        :class:`~repro.provenance.valuation_classes.TaxonomyConsistent`."""
        return dict(self._parent)

    # -- ancestry ----------------------------------------------------------------

    def ancestors(self, concept: str) -> Tuple[str, ...]:
        """Concepts on the path to the root, starting with ``concept``."""
        self._require(concept)
        path = [concept]
        seen = {concept}
        current = self._parent[concept]
        while current is not None:
            if current in seen:
                raise ValueError(f"taxonomy contains a cycle through {current!r}")
            path.append(current)
            seen.add(current)
            current = self._parent[current]
        return tuple(path)

    def depth(self, concept: str) -> int:
        """Number of edges from the root (root has depth 0)."""
        if self._depth_cache is None:
            self._depth_cache = {}
        cached = self._depth_cache.get(concept)
        if cached is not None:
            return cached
        depth = len(self.ancestors(concept)) - 1
        self._depth_cache[concept] = depth
        return depth

    def is_ancestor(self, ancestor: str, concept: str) -> bool:
        """Whether ``ancestor`` lies on ``concept``'s path to the root
        (a concept is its own ancestor)."""
        return ancestor in self.ancestors(concept)

    def lca(self, first: str, second: str) -> Optional[str]:
        """Lowest common ancestor, or ``None`` for disjoint trees."""
        first_path = self.ancestors(first)
        second_set = set(self.ancestors(second))
        for concept in first_path:
            if concept in second_set:
                return concept
        return None

    def lca_of(self, concepts: Sequence[str]) -> Optional[str]:
        """Lowest common ancestor of several concepts."""
        if not concepts:
            return None
        current: Optional[str] = concepts[0]
        for concept in concepts[1:]:
            if current is None:
                return None
            current = self.lca(current, concept)
        return current

    def _require(self, concept: str) -> None:
        if concept not in self._parent:
            raise KeyError(f"unknown concept {concept!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Taxonomy of {len(self)} concepts>"
