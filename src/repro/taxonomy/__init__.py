"""YAGO/WordNet-style taxonomy with Wu-Palmer relatedness (§5.1)."""

from .dag import Taxonomy
from .wordnet_fragment import (
    leaf_concepts,
    synthetic_taxonomy,
    wordnet_person_fragment,
)
from .wu_palmer import (
    group_distance,
    most_specific_common_ancestor,
    wu_palmer_distance,
    wu_palmer_similarity,
)

__all__ = [
    "Taxonomy",
    "group_distance",
    "leaf_concepts",
    "most_specific_common_ancestor",
    "synthetic_taxonomy",
    "wordnet_person_fragment",
    "wu_palmer_distance",
    "wu_palmer_similarity",
]
