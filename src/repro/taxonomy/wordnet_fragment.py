"""WordNet-style concept fragment and synthetic taxonomy generation.

The thesis constrains Wikipedia-page merges with the YAGO taxonomy
(WordNet ``subClassOf`` facts).  YAGO itself is a multi-gigabyte
download; the summarization algorithm only consumes subClassOf
reachability, LCA and Wu-Palmer depths, so we substitute:

* :func:`wordnet_person_fragment` -- a hand-written fragment of the
  actual WordNet hypernym paths the thesis displays (singer and
  guitarist under person, plus enough siblings to make constraints
  non-trivial);
* :func:`synthetic_taxonomy` -- a seeded random tree of configurable
  depth/branching for larger experiments.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .dag import Taxonomy

#: (child, parent) WordNet-style subClassOf facts.  Mirrors the paths
#: shown in Example 5.2.1: wordnet_singer and wordnet_guitarist are
#: both descendants of wordnet_person, so Adele/CelineDion pages group
#: under singer and LoriBlack/AlecBaillie pages under guitarist.
_PERSON_FRAGMENT_EDGES: Tuple[Tuple[str, str], ...] = (
    ("wordnet_physical_entity", "wordnet_entity"),
    ("wordnet_abstraction", "wordnet_entity"),
    ("wordnet_object", "wordnet_physical_entity"),
    ("wordnet_causal_agent", "wordnet_physical_entity"),
    ("wordnet_person", "wordnet_causal_agent"),
    ("wordnet_entertainer", "wordnet_person"),
    ("wordnet_scientist", "wordnet_person"),
    ("wordnet_politician", "wordnet_person"),
    ("wordnet_athlete", "wordnet_person"),
    ("wordnet_writer", "wordnet_person"),
    ("wordnet_performer", "wordnet_entertainer"),
    ("wordnet_comedian", "wordnet_entertainer"),
    ("wordnet_musician", "wordnet_performer"),
    ("wordnet_actor", "wordnet_performer"),
    ("wordnet_dancer", "wordnet_performer"),
    ("wordnet_singer", "wordnet_musician"),
    ("wordnet_instrumentalist", "wordnet_musician"),
    ("wordnet_guitarist", "wordnet_instrumentalist"),
    ("wordnet_pianist", "wordnet_instrumentalist"),
    ("wordnet_violinist", "wordnet_instrumentalist"),
    ("wordnet_physicist", "wordnet_scientist"),
    ("wordnet_chemist", "wordnet_scientist"),
    ("wordnet_biologist", "wordnet_scientist"),
    ("wordnet_novelist", "wordnet_writer"),
    ("wordnet_poet", "wordnet_writer"),
    ("wordnet_footballer", "wordnet_athlete"),
    ("wordnet_swimmer", "wordnet_athlete"),
)


def wordnet_person_fragment() -> Taxonomy:
    """The built-in person-branch WordNet fragment (28 concepts)."""
    taxonomy = Taxonomy()
    taxonomy.add("wordnet_entity")
    for child, parent in _PERSON_FRAGMENT_EDGES:
        taxonomy.add(child, parent)
    return taxonomy


def leaf_concepts(taxonomy: Taxonomy) -> List[str]:
    """Concepts without children -- the ones pages are tagged with."""
    return sorted(
        concept for concept in taxonomy if not taxonomy.children(concept)
    )


def synthetic_taxonomy(
    depth: int = 4,
    branching: int = 3,
    seed: int = 0,
    root: str = "concept_root",
) -> Taxonomy:
    """A seeded random concept tree for larger experiments.

    Every internal node gets between 2 and ``branching`` children; leaf
    names encode their path, so tests can recover structure from names.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    if branching < 2:
        raise ValueError("branching must be at least 2")
    rng = random.Random(seed)
    taxonomy = Taxonomy()
    taxonomy.add(root)
    frontier = [root]
    for level in range(1, depth + 1):
        next_frontier = []
        for parent in frontier:
            for index in range(rng.randint(2, branching)):
                child = f"{parent}/{level}{chr(ord('a') + index)}"
                taxonomy.add(child, parent)
                next_frontier.append(child)
        frontier = next_frontier
    return taxonomy
