"""Wu-Palmer semantic relatedness over a taxonomy (§5.1).

Wu & Palmer (1994) measure the similarity of two concepts by how deep
their lowest common ancestor sits relative to the concepts themselves:

    sim(c1, c2) = 2 * depth(lcs) / (depth(c1) + depth(c2))

computed with node-counted depths (the root has depth 1), so that
similarity lies in ``(0, 1]`` and equals 1 exactly for identical
concepts.  The thesis uses the complementary *distance*
``1 - sim`` to prefer candidate merges whose new annotation concept is
taxonomically close to the annotations it summarizes ("mapping user
annotations to 'Guitarist' is preferable to mapping them to 'Person'").
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .dag import Taxonomy


def wu_palmer_similarity(taxonomy: Taxonomy, first: str, second: str) -> float:
    """Wu-Palmer similarity in ``[0, 1]``; 0 for disjoint concepts."""
    lcs = taxonomy.lca(first, second)
    if lcs is None:
        return 0.0
    # Node-counted depth: the root counts 1, so identical root concepts
    # still get similarity 1 rather than a 0/0.
    depth_first = taxonomy.depth(first) + 1
    depth_second = taxonomy.depth(second) + 1
    depth_lcs = taxonomy.depth(lcs) + 1
    return (2.0 * depth_lcs) / (depth_first + depth_second)


def wu_palmer_distance(taxonomy: Taxonomy, first: str, second: str) -> float:
    """``1 - similarity``; 0 for identical concepts, 1 for disjoint."""
    return 1.0 - wu_palmer_similarity(taxonomy, first, second)


def group_distance(
    taxonomy: Taxonomy,
    members: Sequence[str],
    target: str,
    mode: str = "max",
) -> float:
    """Taxonomic distance of a merge: members → target concept.

    The thesis breaks candidate-score ties by "the MAX (or SUM) of
    these distances" between each merged annotation's concept and the
    concept they are mapped to (§3.2, §4.2).

    Parameters
    ----------
    members:
        Concepts of the annotations being merged.
    target:
        Concept of the new summary annotation (typically the LCA).
    mode:
        ``"max"`` or ``"sum"``.
    """
    if mode not in ("max", "sum"):
        raise ValueError(f"mode must be 'max' or 'sum', got {mode!r}")
    distances = [wu_palmer_distance(taxonomy, member, target) for member in members]
    if not distances:
        return 0.0
    return max(distances) if mode == "max" else sum(distances)


def most_specific_common_ancestor(
    taxonomy: Taxonomy, concepts: Iterable[str]
) -> Optional[str]:
    """The LCA of ``concepts`` -- the name a summary annotation takes."""
    return taxonomy.lca_of(tuple(concepts))
