"""Structured key=value logging."""

import io
import logging

from repro.observability import log


def _record(message, *args, level=logging.INFO, exc_info=None):
    return logging.LogRecord(
        name="repro.test",
        level=level,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=args,
        exc_info=exc_info,
    )


def test_formatter_renders_one_keyvalue_line():
    line = log.KeyValueFormatter().format(
        _record("http_request method=%s status=%d", "GET", 200)
    )
    assert line.startswith("ts=")
    assert " level=INFO logger=repro.test " in line
    assert line.endswith("http_request method=GET status=200")
    assert "\n" not in line


def test_formatter_appends_exception_as_json():
    try:
        raise ValueError("boom")
    except ValueError:
        import sys

        record = _record("failed", level=logging.ERROR, exc_info=sys.exc_info())
    line = log.KeyValueFormatter().format(record)
    assert "exception=" in line
    assert "\n" not in line  # traceback is JSON-quoted onto the line


def test_quote_passes_plain_values_and_quotes_awkward_ones():
    assert log.quote("fast") == "fast"
    assert log.quote(42) == "42"
    assert log.quote("two words") == '"two words"'
    assert log.quote('say "hi"') == '"say \\"hi\\""'
    assert log.quote("") == '""'


def test_fields_renders_pairs_in_order():
    assert log.fields(path="/metrics", status=200) == "path=/metrics status=200"


def test_resolve_level_names_and_fallback(monkeypatch):
    assert log.resolve_level("debug") == logging.DEBUG
    assert log.resolve_level("WARN") == logging.WARNING
    assert log.resolve_level("nonsense") == logging.WARNING
    monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
    assert log.resolve_level() == logging.ERROR
    monkeypatch.delenv("REPRO_LOG_LEVEL")
    assert log.resolve_level() == logging.WARNING


def test_configure_captures_stream_and_gates_levels():
    stream = io.StringIO()
    try:
        log.configure(level="info", stream=stream, force=True)
        logger = log.get_logger("test")
        logger.debug("hidden message=%s", "no")
        logger.info("shown message=%s", "yes")
        output = stream.getvalue()
        assert "shown message=yes" in output
        assert "hidden" not in output
    finally:
        log.configure(force=True)  # restore the stderr handler


def test_get_logger_lives_under_the_repro_hierarchy():
    assert log.get_logger("prox.server").name == "repro.prox.server"
    assert log.get_logger().name == "repro"
    root = logging.getLogger(log.ROOT_NAME)
    assert root.propagate is False
    assert any(
        isinstance(handler.formatter, log.KeyValueFormatter)
        for handler in root.handlers
    )
