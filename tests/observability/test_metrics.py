"""The dependency-free metrics registry and its Prometheus rendering."""

import pytest

from repro.observability import metrics
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# -- counter -------------------------------------------------------------------


def test_counter_accumulates():
    counter = Counter("demo_total", "demo")
    assert counter.value() == 0.0
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == 3.5


def test_counter_rejects_negative_increments():
    counter = Counter("demo_total", "demo")
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)


def test_counter_labels_are_independent():
    counter = Counter("demo_total", "demo", labelnames=("path",))
    counter.inc(path="fast")
    counter.inc(3, path="naive")
    assert counter.value(path="fast") == 1.0
    assert counter.value(path="naive") == 3.0
    assert counter.value(path="unseen") == 0.0


def test_counter_label_mismatch_raises():
    plain = Counter("demo_total", "demo")
    with pytest.raises(ValueError, match="takes no labels"):
        plain.inc(path="fast")
    labelled = Counter("demo2_total", "demo", labelnames=("path",))
    with pytest.raises(ValueError, match="requires labels"):
        labelled.inc()


def test_invalid_metric_name_raises():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("demo-total", "hyphens are not allowed")


@pytest.mark.parametrize(
    "name",
    [
        "",  # empty
        "9starts_with_digit",  # leading digit
        "demo total",  # space
        "démo_total",  # Unicode letter: isalnum() accepted this
        "demo١_total",  # Unicode digit: isalnum() accepted this
    ],
)
def test_metric_name_grammar_is_the_prometheus_one(name):
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter(name, "demo")


def test_metric_name_allows_colons_and_underscores():
    Counter("ns:demo_total", "recording-rule style names are legal")
    Counter("_private_total", "leading underscore is legal")


@pytest.mark.parametrize(
    "label",
    [
        "",  # empty
        "9digit",  # leading digit
        "bad-label",  # hyphen
        "bad label",  # space
        "étiquette",  # Unicode letter
        "__reserved",  # double-underscore prefix is Prometheus-internal
    ],
)
def test_invalid_label_names_raise(label):
    with pytest.raises(ValueError, match="invalid label name"):
        Counter("demo_total", "demo", labelnames=(label,))


def test_histogram_rejects_the_reserved_le_label():
    with pytest.raises(ValueError, match="reserved"):
        Histogram("demo_seconds", "demo", labelnames=("le",))
    # counters and gauges may use it freely -- only histograms emit le=
    Counter("demo_le_total", "demo", labelnames=("le",))


def test_remove_drops_one_series_and_is_idempotent():
    gauge = Gauge("demo_gauge", "demo", labelnames=("session",))
    gauge.set(7, session="s1")
    gauge.set(9, session="s2")
    gauge.remove(session="s1")
    gauge.remove(session="s1")  # absent: no-op
    assert gauge.value(session="s1") == 0.0  # unseen series read as 0
    assert gauge.value(session="s2") == 9.0
    lines = gauge.samples()
    assert lines == ['demo_gauge{session="s2"} 9']


# -- gauge ---------------------------------------------------------------------


def test_gauge_set_inc_dec():
    gauge = Gauge("demo_gauge", "demo")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 3.0


# -- histogram -----------------------------------------------------------------


def test_histogram_buckets_and_sum():
    histogram = Histogram("demo_seconds", "demo", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(2.0)
    assert histogram.count() == 3
    assert histogram.sum() == pytest.approx(2.55)
    lines = histogram.samples()
    assert 'demo_seconds_bucket{le="0.1"} 1' in lines
    assert 'demo_seconds_bucket{le="1"} 2' in lines  # cumulative
    assert 'demo_seconds_bucket{le="+Inf"} 3' in lines
    assert "demo_seconds_count 3" in lines


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("demo_seconds", "demo", buckets=())


# -- registry ------------------------------------------------------------------


def test_registry_registration_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("demo_total", "demo")
    second = registry.counter("demo_total", "demo")
    assert first is second


def test_registry_rejects_conflicting_reregistration():
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("demo_total", "demo")
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("demo_total", "demo", labelnames=("path",))


def test_registry_reset_zeroes_but_keeps_families():
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "demo")
    counter.inc(5)
    registry.reset()
    assert counter.value() == 0.0
    assert registry.names() == ["demo_total"]


def test_untouched_label_free_families_render_zero():
    """An idle scrape must still show every label-free family at 0 --
    the CI probe greps for the required names before any summarize."""
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo")
    registry.histogram("demo_seconds", "demo", buckets=(1.0,))
    rendered = registry.render()
    assert "demo_total 0" in rendered
    assert 'demo_seconds_bucket{le="+Inf"} 0' in rendered
    assert "demo_seconds_count 0" in rendered


def test_golden_scrape():
    """Exact exposition-format output for a small three-family registry."""
    registry = MetricsRegistry()
    runs = registry.counter("demo_runs_total", "Demo runs.")
    mode = registry.gauge("demo_mode", "Active mode.", labelnames=("mode",))
    seconds = registry.histogram("demo_seconds", "Demo timing.", buckets=(0.1, 1.0))
    runs.inc()
    runs.inc(2)
    mode.set(4, mode="fast")
    seconds.observe(0.05)
    seconds.observe(2.0)
    assert registry.render() == (
        "# HELP demo_runs_total Demo runs.\n"
        "# TYPE demo_runs_total counter\n"
        "demo_runs_total 3\n"
        "# HELP demo_mode Active mode.\n"
        "# TYPE demo_mode gauge\n"
        'demo_mode{mode="fast"} 4\n'
        "# HELP demo_seconds Demo timing.\n"
        "# TYPE demo_seconds histogram\n"
        'demo_seconds_bucket{le="0.1"} 1\n'
        'demo_seconds_bucket{le="1"} 1\n'
        'demo_seconds_bucket{le="+Inf"} 2\n'
        "demo_seconds_sum 2.05\n"
        "demo_seconds_count 2\n"
    )


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "demo", labelnames=("path",))
    counter.inc(path='a"b\\c\nd')
    rendered = registry.render()
    assert 'demo_total{path="a\\"b\\\\c\\nd"} 1' in rendered


def test_golden_scrape_with_hostile_label_values():
    """Exact exposition output when label *values* carry every character
    the text format escapes (backslash, quote, newline) plus unicode and
    braces, across all three metric kinds.  Values are arbitrary UTF-8
    by spec -- only ``\\``, ``\"`` and newline are escaped."""
    registry = MetricsRegistry()
    counter = registry.counter("hostile_total", "Hostile demo.", labelnames=("q",))
    gauge = registry.gauge("hostile_gauge", "Hostile demo.", labelnames=("q",))
    seconds = registry.histogram(
        "hostile_seconds", "Hostile demo.", labelnames=("q",), buckets=(1.0,)
    )
    hostile = 'back\\slash "quoted"\nnewline {braces} é'
    counter.inc(q=hostile)
    gauge.set(2, q=hostile)
    seconds.observe(0.5, q=hostile)
    escaped = 'back\\\\slash \\"quoted\\"\\nnewline {braces} é'
    assert registry.render() == (
        "# HELP hostile_total Hostile demo.\n"
        "# TYPE hostile_total counter\n"
        f'hostile_total{{q="{escaped}"}} 1\n'
        "# HELP hostile_gauge Hostile demo.\n"
        "# TYPE hostile_gauge gauge\n"
        f'hostile_gauge{{q="{escaped}"}} 2\n'
        "# HELP hostile_seconds Hostile demo.\n"
        "# TYPE hostile_seconds histogram\n"
        f'hostile_seconds_bucket{{q="{escaped}",le="1"}} 1\n'
        f'hostile_seconds_bucket{{q="{escaped}",le="+Inf"}} 1\n'
        f'hostile_seconds_sum{{q="{escaped}"}} 0.5\n'
        f'hostile_seconds_count{{q="{escaped}"}} 1\n'
    )
    # the raw newline never leaks: every sample stays one physical line
    assert "\nnewline" not in registry.render().replace("\\nnewline", "")


def test_help_text_is_escaped():
    registry = MetricsRegistry()
    registry.counter("demo_total", "multi\nline")
    assert "# HELP demo_total multi\\nline\n" in registry.render()


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""


# -- thread safety -------------------------------------------------------------


def test_parallel_updates_lose_no_increments_and_scrapes_stay_valid():
    """N threads hammer one counter/gauge/histogram family (disjoint and
    shared label values) while a scraper renders concurrently: no
    increment is lost, no scrape line is ever malformed."""
    import re as _re
    import threading

    registry = MetricsRegistry()
    counter = registry.counter("hammer_total", "demo", labelnames=("worker",))
    gauge = registry.gauge("hammer_gauge", "demo", labelnames=("worker",))
    seconds = registry.histogram(
        "hammer_seconds", "demo", labelnames=("worker",), buckets=(0.5, 1.0)
    )
    n_workers, n_iterations = 8, 500
    sample_line = _re.compile(
        r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
        r"-?(\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN))$"
    )
    malformed: list = []
    start = threading.Barrier(n_workers + 2)

    def worker(index: int) -> None:
        start.wait()
        mine = f"w{index}"
        for iteration in range(n_iterations):
            counter.inc(worker=mine)
            counter.inc(worker="shared")
            gauge.inc(worker=mine)
            seconds.observe(0.25 + (iteration % 3) * 0.5, worker=mine)

    def scraper() -> None:
        start.wait()
        for _ in range(50):
            for line in registry.render().splitlines():
                if not sample_line.match(line):
                    malformed.append(line)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(n_workers)
    ] + [threading.Thread(target=scraper)]
    for thread in threads:
        thread.start()
    start.wait()
    for thread in threads:
        thread.join(30)

    assert not malformed, f"malformed scrape lines: {malformed[:3]}"
    assert counter.value(worker="shared") == n_workers * n_iterations
    for index in range(n_workers):
        mine = f"w{index}"
        assert counter.value(worker=mine) == n_iterations
        assert gauge.value(worker=mine) == n_iterations
        assert seconds.count(worker=mine) == n_iterations


def test_parallel_registration_yields_one_family():
    """Concurrent idempotent registration returns one shared metric."""
    import threading

    registry = MetricsRegistry()
    results: list = []
    start = threading.Barrier(8)

    def register() -> None:
        start.wait()
        results.append(registry.counter("race_total", "demo"))

    threads = [threading.Thread(target=register) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    assert len(results) == 8
    assert all(metric is results[0] for metric in results)


# -- process-wide switch -------------------------------------------------------


def test_set_enabled_toggles_module_flag():
    original = metrics.ENABLED
    try:
        metrics.set_enabled(False)
        assert metrics.ENABLED is False
        metrics.set_enabled(True)
        assert metrics.ENABLED is True
    finally:
        metrics.set_enabled(original)


def test_global_registry_has_required_families():
    """The acceptance criteria name three families that must exist on
    the process registry once the pipeline modules are imported."""
    import repro.core.engine  # noqa: F401 - registers the scoring families
    import repro.core.summarize  # noqa: F401 - registers the run families

    names = metrics.REGISTRY.names()
    assert "prox_summarize_steps_total" in names
    assert "prox_scoring_seconds" in names
    assert "prox_scoring_fallbacks_total" in names
