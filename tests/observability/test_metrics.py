"""The dependency-free metrics registry and its Prometheus rendering."""

import pytest

from repro.observability import metrics
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# -- counter -------------------------------------------------------------------


def test_counter_accumulates():
    counter = Counter("demo_total", "demo")
    assert counter.value() == 0.0
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == 3.5


def test_counter_rejects_negative_increments():
    counter = Counter("demo_total", "demo")
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)


def test_counter_labels_are_independent():
    counter = Counter("demo_total", "demo", labelnames=("path",))
    counter.inc(path="fast")
    counter.inc(3, path="naive")
    assert counter.value(path="fast") == 1.0
    assert counter.value(path="naive") == 3.0
    assert counter.value(path="unseen") == 0.0


def test_counter_label_mismatch_raises():
    plain = Counter("demo_total", "demo")
    with pytest.raises(ValueError, match="takes no labels"):
        plain.inc(path="fast")
    labelled = Counter("demo2_total", "demo", labelnames=("path",))
    with pytest.raises(ValueError, match="requires labels"):
        labelled.inc()


def test_invalid_metric_name_raises():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("demo-total", "hyphens are not allowed")


# -- gauge ---------------------------------------------------------------------


def test_gauge_set_inc_dec():
    gauge = Gauge("demo_gauge", "demo")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 3.0


# -- histogram -----------------------------------------------------------------


def test_histogram_buckets_and_sum():
    histogram = Histogram("demo_seconds", "demo", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(2.0)
    assert histogram.count() == 3
    assert histogram.sum() == pytest.approx(2.55)
    lines = histogram.samples()
    assert 'demo_seconds_bucket{le="0.1"} 1' in lines
    assert 'demo_seconds_bucket{le="1"} 2' in lines  # cumulative
    assert 'demo_seconds_bucket{le="+Inf"} 3' in lines
    assert "demo_seconds_count 3" in lines


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("demo_seconds", "demo", buckets=())


# -- registry ------------------------------------------------------------------


def test_registry_registration_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("demo_total", "demo")
    second = registry.counter("demo_total", "demo")
    assert first is second


def test_registry_rejects_conflicting_reregistration():
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("demo_total", "demo")
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("demo_total", "demo", labelnames=("path",))


def test_registry_reset_zeroes_but_keeps_families():
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "demo")
    counter.inc(5)
    registry.reset()
    assert counter.value() == 0.0
    assert registry.names() == ["demo_total"]


def test_untouched_label_free_families_render_zero():
    """An idle scrape must still show every label-free family at 0 --
    the CI probe greps for the required names before any summarize."""
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo")
    registry.histogram("demo_seconds", "demo", buckets=(1.0,))
    rendered = registry.render()
    assert "demo_total 0" in rendered
    assert 'demo_seconds_bucket{le="+Inf"} 0' in rendered
    assert "demo_seconds_count 0" in rendered


def test_golden_scrape():
    """Exact exposition-format output for a small three-family registry."""
    registry = MetricsRegistry()
    runs = registry.counter("demo_runs_total", "Demo runs.")
    mode = registry.gauge("demo_mode", "Active mode.", labelnames=("mode",))
    seconds = registry.histogram("demo_seconds", "Demo timing.", buckets=(0.1, 1.0))
    runs.inc()
    runs.inc(2)
    mode.set(4, mode="fast")
    seconds.observe(0.05)
    seconds.observe(2.0)
    assert registry.render() == (
        "# HELP demo_runs_total Demo runs.\n"
        "# TYPE demo_runs_total counter\n"
        "demo_runs_total 3\n"
        "# HELP demo_mode Active mode.\n"
        "# TYPE demo_mode gauge\n"
        'demo_mode{mode="fast"} 4\n'
        "# HELP demo_seconds Demo timing.\n"
        "# TYPE demo_seconds histogram\n"
        'demo_seconds_bucket{le="0.1"} 1\n'
        'demo_seconds_bucket{le="1"} 1\n'
        'demo_seconds_bucket{le="+Inf"} 2\n'
        "demo_seconds_sum 2.05\n"
        "demo_seconds_count 2\n"
    )


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "demo", labelnames=("path",))
    counter.inc(path='a"b\\c\nd')
    rendered = registry.render()
    assert 'demo_total{path="a\\"b\\\\c\\nd"} 1' in rendered


def test_help_text_is_escaped():
    registry = MetricsRegistry()
    registry.counter("demo_total", "multi\nline")
    assert "# HELP demo_total multi\\nline\n" in registry.render()


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""


# -- process-wide switch -------------------------------------------------------


def test_set_enabled_toggles_module_flag():
    original = metrics.ENABLED
    try:
        metrics.set_enabled(False)
        assert metrics.ENABLED is False
        metrics.set_enabled(True)
        assert metrics.ENABLED is True
    finally:
        metrics.set_enabled(original)


def test_global_registry_has_required_families():
    """The acceptance criteria name three families that must exist on
    the process registry once the pipeline modules are imported."""
    import repro.core.engine  # noqa: F401 - registers the scoring families
    import repro.core.summarize  # noqa: F401 - registers the run families

    names = metrics.REGISTRY.names()
    assert "prox_summarize_steps_total" in names
    assert "prox_scoring_seconds" in names
    assert "prox_scoring_fallbacks_total" in names
